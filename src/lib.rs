//! # piprov
//!
//! An executable model of the **provenance calculus** of Souilah,
//! Francalanza and Sassone, *"A Formal Model of Provenance in Distributed
//! Systems"* (2009), together with the substrates a deployment of it needs:
//! a pattern language, the meta-theory of §3 as runnable checkers, a
//! distributed-system simulator, a durable provenance store and a static
//! provenance-flow analysis.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `piprov-core` | syntax, provenance, reduction semantics, executor |
//! | [`patterns`] | `piprov-patterns` | the sample pattern language (Table 3), NFA engine, parser |
//! | [`policy`] | `piprov-policy` | `.ppol` policy packs: parser, package hierarchy, directory loader |
//! | [`logs`] | `piprov-logs` | logs, the ⊑ ordering, denotation, monitored systems, correctness |
//! | [`store`] | `piprov-store` | append-only provenance store with audit queries |
//! | [`runtime`] | `piprov-runtime` | discrete-event simulator, workloads, fault injection |
//! | [`analysis`] | `piprov-static` | static provenance-flow analysis |
//! | [`audit`] | `piprov-audit` | concurrent audit service: engine, typed requests, recorder sink, bounded ingest queue |
//! | [`serve`] | `piprov-serve` | cross-process serving: framed wire protocol, TCP server/client, remote recorder |
//!
//! ## Quickstart
//!
//! ```
//! use piprov::prelude::*;
//!
//! // The paper's introductory example: two producers, one consumer that
//! // only trusts data sent directly by `a`.
//! let system: System<Pattern> = System::par_all(vec![
//!     System::located("a", Process::output(Identifier::channel("n"), Identifier::channel("v1"))),
//!     System::located("b", Process::output(Identifier::channel("n"), Identifier::channel("v2"))),
//!     System::located("c", Process::input(
//!         Identifier::channel("n"),
//!         Pattern::immediately_sent_by(GroupExpr::single("a")),
//!         "x",
//!         Process::nil(),
//!     )),
//! ]);
//! let mut exec = Executor::new(&system, SamplePatterns::new());
//! exec.run(1_000)?;
//! // Only a's value could be consumed; b's sits unclaimed.
//! assert_eq!(exec.configuration().message_count(), 1);
//! # Ok::<(), piprov::core::reduction::ReductionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use piprov_audit as audit;
pub use piprov_core as core;
pub use piprov_logs as logs;
pub use piprov_patterns as patterns;
pub use piprov_policy as policy;
pub use piprov_runtime as runtime;
pub use piprov_serve as serve;
pub use piprov_static as analysis;
pub use piprov_store as store;

/// Convenient re-exports of the items almost every user of the library
/// needs.
pub mod prelude {
    pub use piprov_audit::{
        render_exposition, render_traces, validate_exposition, validate_trace_text, AuditEngine,
        AuditOutcome, AuditRecorder, AuditRequest, AuditResponse, CounterfactualVerdict,
        EngineSnapshot, EventFilter, IngestQueue, MetricsSnapshot, TraceConfig, TraceContext,
        TraceRecord, WhySlice,
    };
    pub use piprov_core::interpreter::{Executor, SchedulerPolicy, StopReason};
    pub use piprov_core::name::{Channel, Principal, Variable};
    pub use piprov_core::pattern::{AnyPattern, PatternLanguage, TrivialPatterns};
    pub use piprov_core::process::{InputBranch, Process};
    pub use piprov_core::provenance::{Direction, Event, Provenance};
    pub use piprov_core::reduction::{StepEvent, StepKind};
    pub use piprov_core::system::{Message, System};
    pub use piprov_core::value::{AnnotatedValue, Identifier, Value};
    pub use piprov_logs::{
        check_provenance, has_correct_provenance, MonitoredExecutor, MonitoredSystem,
    };
    pub use piprov_patterns::{parse_pattern, GroupExpr, Pattern, SamplePatterns};
    pub use piprov_policy::{PackError, PackFile, PackSource, PolicyPack};
    pub use piprov_runtime::{
        workload, NetworkConfig, SimConfig, SimStop, Simulation, TrackingMode,
    };
    pub use piprov_serve::{AuditClient, AuditServer, RemoteRecorder, ServeConfig, ServerCore};
    pub use piprov_static::{analyze, elide_redundant_checks, AnalysisConfig};
    pub use piprov_store::{run_and_record, ProvenanceStore, StoreQuery};
}
