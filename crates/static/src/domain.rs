//! The abstract domain of the provenance-flow analysis.
//!
//! Concrete provenance sequences are unbounded, so the analysis abstracts
//! them to sequences of events whose nested channel provenance is dropped
//! and whose length is truncated at a configurable bound `k`
//! (k-limiting).  An abstract provenance therefore either *exactly*
//! represents a concrete one (when no truncation happened and no nested
//! channel provenance was lost) or over-approximates it; the `exact` flag
//! records which, so that pattern verdicts stay sound.

use piprov_core::name::Principal;
use piprov_core::provenance::{Direction, Event, Provenance};
use piprov_patterns::{matching, Pattern};
use std::collections::BTreeSet;
use std::fmt;

/// One abstract event: who acted and in which direction (nested channel
/// provenance is abstracted away).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbstractEvent {
    /// The acting principal.
    pub principal: Principal,
    /// Send or receive.
    pub direction: Direction,
}

impl fmt::Display for AbstractEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.principal, self.direction.symbol())
    }
}

/// An abstract provenance sequence: at most `k` most-recent events, plus a
/// flag recording whether information was lost.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbstractProvenance {
    /// Most recent first, truncated at the analysis bound.
    pub events: Vec<AbstractEvent>,
    /// `true` if this abstraction represents its concrete counterparts
    /// exactly (no truncation, no dropped nested channel provenance).
    pub exact: bool,
}

impl AbstractProvenance {
    /// The abstraction of the empty provenance `ε` (exact).
    pub fn empty() -> Self {
        AbstractProvenance {
            events: Vec::new(),
            exact: true,
        }
    }

    /// Abstracts a concrete provenance with bound `k`.
    pub fn of(provenance: &Provenance, k: usize) -> Self {
        let events: Vec<AbstractEvent> = provenance
            .iter()
            .take(k)
            .map(|e| AbstractEvent {
                principal: e.principal.clone(),
                direction: e.direction,
            })
            .collect();
        let truncated = provenance.len() > k;
        let dropped_nested = provenance
            .iter()
            .take(k)
            .any(|e| !e.channel_provenance.is_empty());
        AbstractProvenance {
            events,
            exact: !truncated && !dropped_nested,
        }
    }

    /// Prepends an abstract event, respecting the bound `k`.
    pub fn prepend(&self, event: AbstractEvent, k: usize) -> Self {
        let mut events = Vec::with_capacity((self.events.len() + 1).min(k));
        events.push(event);
        events.extend(self.events.iter().cloned());
        let truncated = events.len() > k;
        events.truncate(k);
        AbstractProvenance {
            events,
            exact: self.exact && !truncated,
        }
    }

    /// Reconstructs the (unique) concrete provenance this abstraction
    /// describes when it is exact; nested channel provenances are empty by
    /// construction.
    pub fn to_concrete(&self) -> Provenance {
        Provenance::from_events(self.events.iter().map(|e| match e.direction {
            Direction::Output => Event::output(e.principal.clone(), Provenance::empty()),
            Direction::Input => Event::input(e.principal.clone(), Provenance::empty()),
        }))
    }

    /// Conservative satisfaction test against a pattern.
    ///
    /// Returns `Some(true)`/`Some(false)` only when the verdict is certain;
    /// `None` when the abstraction is not exact (the dynamic check cannot
    /// be elided).
    pub fn satisfies(&self, pattern: &Pattern) -> Option<bool> {
        if matches!(pattern, Pattern::Any) {
            return Some(true);
        }
        if self.exact {
            Some(matching::satisfies(&self.to_concrete(), pattern))
        } else {
            None
        }
    }
}

impl fmt::Display for AbstractProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            write!(f, "ε")?;
        } else {
            for (i, e) in self.events.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{}", e)?;
            }
        }
        if !self.exact {
            write!(f, " …")?;
        }
        Ok(())
    }
}

/// A finite set of abstract provenances: the analysis value attached to
/// each channel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbstractSet {
    members: BTreeSet<AbstractProvenance>,
    /// The set is `⊤` (anything possible), used when the analysis loses
    /// track (e.g. a send on a channel it cannot identify).
    top: bool,
}

impl AbstractSet {
    /// The empty set (no value can flow here).
    pub fn bottom() -> Self {
        AbstractSet::default()
    }

    /// The set of all provenances (analysis gave up).
    pub fn top() -> Self {
        AbstractSet {
            members: BTreeSet::new(),
            top: true,
        }
    }

    /// `true` if this is the ⊤ element.
    pub fn is_top(&self) -> bool {
        self.top
    }

    /// `true` if no value can flow here.
    pub fn is_bottom(&self) -> bool {
        !self.top && self.members.is_empty()
    }

    /// Adds one abstraction; returns `true` if the set changed.
    pub fn insert(&mut self, value: AbstractProvenance) -> bool {
        if self.top {
            return false;
        }
        self.members.insert(value)
    }

    /// Joins another set into this one; returns `true` if this set changed.
    pub fn join(&mut self, other: &AbstractSet) -> bool {
        if self.top {
            return false;
        }
        if other.top {
            self.top = true;
            self.members.clear();
            return true;
        }
        let before = self.members.len();
        self.members.extend(other.members.iter().cloned());
        self.members.len() != before
    }

    /// Iterates over the members (empty for ⊤ — use [`AbstractSet::is_top`]
    /// first).
    pub fn iter(&self) -> impl Iterator<Item = &AbstractProvenance> {
        self.members.iter()
    }

    /// Number of members (0 for ⊤).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the set has no explicit members (also true for ⊤).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Conservative verdict for "does every value flowing here satisfy
    /// `pattern`?" / "does no value satisfy it?".
    pub fn verdict(&self, pattern: &Pattern) -> SetVerdict {
        if self.top {
            return if matches!(pattern, Pattern::Any) {
                SetVerdict::AlwaysMatches
            } else {
                SetVerdict::MayMatch
            };
        }
        if self.members.is_empty() {
            return SetVerdict::NothingFlows;
        }
        let mut all_true = true;
        let mut all_false = true;
        for member in &self.members {
            match member.satisfies(pattern) {
                Some(true) => all_false = false,
                Some(false) => all_true = false,
                None => {
                    all_true = false;
                    all_false = false;
                }
            }
        }
        match (all_true, all_false) {
            (true, _) => SetVerdict::AlwaysMatches,
            (_, true) => SetVerdict::NeverMatches,
            _ => SetVerdict::MayMatch,
        }
    }
}

/// The analysis verdict for one pattern check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetVerdict {
    /// Every value that can reach the input satisfies the pattern: the
    /// dynamic check is redundant.
    AlwaysMatches,
    /// No value that can reach the input satisfies the pattern: the branch
    /// is dead.
    NeverMatches,
    /// The check must stay.
    MayMatch,
    /// No value can flow to this input at all.
    NothingFlows,
}

impl fmt::Display for SetVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetVerdict::AlwaysMatches => write!(f, "always-matches"),
            SetVerdict::NeverMatches => write!(f, "never-matches"),
            SetVerdict::MayMatch => write!(f, "may-match"),
            SetVerdict::NothingFlows => write!(f, "nothing-flows"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_patterns::GroupExpr;

    fn ev(p: &str, d: Direction) -> AbstractEvent {
        AbstractEvent {
            principal: Principal::new(p),
            direction: d,
        }
    }

    #[test]
    fn abstraction_of_concrete_provenance() {
        let concrete = Provenance::from_events(vec![
            Event::input(Principal::new("b"), Provenance::empty()),
            Event::output(Principal::new("a"), Provenance::empty()),
        ]);
        let abs = AbstractProvenance::of(&concrete, 4);
        assert!(abs.exact);
        assert_eq!(abs.events.len(), 2);
        assert_eq!(abs.to_concrete(), concrete);
        // Truncation loses exactness.
        let truncated = AbstractProvenance::of(&concrete, 1);
        assert!(!truncated.exact);
        assert_eq!(truncated.events.len(), 1);
    }

    #[test]
    fn nested_channel_provenance_loses_exactness() {
        let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
        let concrete = Provenance::single(Event::output(Principal::new("a"), km));
        let abs = AbstractProvenance::of(&concrete, 4);
        assert!(!abs.exact);
        assert_eq!(abs.satisfies(&Pattern::Any), Some(true));
        assert_eq!(
            abs.satisfies(&Pattern::immediately_sent_by(GroupExpr::single("a"))),
            None,
            "inexact abstractions cannot certify non-Any patterns"
        );
    }

    #[test]
    fn exact_abstractions_decide_patterns() {
        let abs = AbstractProvenance::empty().prepend(ev("a", Direction::Output), 4);
        assert_eq!(
            abs.satisfies(&Pattern::immediately_sent_by(GroupExpr::single("a"))),
            Some(true)
        );
        assert_eq!(
            abs.satisfies(&Pattern::immediately_sent_by(GroupExpr::single("b"))),
            Some(false)
        );
    }

    #[test]
    fn set_join_and_verdicts() {
        let mut set = AbstractSet::bottom();
        assert!(set.is_bottom());
        assert_eq!(set.verdict(&Pattern::Any), SetVerdict::NothingFlows);
        set.insert(AbstractProvenance::empty().prepend(ev("a", Direction::Output), 4));
        let pattern = Pattern::immediately_sent_by(GroupExpr::single("a"));
        assert_eq!(set.verdict(&pattern), SetVerdict::AlwaysMatches);
        let mut other = AbstractSet::bottom();
        other.insert(AbstractProvenance::empty().prepend(ev("b", Direction::Output), 4));
        assert!(set.join(&other));
        assert!(!set.join(&other), "join is idempotent");
        assert_eq!(set.verdict(&pattern), SetVerdict::MayMatch);
        assert_eq!(
            set.verdict(&Pattern::immediately_sent_by(GroupExpr::single("z"))),
            SetVerdict::NeverMatches
        );
    }

    #[test]
    fn top_absorbs_everything() {
        let mut top = AbstractSet::top();
        assert!(top.is_top());
        assert!(!top.insert(AbstractProvenance::empty()));
        assert_eq!(top.verdict(&Pattern::Any), SetVerdict::AlwaysMatches);
        assert_eq!(
            top.verdict(&Pattern::immediately_sent_by(GroupExpr::single("a"))),
            SetVerdict::MayMatch
        );
        let mut set = AbstractSet::bottom();
        assert!(set.join(&AbstractSet::top()));
        assert!(set.is_top());
    }

    #[test]
    fn display_forms() {
        let abs = AbstractProvenance::empty()
            .prepend(ev("a", Direction::Output), 1)
            .prepend(ev("b", Direction::Input), 1);
        assert!(
            abs.to_string().contains("…"),
            "truncation is visible: {}",
            abs
        );
        assert_eq!(AbstractProvenance::empty().to_string(), "ε");
        assert_eq!(SetVerdict::AlwaysMatches.to_string(), "always-matches");
    }
}
