//! # piprov-static
//!
//! A **static provenance-flow analysis** for the provenance calculus — the
//! extension sketched in §5 of the paper: "a static analysis that would
//! alleviate the need for dynamic provenance tracking … analyse the flow of
//! data between principals and make sure that principals would only receive
//! data with provenance that matches their expectations".
//!
//! * [`domain`] — the abstract domain: k-limited provenance abstractions
//!   and per-channel sets with a ⊤ element;
//! * [`analysis`] — the fixpoint analysis, per-check verdicts, and a
//!   rewriter that elides checks proven redundant.
//!
//! ```
//! use piprov_core::process::Process;
//! use piprov_core::system::System;
//! use piprov_core::value::Identifier;
//! use piprov_patterns::{GroupExpr, Pattern};
//! use piprov_static::{analyze, AnalysisConfig};
//!
//! // Only c ever sends on m, so the receiver's check is provably redundant.
//! let system: System<Pattern> = System::par(
//!     System::located("c", Process::output(Identifier::channel("m"), Identifier::channel("v"))),
//!     System::located("a", Process::input(
//!         Identifier::channel("m"),
//!         Pattern::immediately_sent_by(GroupExpr::single("c")),
//!         "x",
//!         Process::nil(),
//!     )),
//! );
//! let result = analyze(&system, AnalysisConfig::default());
//! assert_eq!(result.redundant_checks().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod domain;

pub use analysis::{analyze, elide_redundant_checks, AnalysisConfig, AnalysisResult, CheckReport};
pub use domain::{AbstractEvent, AbstractProvenance, AbstractSet, SetVerdict};
