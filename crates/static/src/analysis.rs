//! The provenance-flow analysis.
//!
//! For every channel the analysis computes an over-approximation of the
//! provenance annotations of the values that may ever be sent on it, by
//! abstractly executing the system to a fixpoint: outputs contribute their
//! (abstracted) payload annotation extended with the sender's output event;
//! inputs bind the channel's current approximation extended with the
//! receiver's input event and flow it into the continuation.
//!
//! The result classifies every pattern check of the system:
//!
//! * `AlwaysMatches` — the dynamic check is redundant and can be elided
//!   (replaced by `Any`), which is the optimisation the paper sketches in
//!   §5;
//! * `NeverMatches` — the branch is dead;
//! * `MayMatch` — the check must remain;
//! * `NothingFlows` — no value can reach the input at all.
//!
//! The analysis is sound but deliberately coarse: positions of polyadic
//! messages are conflated per channel, nested channel provenance is
//! abstracted away, and sequences are k-limited.  Anything it cannot prove
//! is reported as `MayMatch`.

use crate::domain::{AbstractEvent, AbstractProvenance, AbstractSet, SetVerdict};
use piprov_core::name::{Channel, Principal, Variable};
use piprov_core::process::Process;
use piprov_core::provenance::Direction;
use piprov_core::system::System;
use piprov_core::value::{Identifier, Value};
use piprov_patterns::Pattern;
use std::collections::BTreeMap;
use std::fmt;

/// Configuration of the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// k-limit on abstract provenance length.
    pub max_events: usize,
    /// Maximum number of abstractions per channel before widening to ⊤.
    pub max_set_size: usize,
    /// Maximum fixpoint iterations (a safety net; the domain is finite).
    pub max_iterations: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_events: 6,
            max_set_size: 128,
            max_iterations: 64,
        }
    }
}

/// The verdict for one pattern check occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// The principal performing the input.
    pub principal: Principal,
    /// The channel listened on (if statically known).
    pub channel: Option<Channel>,
    /// Index of the branch within its input sum.
    pub branch: usize,
    /// Position within the branch's (polyadic) binding list.
    pub position: usize,
    /// The pattern, printed.
    pub pattern: String,
    /// The analysis verdict.
    pub verdict: SetVerdict,
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}[branch {}, pos {}] {} -> {}",
            self.principal,
            self.channel
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "?".to_string()),
            self.branch,
            self.position,
            self.pattern,
            self.verdict
        )
    }
}

/// The full analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisResult {
    /// Per-channel approximation of the provenance of values flowing on it.
    pub channels: BTreeMap<Channel, AbstractSet>,
    /// Verdicts for every pattern check in the system.
    pub checks: Vec<CheckReport>,
    /// Number of fixpoint iterations performed.
    pub iterations: usize,
}

impl AnalysisResult {
    /// Checks proven redundant (`AlwaysMatches`).
    pub fn redundant_checks(&self) -> Vec<&CheckReport> {
        self.checks
            .iter()
            .filter(|c| c.verdict == SetVerdict::AlwaysMatches)
            .collect()
    }

    /// Branches proven dead (`NeverMatches` or `NothingFlows`).
    pub fn dead_checks(&self) -> Vec<&CheckReport> {
        self.checks
            .iter()
            .filter(|c| {
                matches!(
                    c.verdict,
                    SetVerdict::NeverMatches | SetVerdict::NothingFlows
                )
            })
            .collect()
    }

    /// Fraction of checks proven redundant (0 when there are no checks).
    pub fn redundancy_ratio(&self) -> f64 {
        if self.checks.is_empty() {
            0.0
        } else {
            self.redundant_checks().len() as f64 / self.checks.len() as f64
        }
    }
}

impl fmt::Display for AnalysisResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "provenance-flow analysis: {} channels, {} checks, {} redundant, {} dead ({} iterations)",
            self.channels.len(),
            self.checks.len(),
            self.redundant_checks().len(),
            self.dead_checks().len(),
            self.iterations
        )?;
        for check in &self.checks {
            writeln!(f, "  {}", check)?;
        }
        Ok(())
    }
}

struct Analyzer {
    config: AnalysisConfig,
    channels: BTreeMap<Channel, AbstractSet>,
    changed: bool,
}

impl Analyzer {
    fn join_channel(&mut self, channel: &Channel, values: &AbstractSet) {
        let entry = self.channels.entry(channel.clone()).or_default();
        if entry.join(values) {
            self.changed = true;
        }
        if entry.len() > self.config.max_set_size {
            *entry = AbstractSet::top();
            self.changed = true;
        }
    }

    fn channel_set(&self, channel: &Channel) -> AbstractSet {
        self.channels.get(channel).cloned().unwrap_or_default()
    }

    fn prepend_all(&self, set: &AbstractSet, event: AbstractEvent) -> AbstractSet {
        if set.is_top() {
            return AbstractSet::top();
        }
        let mut out = AbstractSet::bottom();
        for member in set.iter() {
            out.insert(member.prepend(event.clone(), self.config.max_events));
        }
        out
    }

    fn identifier_set(
        &self,
        ident: &Identifier,
        env: &BTreeMap<Variable, AbstractSet>,
    ) -> AbstractSet {
        match ident {
            Identifier::Value(av) => {
                let mut set = AbstractSet::bottom();
                set.insert(AbstractProvenance::of(
                    &av.provenance,
                    self.config.max_events,
                ));
                set
            }
            Identifier::Variable(x) => env.get(x).cloned().unwrap_or_else(AbstractSet::top),
        }
    }

    fn static_channel(ident: &Identifier) -> Option<Channel> {
        match ident {
            Identifier::Value(av) => match &av.value {
                Value::Channel(c) => Some(c.clone()),
                Value::Principal(_) => None,
            },
            Identifier::Variable(_) => None,
        }
    }

    fn flow_process(
        &mut self,
        principal: &Principal,
        process: &Process<Pattern>,
        env: &BTreeMap<Variable, AbstractSet>,
    ) {
        match process {
            Process::Nil => {}
            Process::Output { channel, payload } => {
                let sent_event = AbstractEvent {
                    principal: principal.clone(),
                    direction: Direction::Output,
                };
                let target = Self::static_channel(channel);
                for item in payload {
                    let values =
                        self.prepend_all(&self.identifier_set(item, env), sent_event.clone());
                    match &target {
                        Some(c) => self.join_channel(c, &values),
                        None => {
                            // Destination unknown: conservatively poison
                            // every channel already known to the analysis.
                            let known: Vec<Channel> = self.channels.keys().cloned().collect();
                            for c in known {
                                self.join_channel(&c, &AbstractSet::top());
                            }
                        }
                    }
                }
            }
            Process::InputSum { channel, branches } => {
                let incoming = match Self::static_channel(channel) {
                    Some(c) => self.channel_set(&c),
                    None => AbstractSet::top(),
                };
                let recv_event = AbstractEvent {
                    principal: principal.clone(),
                    direction: Direction::Input,
                };
                for branch in branches {
                    let mut inner_env = env.clone();
                    for (pattern, var) in &branch.bindings {
                        // Values the variable may take: everything flowing on
                        // the channel that may satisfy the pattern, extended
                        // with this receive event.
                        let feasible = if incoming.is_top() {
                            AbstractSet::top()
                        } else {
                            let mut set = AbstractSet::bottom();
                            for member in incoming.iter() {
                                if member.satisfies(pattern) != Some(false) {
                                    set.insert(member.clone());
                                }
                            }
                            set
                        };
                        let bound = self.prepend_all(&feasible, recv_event.clone());
                        inner_env.insert(var.clone(), bound);
                    }
                    self.flow_process(principal, &branch.continuation, &inner_env);
                }
            }
            Process::Match {
                then_branch,
                else_branch,
                ..
            } => {
                self.flow_process(principal, then_branch, env);
                self.flow_process(principal, else_branch, env);
            }
            Process::Restriction { body, .. } => self.flow_process(principal, body, env),
            Process::Parallel(ps) => {
                for p in ps {
                    self.flow_process(principal, p, env);
                }
            }
            Process::Replicate(body) => self.flow_process(principal, body, env),
        }
    }

    fn seed_messages(&mut self, system: &System<Pattern>) {
        match system {
            System::Message(m) => {
                let mut set = AbstractSet::bottom();
                for v in &m.payload {
                    set.insert(AbstractProvenance::of(
                        &v.provenance,
                        self.config.max_events,
                    ));
                }
                self.join_channel(&m.channel, &set);
            }
            System::Restriction { body, .. } => self.seed_messages(body),
            System::Parallel(ss) => {
                for s in ss {
                    self.seed_messages(s);
                }
            }
            System::Located { .. } => {}
        }
    }

    fn located(system: &System<Pattern>, out: &mut Vec<(Principal, Process<Pattern>)>) {
        match system {
            System::Located { principal, process } => {
                out.push((principal.clone(), process.clone()))
            }
            System::Restriction { body, .. } => Self::located(body, out),
            System::Parallel(ss) => {
                for s in ss {
                    Self::located(s, out);
                }
            }
            System::Message(_) => {}
        }
    }

    fn collect_checks(
        &self,
        principal: &Principal,
        process: &Process<Pattern>,
        out: &mut Vec<CheckReport>,
    ) {
        match process {
            Process::InputSum { channel, branches } => {
                let chan = Self::static_channel(channel);
                let incoming = match &chan {
                    Some(c) => self.channel_set(c),
                    None => AbstractSet::top(),
                };
                for (bi, branch) in branches.iter().enumerate() {
                    for (pi, (pattern, _)) in branch.bindings.iter().enumerate() {
                        out.push(CheckReport {
                            principal: principal.clone(),
                            channel: chan.clone(),
                            branch: bi,
                            position: pi,
                            pattern: pattern.to_string(),
                            verdict: incoming.verdict(pattern),
                        });
                    }
                    self.collect_checks(principal, &branch.continuation, out);
                }
            }
            Process::Match {
                then_branch,
                else_branch,
                ..
            } => {
                self.collect_checks(principal, then_branch, out);
                self.collect_checks(principal, else_branch, out);
            }
            Process::Restriction { body, .. } | Process::Replicate(body) => {
                self.collect_checks(principal, body, out)
            }
            Process::Parallel(ps) => {
                for p in ps {
                    self.collect_checks(principal, p, out);
                }
            }
            Process::Output { .. } | Process::Nil => {}
        }
    }
}

/// Runs the provenance-flow analysis on a system.
pub fn analyze(system: &System<Pattern>, config: AnalysisConfig) -> AnalysisResult {
    let mut analyzer = Analyzer {
        config,
        channels: BTreeMap::new(),
        changed: true,
    };
    analyzer.seed_messages(system);
    let mut located = Vec::new();
    Analyzer::located(system, &mut located);
    let mut iterations = 0;
    while analyzer.changed && iterations < config.max_iterations {
        analyzer.changed = false;
        iterations += 1;
        for (principal, process) in &located {
            analyzer.flow_process(principal, process, &BTreeMap::new());
        }
    }
    let mut checks = Vec::new();
    for (principal, process) in &located {
        analyzer.collect_checks(principal, process, &mut checks);
    }
    AnalysisResult {
        channels: analyzer.channels,
        checks,
        iterations,
    }
}

/// Rewrites the system, replacing every pattern the analysis proved
/// `AlwaysMatches` with `Any`, so the dynamic vetting cost disappears while
/// behaviour is preserved (the ablation of experiment E12).
pub fn elide_redundant_checks(system: &System<Pattern>, config: AnalysisConfig) -> System<Pattern> {
    let result = analyze(system, config);
    // The rewrite is driven by verdicts per channel: a pattern is elided
    // only if *every* check occurrence with that textual form and channel
    // was proven redundant.
    let redundant: Vec<(Option<Channel>, String)> = result
        .redundant_checks()
        .iter()
        .map(|c| (c.channel.clone(), c.pattern.clone()))
        .collect();
    let contested: Vec<(Option<Channel>, String)> = result
        .checks
        .iter()
        .filter(|c| c.verdict != SetVerdict::AlwaysMatches)
        .map(|c| (c.channel.clone(), c.pattern.clone()))
        .collect();
    rewrite_system(system, &|channel, pattern| {
        let key = (channel.cloned(), pattern.to_string());
        redundant.contains(&key) && !contested.contains(&key)
    })
}

fn rewrite_system(
    system: &System<Pattern>,
    elide: &impl Fn(Option<&Channel>, &Pattern) -> bool,
) -> System<Pattern> {
    match system {
        System::Located { principal, process } => System::Located {
            principal: principal.clone(),
            process: rewrite_process(process, elide),
        },
        System::Message(m) => System::Message(m.clone()),
        System::Restriction { name, body } => System::Restriction {
            name: name.clone(),
            body: Box::new(rewrite_system(body, elide)),
        },
        System::Parallel(ss) => {
            System::Parallel(ss.iter().map(|s| rewrite_system(s, elide)).collect())
        }
    }
}

fn rewrite_process(
    process: &Process<Pattern>,
    elide: &impl Fn(Option<&Channel>, &Pattern) -> bool,
) -> Process<Pattern> {
    match process {
        Process::InputSum { channel, branches } => {
            let chan = Analyzer::static_channel(channel);
            Process::InputSum {
                channel: channel.clone(),
                branches: branches
                    .iter()
                    .map(|b| piprov_core::process::InputBranch {
                        bindings: b
                            .bindings
                            .iter()
                            .map(|(p, x)| {
                                if elide(chan.as_ref(), p) {
                                    (Pattern::Any, x.clone())
                                } else {
                                    (p.clone(), x.clone())
                                }
                            })
                            .collect(),
                        continuation: rewrite_process(&b.continuation, elide),
                    })
                    .collect(),
            }
        }
        Process::Match {
            lhs,
            rhs,
            then_branch,
            else_branch,
        } => Process::Match {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            then_branch: Box::new(rewrite_process(then_branch, elide)),
            else_branch: Box::new(rewrite_process(else_branch, elide)),
        },
        Process::Restriction { name, body } => Process::Restriction {
            name: name.clone(),
            body: Box::new(rewrite_process(body, elide)),
        },
        Process::Parallel(ps) => {
            Process::Parallel(ps.iter().map(|p| rewrite_process(p, elide)).collect())
        }
        Process::Replicate(body) => Process::Replicate(Box::new(rewrite_process(body, elide))),
        Process::Output { .. } | Process::Nil => process.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::process::Process;
    use piprov_core::value::Identifier;
    use piprov_patterns::GroupExpr;

    /// Only `c` ever sends on `m`, and the receiver demands exactly that.
    fn provably_safe() -> System<Pattern> {
        System::par(
            System::located(
                "c",
                Process::output(Identifier::channel("m"), Identifier::channel("v")),
            ),
            System::located(
                "a",
                Process::input(
                    Identifier::channel("m"),
                    Pattern::immediately_sent_by(GroupExpr::single("c")),
                    "x",
                    Process::nil(),
                ),
            ),
        )
    }

    #[test]
    fn redundant_check_is_detected() {
        let result = analyze(&provably_safe(), AnalysisConfig::default());
        assert_eq!(result.checks.len(), 1);
        assert_eq!(result.checks[0].verdict, SetVerdict::AlwaysMatches);
        assert_eq!(result.redundant_checks().len(), 1);
        assert!(result.redundancy_ratio() > 0.99);
        assert!(result.to_string().contains("always-matches"));
    }

    #[test]
    fn contested_channel_stays_dynamic() {
        // Both c and mallory send on m; the check can no longer be elided.
        let system = System::par(
            provably_safe(),
            System::located(
                "mallory",
                Process::output(Identifier::channel("m"), Identifier::channel("w")),
            ),
        );
        let result = analyze(&system, AnalysisConfig::default());
        assert_eq!(result.checks[0].verdict, SetVerdict::MayMatch);
        assert!(result.redundant_checks().is_empty());
    }

    #[test]
    fn dead_branch_is_detected() {
        // Nobody ever sends anything d-originated on m.
        let system = System::par(
            System::located(
                "c",
                Process::output(Identifier::channel("m"), Identifier::channel("v")),
            ),
            System::located(
                "b",
                Process::input(
                    Identifier::channel("m"),
                    Pattern::originated_at(GroupExpr::single("d")),
                    "x",
                    Process::nil(),
                ),
            ),
        );
        let result = analyze(&system, AnalysisConfig::default());
        assert_eq!(result.checks[0].verdict, SetVerdict::NeverMatches);
        assert_eq!(result.dead_checks().len(), 1);
    }

    #[test]
    fn nothing_flows_on_unused_channels() {
        let system: System<Pattern> = System::located(
            "a",
            Process::input(
                Identifier::channel("silent"),
                Pattern::Any,
                "x",
                Process::nil(),
            ),
        );
        let result = analyze(&system, AnalysisConfig::default());
        assert_eq!(result.checks[0].verdict, SetVerdict::NothingFlows);
    }

    #[test]
    fn relayed_flows_accumulate_events() {
        // c sends on k; f forwards from k to m; the receiver on m demands
        // origination at c — provable because the abstraction keeps the
        // whole (short) history.
        let system = System::par_all(vec![
            System::located(
                "c",
                Process::output(Identifier::channel("k"), Identifier::channel("v")),
            ),
            System::located(
                "f",
                Process::input(
                    Identifier::channel("k"),
                    Pattern::Any,
                    "z",
                    Process::output(Identifier::channel("m"), Identifier::variable("z")),
                ),
            ),
            System::located(
                "a",
                Process::input(
                    Identifier::channel("m"),
                    Pattern::originated_at(GroupExpr::single("c")),
                    "x",
                    Process::nil(),
                ),
            ),
        ]);
        let result = analyze(&system, AnalysisConfig::default());
        let final_check = result
            .checks
            .iter()
            .find(|c| c.channel == Some(Channel::new("m")))
            .unwrap();
        assert_eq!(final_check.verdict, SetVerdict::AlwaysMatches);
        assert!(result.iterations >= 2, "fixpoint needs propagation");
    }

    #[test]
    fn elision_preserves_behaviour_and_removes_patterns() {
        use piprov_core::interpreter::Executor;
        use piprov_patterns::SamplePatterns;
        let original = provably_safe();
        let optimized = elide_redundant_checks(&original, AnalysisConfig::default());
        // The optimized system uses Any where the original had a real pattern.
        let shown = format!("{}", optimized);
        assert!(shown.contains("Any as x"), "{}", shown);
        // Both run to the same quiescent shape.
        let mut e1 = Executor::new(&original, SamplePatterns::new());
        let mut e2 = Executor::new(&optimized, SamplePatterns::new());
        let o1 = e1.run(1_000).unwrap();
        let o2 = e2.run(1_000).unwrap();
        assert_eq!(o1.steps, o2.steps);
    }

    #[test]
    fn widening_to_top_is_applied() {
        let config = AnalysisConfig {
            max_set_size: 1,
            ..AnalysisConfig::default()
        };
        let system = System::par_all(vec![
            System::located(
                "a",
                Process::output(Identifier::channel("m"), Identifier::channel("v")),
            ),
            System::located(
                "b",
                Process::output(Identifier::channel("m"), Identifier::channel("w")),
            ),
            System::located(
                "r",
                Process::input(Identifier::channel("m"), Pattern::Any, "x", Process::nil()),
            ),
        ]);
        let result = analyze(&system, config);
        assert!(result.channels.get(&Channel::new("m")).unwrap().is_top());
        // Any still holds on ⊤.
        assert_eq!(result.checks[0].verdict, SetVerdict::AlwaysMatches);
    }
}
