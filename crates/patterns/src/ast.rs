//! Abstract syntax of the sample pattern matching language (Table 3).
//!
//! ```text
//! π ::= ε | α | π;π | π∨π | π* | Any
//! α ::= G!π | G?π
//! G ::= a | ~ | G+G | G−G
//! ```
//!
//! A pattern is matched against a provenance sequence; an event pattern `α`
//! is matched against a single event, testing the acting principal against
//! the group expression `G` and the channel provenance against the nested
//! pattern.

use piprov_core::name::Principal;
use piprov_core::provenance::Direction;
use std::fmt;

/// A group expression `G`, denoting a set of principals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupExpr {
    /// The singleton group `{a}`.
    Single(Principal),
    /// The group of all principals, written `~`.
    All,
    /// Union `G + G'`.
    Union(Box<GroupExpr>, Box<GroupExpr>),
    /// Difference `G − G'`.
    Difference(Box<GroupExpr>, Box<GroupExpr>),
}

impl GroupExpr {
    /// The singleton group containing `principal`.
    pub fn single(principal: impl Into<Principal>) -> Self {
        GroupExpr::Single(principal.into())
    }

    /// The group of all principals.
    pub fn all() -> Self {
        GroupExpr::All
    }

    /// Union of two groups.
    pub fn union(self, other: GroupExpr) -> Self {
        GroupExpr::Union(Box::new(self), Box::new(other))
    }

    /// Difference of two groups.
    pub fn difference(self, other: GroupExpr) -> Self {
        GroupExpr::Difference(Box::new(self), Box::new(other))
    }

    /// The union of a list of singletons, e.g. `(c1 + c3)`.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty; an empty group is not expressible in the
    /// paper's grammar.
    pub fn any_of<I, T>(principals: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Principal>,
    {
        let mut iter = principals.into_iter();
        let first = iter
            .next()
            .expect("GroupExpr::any_of requires at least one principal");
        let mut acc = GroupExpr::single(first);
        for p in iter {
            acc = acc.union(GroupExpr::single(p));
        }
        acc
    }

    /// Everyone except the given principal: `~ − a`.
    pub fn everyone_but(principal: impl Into<Principal>) -> Self {
        GroupExpr::All.difference(GroupExpr::single(principal))
    }

    /// The denotation `⟦G⟧` as a membership test.
    pub fn contains(&self, principal: &Principal) -> bool {
        match self {
            GroupExpr::Single(p) => p == principal,
            GroupExpr::All => true,
            GroupExpr::Union(g, h) => g.contains(principal) || h.contains(principal),
            GroupExpr::Difference(g, h) => g.contains(principal) && !h.contains(principal),
        }
    }

    /// Number of nodes in the expression.
    pub fn size(&self) -> usize {
        match self {
            GroupExpr::Single(_) | GroupExpr::All => 1,
            GroupExpr::Union(g, h) | GroupExpr::Difference(g, h) => 1 + g.size() + h.size(),
        }
    }
}

impl fmt::Display for GroupExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupExpr::Single(p) => write!(f, "{}", p),
            GroupExpr::All => write!(f, "~"),
            GroupExpr::Union(g, h) => write!(f, "({} + {})", g, h),
            GroupExpr::Difference(g, h) => write!(f, "({} - {})", g, h),
        }
    }
}

/// An event pattern `α ::= G!π | G?π`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EventPattern {
    /// The set of principals allowed to have performed the event.
    pub group: GroupExpr,
    /// Whether the event must be a send (`!`) or a receive (`?`).
    pub direction: Direction,
    /// Pattern the channel provenance of the event must satisfy.
    pub channel_pattern: Box<Pattern>,
}

impl EventPattern {
    /// A send-event pattern `G!π`.
    pub fn send(group: GroupExpr, channel_pattern: Pattern) -> Self {
        EventPattern {
            group,
            direction: Direction::Output,
            channel_pattern: Box::new(channel_pattern),
        }
    }

    /// A receive-event pattern `G?π`.
    pub fn receive(group: GroupExpr, channel_pattern: Pattern) -> Self {
        EventPattern {
            group,
            direction: Direction::Input,
            channel_pattern: Box::new(channel_pattern),
        }
    }
}

impl fmt::Display for EventPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.group,
            self.direction.symbol(),
            DisplayNested(&self.channel_pattern)
        )
    }
}

/// A pattern of the sample language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Matches only the empty provenance sequence `ε`.
    Empty,
    /// Matches a single event.
    Event(EventPattern),
    /// Sequencing `π;π'`: the sequence splits into a prefix matching `π`
    /// and a suffix matching `π'`.
    Seq(Box<Pattern>, Box<Pattern>),
    /// Alternation `π ∨ π'`.
    Alt(Box<Pattern>, Box<Pattern>),
    /// Repetition `π*`: zero or more consecutive chunks each matching `π`.
    Star(Box<Pattern>),
    /// Matches any provenance sequence.
    Any,
}

impl Pattern {
    /// The pattern matching only `ε`.
    pub fn empty() -> Self {
        Pattern::Empty
    }

    /// The pattern matching everything.
    pub fn any() -> Self {
        Pattern::Any
    }

    /// A single-event send pattern `G!π`.
    pub fn send(group: GroupExpr, channel_pattern: Pattern) -> Self {
        Pattern::Event(EventPattern::send(group, channel_pattern))
    }

    /// A single-event receive pattern `G?π`.
    pub fn receive(group: GroupExpr, channel_pattern: Pattern) -> Self {
        Pattern::Event(EventPattern::receive(group, channel_pattern))
    }

    /// Sequencing.
    pub fn then(self, other: Pattern) -> Self {
        Pattern::Seq(Box::new(self), Box::new(other))
    }

    /// Alternation.
    pub fn or(self, other: Pattern) -> Self {
        Pattern::Alt(Box::new(self), Box::new(other))
    }

    /// Repetition.
    pub fn star(self) -> Self {
        Pattern::Star(Box::new(self))
    }

    /// Builds the sequence `π₁; π₂; …; πₙ` (right-associated).  The empty
    /// list yields [`Pattern::Empty`].
    pub fn sequence(patterns: Vec<Pattern>) -> Self {
        let mut iter = patterns.into_iter().rev();
        match iter.next() {
            None => Pattern::Empty,
            Some(last) => iter.fold(last, |acc, p| p.then(acc)),
        }
    }

    /// The authentication pattern used by the paper's first example:
    /// "the most recent event is a send by someone in `group`, anything may
    /// have happened before" — `G!Any; Any`.
    pub fn immediately_sent_by(group: GroupExpr) -> Self {
        Pattern::send(group, Pattern::Any).then(Pattern::Any)
    }

    /// The dual authentication pattern: "the value originated at someone in
    /// `group`, whatever happened since" — `Any; G!Any`.
    pub fn originated_at(group: GroupExpr) -> Self {
        Pattern::Any.then(Pattern::send(group, Pattern::Any))
    }

    /// "Every event in the provenance was performed by someone in `group`"
    /// — `(G!Any ∨ G?Any)*`.
    pub fn only_touched_by(group: GroupExpr) -> Self {
        Pattern::send(group.clone(), Pattern::Any)
            .or(Pattern::receive(group, Pattern::Any))
            .star()
    }

    /// Number of nodes in the pattern (including nested channel patterns
    /// and group expressions).
    pub fn size(&self) -> usize {
        match self {
            Pattern::Empty | Pattern::Any => 1,
            Pattern::Event(e) => 1 + e.group.size() + e.channel_pattern.size(),
            Pattern::Seq(a, b) | Pattern::Alt(a, b) => 1 + a.size() + b.size(),
            Pattern::Star(a) => 1 + a.size(),
        }
    }

    /// `true` if the pattern can match the empty sequence (computed
    /// syntactically; used by the static analysis and by the NFA
    /// construction tests).
    pub fn nullable(&self) -> bool {
        match self {
            Pattern::Empty | Pattern::Any | Pattern::Star(_) => true,
            Pattern::Event(_) => false,
            Pattern::Seq(a, b) => a.nullable() && b.nullable(),
            Pattern::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }
}

/// Displays a nested pattern, parenthesising compound forms so that the
/// output re-parses unambiguously.
struct DisplayNested<'a>(&'a Pattern);

impl<'a> fmt::Display for DisplayNested<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Pattern::Empty | Pattern::Any | Pattern::Event(_) | Pattern::Star(_) => {
                write!(f, "{}", self.0)
            }
            _ => write!(f, "({})", self.0),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Empty => write!(f, "eps"),
            Pattern::Any => write!(f, "Any"),
            Pattern::Event(e) => write!(f, "{}", e),
            Pattern::Seq(a, b) => write!(f, "{}; {}", DisplaySeqChild(a), DisplaySeqChild(b)),
            Pattern::Alt(a, b) => write!(f, "{} | {}", DisplayAltChild(a), DisplayAltChild(b)),
            // Always parenthesise the repeated body so that the output
            // re-parses unambiguously (`(a!Any)*` vs `a!Any*`, where the
            // latter attaches the star to the nested channel pattern).
            Pattern::Star(a) => write!(f, "({})*", a),
        }
    }
}

struct DisplaySeqChild<'a>(&'a Pattern);
impl<'a> fmt::Display for DisplaySeqChild<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Pattern::Alt(_, _) => write!(f, "({})", self.0),
            _ => write!(f, "{}", self.0),
        }
    }
}

struct DisplayAltChild<'a>(&'a Pattern);
impl<'a> fmt::Display for DisplayAltChild<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_denotations() {
        let a = Principal::new("a");
        let b = Principal::new("b");
        let c = Principal::new("c");
        assert!(GroupExpr::single("a").contains(&a));
        assert!(!GroupExpr::single("a").contains(&b));
        assert!(GroupExpr::all().contains(&a));
        let union = GroupExpr::any_of(["a", "b"]);
        assert!(union.contains(&a));
        assert!(union.contains(&b));
        assert!(!union.contains(&c));
        let diff = GroupExpr::everyone_but("a");
        assert!(!diff.contains(&a));
        assert!(diff.contains(&b));
    }

    #[test]
    #[should_panic(expected = "at least one principal")]
    fn any_of_rejects_empty_list() {
        let _ = GroupExpr::any_of(Vec::<&str>::new());
    }

    #[test]
    fn display_round_trips_visually() {
        let p = Pattern::immediately_sent_by(GroupExpr::single("c"));
        assert_eq!(p.to_string(), "c!Any; Any");
        let q = Pattern::originated_at(GroupExpr::single("d"));
        assert_eq!(q.to_string(), "Any; d!Any");
        let r = Pattern::only_touched_by(GroupExpr::single("a"));
        assert_eq!(r.to_string(), "(a!Any | a?Any)*");
        let g = GroupExpr::any_of(["c1", "c3"]);
        let comp = Pattern::send(g, Pattern::Any).then(Pattern::Any);
        assert_eq!(comp.to_string(), "(c1 + c3)!Any; Any");
    }

    #[test]
    fn sequence_builder() {
        assert_eq!(Pattern::sequence(vec![]), Pattern::Empty);
        let single = Pattern::sequence(vec![Pattern::Any]);
        assert_eq!(single, Pattern::Any);
        let three = Pattern::sequence(vec![Pattern::Any, Pattern::Empty, Pattern::Any]);
        assert_eq!(three.to_string(), "Any; eps; Any");
    }

    #[test]
    fn nullable_is_syntactic() {
        assert!(Pattern::Empty.nullable());
        assert!(Pattern::Any.nullable());
        assert!(Pattern::Any.star().nullable());
        assert!(!Pattern::send(GroupExpr::all(), Pattern::Any).nullable());
        assert!(Pattern::send(GroupExpr::all(), Pattern::Any)
            .star()
            .nullable());
        assert!(!Pattern::send(GroupExpr::all(), Pattern::Any)
            .then(Pattern::Any)
            .nullable());
        assert!(Pattern::Empty
            .or(Pattern::send(GroupExpr::all(), Pattern::Any))
            .nullable());
    }

    #[test]
    fn size_counts_nested_structure() {
        let p = Pattern::send(GroupExpr::any_of(["a", "b"]), Pattern::Any).then(Pattern::Any);
        // Seq(1) + Event(1) + group(3) + nested Any(1) + Any(1)
        assert_eq!(p.size(), 7);
    }
}
