//! A compiled matching engine for the sample pattern language.
//!
//! The reference matcher in [`crate::matching`] follows the paper's
//! inference rules directly, which makes sequencing and repetition try every
//! split point — exponential in the worst case.  Patterns are, however,
//! ordinary regular expressions over an alphabet of *event predicates*, so
//! we compile them once (Thompson construction) and then simulate the NFA
//! over the provenance sequence in `O(|κ| · |states|)` transitions; nested
//! channel patterns are compiled recursively and evaluated when their atom
//! is crossed.
//!
//! On top of the simulation sits a **match memo** keyed by
//! `(ProvId, state set)`: provenance sequences are interned DAG nodes
//! (see [`piprov_core::provenance::interner`]), and NFA simulation from a
//! given state set over a given suffix is deterministic, so its verdict
//! can be cached per interned node.  Long runs vet the same channel
//! provenance thousands of times (every value exchanged on a channel
//! carries that channel's history in its events); with the memo each
//! distinct `(suffix, state set)` pair is simulated once per automaton and
//! every later query is a hash lookup.  Nested channel automata carry
//! their own memos, so the sharing compounds through nesting levels.
//!
//! The equivalence of the two engines is checked by unit tests here and by
//! property-based tests over random patterns and provenances.

use crate::ast::{EventPattern, Pattern};
use crate::matching::event_satisfies;
use piprov_core::provenance::{Event, ProvId, Provenance};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// A transition label: either free (`ε`) or guarded by an atom predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// Move without consuming an event.
    Epsilon,
    /// Consume one event that satisfies the indexed atom.
    Atom(usize),
    /// Consume any one event.
    AnyEvent,
}

/// A single transition of the NFA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transition {
    to: usize,
    label: Label,
}

/// A set of NFA states as a fixed-width bitmask (one bit per state).
type StateSet = Box<[u64]>;

fn set_bit(states: &mut StateSet, bit: usize) {
    states[bit / 64] |= 1u64 << (bit % 64);
}

fn get_bit(states: &StateSet, bit: usize) -> bool {
    states[bit / 64] & (1u64 << (bit % 64)) != 0
}

fn is_zero(states: &StateSet) -> bool {
    states.iter().all(|&w| w == 0)
}

fn iter_bits(states: &StateSet) -> impl Iterator<Item = usize> + '_ {
    states.iter().enumerate().flat_map(|(word, &bits)| {
        let mut bits = bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(word * 64 + bit)
            }
        })
    })
}

/// A pattern compiled to a non-deterministic finite automaton over event
/// predicates.
///
/// ```
/// use piprov_patterns::ast::{GroupExpr, Pattern};
/// use piprov_patterns::nfa::CompiledPattern;
/// use piprov_core::provenance::{Event, Provenance};
/// use piprov_core::name::Principal;
///
/// let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
/// let compiled = CompiledPattern::compile(&pattern);
/// let prov = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
/// assert!(compiled.matches(&prov));
/// ```
pub struct CompiledPattern {
    /// The source pattern (kept for display and introspection).
    source: Pattern,
    /// Transitions per state.
    transitions: Vec<Vec<Transition>>,
    /// Atom predicates; nested channel patterns are compiled too.
    atoms: Vec<CompiledAtom>,
    start: usize,
    accept: usize,
    /// Match memo: verdict of simulating from a state set over the suffix
    /// identified by an interned `ProvId`.  Outer key is the suffix id,
    /// inner key the state set at that point.  Append-only for the
    /// automaton's lifetime.
    memo: Mutex<HashMap<ProvId, HashMap<StateSet, bool>>>,
}

/// A compiled event predicate: the group/direction test plus a compiled
/// nested pattern for the channel provenance.
#[derive(Clone)]
struct CompiledAtom {
    pattern: EventPattern,
    channel: Box<CompiledPattern>,
}

impl Clone for CompiledPattern {
    fn clone(&self) -> Self {
        CompiledPattern {
            source: self.source.clone(),
            transitions: self.transitions.clone(),
            atoms: self.atoms.clone(),
            start: self.start,
            accept: self.accept,
            // The memo is a cache: clones start cold.
            memo: Mutex::new(HashMap::new()),
        }
    }
}

impl fmt::Debug for CompiledPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledPattern")
            .field("source", &self.source.to_string())
            .field("states", &self.transitions.len())
            .field("atoms", &self.atoms.len())
            .field("memo_entries", &self.memo_entries())
            .finish()
    }
}

/// Builder state for the Thompson construction.
struct Builder {
    transitions: Vec<Vec<Transition>>,
    atoms: Vec<CompiledAtom>,
}

impl Builder {
    fn new_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, label: Label) {
        self.transitions[from].push(Transition { to, label });
    }

    /// Compiles `pattern` into a fragment with fresh start/accept states.
    fn fragment(&mut self, pattern: &Pattern) -> (usize, usize) {
        match pattern {
            Pattern::Empty => {
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, a, Label::Epsilon);
                (s, a)
            }
            Pattern::Any => {
                // Any ≡ (any single event)*
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, a, Label::Epsilon);
                self.edge(s, s, Label::AnyEvent);
                (s, a)
            }
            Pattern::Event(ep) => {
                let s = self.new_state();
                let a = self.new_state();
                let idx = self.atoms.len();
                self.atoms.push(CompiledAtom {
                    pattern: ep.clone(),
                    channel: Box::new(CompiledPattern::compile(&ep.channel_pattern)),
                });
                self.edge(s, a, Label::Atom(idx));
                (s, a)
            }
            Pattern::Seq(first, second) => {
                let (s1, a1) = self.fragment(first);
                let (s2, a2) = self.fragment(second);
                self.edge(a1, s2, Label::Epsilon);
                (s1, a2)
            }
            Pattern::Alt(left, right) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sl, al) = self.fragment(left);
                let (sr, ar) = self.fragment(right);
                self.edge(s, sl, Label::Epsilon);
                self.edge(s, sr, Label::Epsilon);
                self.edge(al, a, Label::Epsilon);
                self.edge(ar, a, Label::Epsilon);
                (s, a)
            }
            Pattern::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (si, ai) = self.fragment(inner);
                self.edge(s, a, Label::Epsilon);
                self.edge(s, si, Label::Epsilon);
                self.edge(ai, si, Label::Epsilon);
                self.edge(ai, a, Label::Epsilon);
                (s, a)
            }
        }
    }
}

impl CompiledPattern {
    /// Compiles a pattern into an NFA.
    pub fn compile(pattern: &Pattern) -> Self {
        let mut builder = Builder {
            transitions: Vec::new(),
            atoms: Vec::new(),
        };
        let (start, accept) = builder.fragment(pattern);
        CompiledPattern {
            source: pattern.clone(),
            transitions: builder.transitions,
            atoms: builder.atoms,
            start,
            accept,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The pattern this automaton was compiled from.
    pub fn source(&self) -> &Pattern {
        &self.source
    }

    /// Number of NFA states (including states of *this* level only; nested
    /// channel patterns have their own automata).
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Number of `(suffix, state set)` verdicts currently memoized at this
    /// level (nested channel automata keep their own memos).
    pub fn memo_entries(&self) -> usize {
        match self.memo.lock() {
            Ok(memo) => memo.values().map(HashMap::len).sum(),
            Err(poisoned) => poisoned.into_inner().values().map(HashMap::len).sum(),
        }
    }

    fn empty_states(&self) -> StateSet {
        vec![0u64; self.transitions.len().div_ceil(64)].into_boxed_slice()
    }

    fn initial_states(&self) -> StateSet {
        let mut states = self.empty_states();
        set_bit(&mut states, self.start);
        self.epsilon_closure(&mut states);
        states
    }

    /// Consumes one event from every active state, returning the closure
    /// of the successor set.
    fn step(&self, states: &StateSet, event: &Event) -> StateSet {
        let mut next = self.empty_states();
        for state in iter_bits(states) {
            for t in &self.transitions[state] {
                let crosses = match t.label {
                    Label::Epsilon => false,
                    Label::AnyEvent => true,
                    Label::Atom(idx) => self.atom_matches(idx, event),
                };
                if crosses {
                    set_bit(&mut next, t.to);
                }
            }
        }
        self.epsilon_closure(&mut next);
        next
    }

    fn memo_lookup(&self, id: ProvId, states: &StateSet) -> Option<bool> {
        let memo = match self.memo.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        memo.get(&id).and_then(|m| m.get(states)).copied()
    }

    /// Decides `κ ⊨ π` by NFA simulation, memoized per
    /// `(ProvId, state set)`.
    ///
    /// The walk follows the interned spine of `κ`; at each node it first
    /// consults the memo (simulation from a state set over a fixed suffix
    /// is deterministic, so the cached verdict is exact) and otherwise
    /// records the node on a trail that is back-filled with the final
    /// verdict.  Re-vetting a provenance whose suffix was seen before —
    /// the common case when every message on a channel carries that
    /// channel's history — therefore costs one hash lookup per *new* node
    /// only.
    pub fn matches(&self, provenance: &Provenance) -> bool {
        let mut states = self.initial_states();
        let mut cursor = provenance.clone();
        let mut trail: Vec<(ProvId, StateSet)> = Vec::new();
        let verdict = loop {
            let id = cursor.id();
            if let Some(cached) = self.memo_lookup(id, &states) {
                break cached;
            }
            trail.push((id, states.clone()));
            match cursor.head() {
                None => break get_bit(&states, self.accept),
                Some(event) => {
                    let next = self.step(&states, event);
                    if is_zero(&next) {
                        break false;
                    }
                    let tail = cursor.tail().expect("non-empty provenance").clone();
                    states = next;
                    cursor = tail;
                }
            }
        };
        if !trail.is_empty() {
            let mut memo = match self.memo.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            for (id, states) in trail {
                memo.entry(id).or_default().insert(states, verdict);
            }
        }
        verdict
    }

    /// Decides whether a slice of borrowed events (most recent first)
    /// matches, by plain (unmemoized) NFA simulation.
    pub fn matches_events(&self, events: &[&Event]) -> bool {
        let mut current = self.initial_states();
        for &event in events {
            if is_zero(&current) {
                return false;
            }
            current = self.step(&current, event);
        }
        get_bit(&current, self.accept)
    }

    fn atom_matches(&self, idx: usize, event: &Event) -> bool {
        let atom = &self.atoms[idx];
        event.direction == atom.pattern.direction
            && atom.pattern.group.contains(&event.principal)
            && atom.channel.matches(&event.channel_provenance)
    }

    fn epsilon_closure(&self, states: &mut StateSet) {
        let mut stack: Vec<usize> = iter_bits(states).collect();
        while let Some(state) = stack.pop() {
            for t in &self.transitions[state] {
                if t.label == Label::Epsilon && !get_bit(states, t.to) {
                    set_bit(states, t.to);
                    stack.push(t.to);
                }
            }
        }
    }

    /// Checks that the NFA agrees with the reference matcher on a single
    /// input; used by the property-based test suite.
    pub fn agrees_with_reference(&self, provenance: &Provenance) -> bool {
        self.matches(provenance) == crate::matching::satisfies(provenance, &self.source)
    }
}

/// Convenience: checks one event against an event pattern using the same
/// logic as the reference matcher (re-exported for the static analysis).
pub fn compiled_event_satisfies(event: &Event, pattern: &EventPattern) -> bool {
    event_satisfies(event, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GroupExpr;
    use crate::matching::satisfies;
    use piprov_core::name::Principal;

    fn out(p: &str) -> Event {
        Event::output(Principal::new(p), Provenance::empty())
    }
    fn inp(p: &str) -> Event {
        Event::input(Principal::new(p), Provenance::empty())
    }
    fn seq(events: Vec<Event>) -> Provenance {
        Provenance::from_events(events)
    }

    fn check_agreement(pattern: &Pattern, provenances: &[Provenance]) {
        let compiled = CompiledPattern::compile(pattern);
        for p in provenances {
            assert_eq!(
                compiled.matches(p),
                satisfies(p, pattern),
                "engines disagree on {} ⊨ {}",
                p,
                pattern
            );
        }
    }

    fn sample_provenances() -> Vec<Provenance> {
        vec![
            Provenance::empty(),
            seq(vec![out("a")]),
            seq(vec![inp("a")]),
            seq(vec![out("b")]),
            seq(vec![out("c"), inp("b"), out("a")]),
            seq(vec![inp("b"), out("a"), out("a")]),
            seq(vec![out("a"), out("a"), out("a"), out("a")]),
            Provenance::single(Event::output(
                Principal::new("a"),
                seq(vec![out("b"), inp("c")]),
            )),
        ]
    }

    #[test]
    fn engines_agree_on_basic_patterns() {
        let patterns = vec![
            Pattern::Empty,
            Pattern::Any,
            Pattern::send(GroupExpr::single("a"), Pattern::Any),
            Pattern::receive(GroupExpr::all(), Pattern::Any),
            Pattern::immediately_sent_by(GroupExpr::single("c")),
            Pattern::originated_at(GroupExpr::single("a")),
            Pattern::only_touched_by(GroupExpr::any_of(["a", "b"])),
            Pattern::send(GroupExpr::everyone_but("a"), Pattern::Any).star(),
            Pattern::Any.then(Pattern::Any).then(Pattern::Empty),
            Pattern::Empty.or(Pattern::send(GroupExpr::single("a"), Pattern::Any)),
            Pattern::send(
                GroupExpr::single("a"),
                Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any),
            ),
        ];
        let provenances = sample_provenances();
        for p in &patterns {
            check_agreement(p, &provenances);
        }
    }

    #[test]
    fn nested_channel_patterns_are_simulated_recursively() {
        let inner = Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any);
        let pattern = Pattern::send(GroupExpr::single("a"), inner);
        let compiled = CompiledPattern::compile(&pattern);
        let chan_prov = seq(vec![out("b"), inp("c")]);
        let good = Provenance::single(Event::output(Principal::new("a"), chan_prov));
        let bad = Provenance::single(Event::output(Principal::new("a"), seq(vec![inp("c")])));
        assert!(compiled.matches(&good));
        assert!(!compiled.matches(&bad));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (Any; Any)* over a long provenance: the reference matcher would
        // explore exponentially many splits; the NFA stays linear.
        let pattern = Pattern::Any.then(Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        let long = Provenance::from_events((0..200).map(|_| out("a")).collect::<Vec<_>>());
        assert!(compiled.matches(&long));
    }

    #[test]
    fn star_requires_all_chunks_to_match() {
        let pattern = Pattern::send(GroupExpr::single("a"), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.matches(&seq(vec![out("a"), out("a")])));
        assert!(!compiled.matches(&seq(vec![out("a"), out("b")])));
        assert!(compiled.matches(&Provenance::empty()));
    }

    #[test]
    fn dead_states_short_circuit() {
        let pattern = Pattern::send(GroupExpr::single("a"), Pattern::Any);
        let compiled = CompiledPattern::compile(&pattern);
        // Second event can never be consumed: no live state remains.
        assert!(!compiled.matches(&seq(vec![out("a"), out("a"), out("a")])));
    }

    #[test]
    fn memo_returns_consistent_verdicts() {
        let pattern = Pattern::only_touched_by(GroupExpr::any_of(["a", "b"]));
        let compiled = CompiledPattern::compile(&pattern);
        let yes = seq(vec![out("a"), inp("b"), out("b")]);
        let no = seq(vec![out("a"), inp("c")]);
        for _ in 0..3 {
            assert!(compiled.matches(&yes));
            assert!(!compiled.matches(&no));
        }
        assert!(compiled.memo_entries() > 0, "verdicts were memoized");
    }

    #[test]
    fn memo_is_reused_across_shared_suffixes() {
        let pattern = Pattern::send(GroupExpr::all(), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        // Grow one history; every extension shares the previous spine, so
        // the memo grows by O(1) nodes per query instead of re-simulating
        // the whole sequence.
        let mut prov = Provenance::empty();
        for i in 0..32 {
            prov = prov.prepend(out(&format!("p{}", i % 4)));
            assert!(compiled.matches(&prov));
        }
        let entries_after_growth = compiled.memo_entries();
        // Re-vetting the full history is answered from the memo alone.
        assert!(compiled.matches(&prov));
        assert_eq!(compiled.memo_entries(), entries_after_growth);
    }

    #[test]
    fn matches_events_agrees_with_matches() {
        let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
        let compiled = CompiledPattern::compile(&pattern);
        for prov in sample_provenances() {
            let events: Vec<&Event> = prov.iter().collect();
            assert_eq!(compiled.matches_events(&events), compiled.matches(&prov));
        }
    }

    #[test]
    fn clones_start_with_a_cold_memo() {
        let pattern = Pattern::Any;
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.matches(&seq(vec![out("a")])));
        assert!(compiled.memo_entries() > 0);
        let cloned = compiled.clone();
        assert_eq!(cloned.memo_entries(), 0);
        assert!(cloned.matches(&seq(vec![out("a")])));
    }

    #[test]
    fn debug_and_introspection() {
        let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.state_count() >= 4);
        assert_eq!(compiled.source(), &pattern);
        let dbg = format!("{:?}", compiled);
        assert!(dbg.contains("CompiledPattern"));
    }

    #[test]
    fn agreement_helper() {
        let pattern = Pattern::originated_at(GroupExpr::single("d"));
        let compiled = CompiledPattern::compile(&pattern);
        for p in sample_provenances() {
            assert!(compiled.agrees_with_reference(&p));
        }
    }
}
