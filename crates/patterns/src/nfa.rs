//! A compiled matching engine for the sample pattern language.
//!
//! The reference matcher in [`crate::matching`] follows the paper's
//! inference rules directly, which makes sequencing and repetition try every
//! split point — exponential in the worst case.  Patterns are, however,
//! ordinary regular expressions over an alphabet of *event predicates*, so
//! we compile them once (Thompson construction) and then simulate the NFA
//! over the provenance sequence in `O(|κ| · |states|)` transitions; nested
//! channel patterns are compiled recursively and evaluated when their atom
//! is crossed.
//!
//! The equivalence of the two engines is checked by unit tests here and by
//! property-based tests over random patterns and provenances.

use crate::ast::{EventPattern, Pattern};
use crate::matching::event_satisfies;
use piprov_core::provenance::{Event, Provenance};
use std::fmt;

/// A transition label: either free (`ε`) or guarded by an atom predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// Move without consuming an event.
    Epsilon,
    /// Consume one event that satisfies the indexed atom.
    Atom(usize),
    /// Consume any one event.
    AnyEvent,
}

/// A single transition of the NFA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transition {
    to: usize,
    label: Label,
}

/// A pattern compiled to a non-deterministic finite automaton over event
/// predicates.
///
/// ```
/// use piprov_patterns::ast::{GroupExpr, Pattern};
/// use piprov_patterns::nfa::CompiledPattern;
/// use piprov_core::provenance::{Event, Provenance};
/// use piprov_core::name::Principal;
///
/// let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
/// let compiled = CompiledPattern::compile(&pattern);
/// let prov = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
/// assert!(compiled.matches(&prov));
/// ```
#[derive(Clone)]
pub struct CompiledPattern {
    /// The source pattern (kept for display and introspection).
    source: Pattern,
    /// Transitions per state.
    transitions: Vec<Vec<Transition>>,
    /// Atom predicates; nested channel patterns are compiled too.
    atoms: Vec<CompiledAtom>,
    start: usize,
    accept: usize,
}

/// A compiled event predicate: the group/direction test plus a compiled
/// nested pattern for the channel provenance.
#[derive(Clone)]
struct CompiledAtom {
    pattern: EventPattern,
    channel: Box<CompiledPattern>,
}

impl fmt::Debug for CompiledPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledPattern")
            .field("source", &self.source.to_string())
            .field("states", &self.transitions.len())
            .field("atoms", &self.atoms.len())
            .finish()
    }
}

/// Builder state for the Thompson construction.
struct Builder {
    transitions: Vec<Vec<Transition>>,
    atoms: Vec<CompiledAtom>,
}

impl Builder {
    fn new_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, label: Label) {
        self.transitions[from].push(Transition { to, label });
    }

    /// Compiles `pattern` into a fragment with fresh start/accept states.
    fn fragment(&mut self, pattern: &Pattern) -> (usize, usize) {
        match pattern {
            Pattern::Empty => {
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, a, Label::Epsilon);
                (s, a)
            }
            Pattern::Any => {
                // Any ≡ (any single event)*
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, a, Label::Epsilon);
                self.edge(s, s, Label::AnyEvent);
                (s, a)
            }
            Pattern::Event(ep) => {
                let s = self.new_state();
                let a = self.new_state();
                let idx = self.atoms.len();
                self.atoms.push(CompiledAtom {
                    pattern: ep.clone(),
                    channel: Box::new(CompiledPattern::compile(&ep.channel_pattern)),
                });
                self.edge(s, a, Label::Atom(idx));
                (s, a)
            }
            Pattern::Seq(first, second) => {
                let (s1, a1) = self.fragment(first);
                let (s2, a2) = self.fragment(second);
                self.edge(a1, s2, Label::Epsilon);
                (s1, a2)
            }
            Pattern::Alt(left, right) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sl, al) = self.fragment(left);
                let (sr, ar) = self.fragment(right);
                self.edge(s, sl, Label::Epsilon);
                self.edge(s, sr, Label::Epsilon);
                self.edge(al, a, Label::Epsilon);
                self.edge(ar, a, Label::Epsilon);
                (s, a)
            }
            Pattern::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (si, ai) = self.fragment(inner);
                self.edge(s, a, Label::Epsilon);
                self.edge(s, si, Label::Epsilon);
                self.edge(ai, si, Label::Epsilon);
                self.edge(ai, a, Label::Epsilon);
                (s, a)
            }
        }
    }
}

impl CompiledPattern {
    /// Compiles a pattern into an NFA.
    pub fn compile(pattern: &Pattern) -> Self {
        let mut builder = Builder {
            transitions: Vec::new(),
            atoms: Vec::new(),
        };
        let (start, accept) = builder.fragment(pattern);
        CompiledPattern {
            source: pattern.clone(),
            transitions: builder.transitions,
            atoms: builder.atoms,
            start,
            accept,
        }
    }

    /// The pattern this automaton was compiled from.
    pub fn source(&self) -> &Pattern {
        &self.source
    }

    /// Number of NFA states (including states of *this* level only; nested
    /// channel patterns have their own automata).
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Decides `κ ⊨ π` by NFA simulation.
    pub fn matches(&self, provenance: &Provenance) -> bool {
        let events = provenance.to_vec();
        self.matches_events(&events)
    }

    /// Decides whether a slice of events (most recent first) matches.
    pub fn matches_events(&self, events: &[Event]) -> bool {
        let mut current = vec![false; self.transitions.len()];
        current[self.start] = true;
        self.epsilon_closure(&mut current);
        for event in events {
            let mut next = vec![false; self.transitions.len()];
            for (state, active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                for t in &self.transitions[state] {
                    let crosses = match t.label {
                        Label::Epsilon => false,
                        Label::AnyEvent => true,
                        Label::Atom(idx) => self.atom_matches(idx, event),
                    };
                    if crosses {
                        next[t.to] = true;
                    }
                }
            }
            self.epsilon_closure(&mut next);
            current = next;
            if !current.iter().any(|&b| b) {
                return false;
            }
        }
        current[self.accept]
    }

    fn atom_matches(&self, idx: usize, event: &Event) -> bool {
        let atom = &self.atoms[idx];
        event.direction == atom.pattern.direction
            && atom.pattern.group.contains(&event.principal)
            && atom.channel.matches(&event.channel_provenance)
    }

    fn epsilon_closure(&self, states: &mut [bool]) {
        let mut stack: Vec<usize> = states
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if b { Some(i) } else { None })
            .collect();
        while let Some(state) = stack.pop() {
            for t in &self.transitions[state] {
                if t.label == Label::Epsilon && !states[t.to] {
                    states[t.to] = true;
                    stack.push(t.to);
                }
            }
        }
    }

    /// Checks that the NFA agrees with the reference matcher on a single
    /// input; used by the property-based test suite.
    pub fn agrees_with_reference(&self, provenance: &Provenance) -> bool {
        self.matches(provenance) == crate::matching::satisfies(provenance, &self.source)
    }
}

/// Convenience: checks one event against an event pattern using the same
/// logic as the reference matcher (re-exported for the static analysis).
pub fn compiled_event_satisfies(event: &Event, pattern: &EventPattern) -> bool {
    event_satisfies(event, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GroupExpr;
    use crate::matching::satisfies;
    use piprov_core::name::Principal;

    fn out(p: &str) -> Event {
        Event::output(Principal::new(p), Provenance::empty())
    }
    fn inp(p: &str) -> Event {
        Event::input(Principal::new(p), Provenance::empty())
    }
    fn seq(events: Vec<Event>) -> Provenance {
        Provenance::from_events(events)
    }

    fn check_agreement(pattern: &Pattern, provenances: &[Provenance]) {
        let compiled = CompiledPattern::compile(pattern);
        for p in provenances {
            assert_eq!(
                compiled.matches(p),
                satisfies(p, pattern),
                "engines disagree on {} ⊨ {}",
                p,
                pattern
            );
        }
    }

    fn sample_provenances() -> Vec<Provenance> {
        vec![
            Provenance::empty(),
            seq(vec![out("a")]),
            seq(vec![inp("a")]),
            seq(vec![out("b")]),
            seq(vec![out("c"), inp("b"), out("a")]),
            seq(vec![inp("b"), out("a"), out("a")]),
            seq(vec![out("a"), out("a"), out("a"), out("a")]),
            Provenance::single(Event::output(
                Principal::new("a"),
                seq(vec![out("b"), inp("c")]),
            )),
        ]
    }

    #[test]
    fn engines_agree_on_basic_patterns() {
        let patterns = vec![
            Pattern::Empty,
            Pattern::Any,
            Pattern::send(GroupExpr::single("a"), Pattern::Any),
            Pattern::receive(GroupExpr::all(), Pattern::Any),
            Pattern::immediately_sent_by(GroupExpr::single("c")),
            Pattern::originated_at(GroupExpr::single("a")),
            Pattern::only_touched_by(GroupExpr::any_of(["a", "b"])),
            Pattern::send(GroupExpr::everyone_but("a"), Pattern::Any).star(),
            Pattern::Any.then(Pattern::Any).then(Pattern::Empty),
            Pattern::Empty.or(Pattern::send(GroupExpr::single("a"), Pattern::Any)),
            Pattern::send(
                GroupExpr::single("a"),
                Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any),
            ),
        ];
        let provenances = sample_provenances();
        for p in &patterns {
            check_agreement(p, &provenances);
        }
    }

    #[test]
    fn nested_channel_patterns_are_simulated_recursively() {
        let inner = Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any);
        let pattern = Pattern::send(GroupExpr::single("a"), inner);
        let compiled = CompiledPattern::compile(&pattern);
        let chan_prov = seq(vec![out("b"), inp("c")]);
        let good = Provenance::single(Event::output(Principal::new("a"), chan_prov));
        let bad = Provenance::single(Event::output(Principal::new("a"), seq(vec![inp("c")])));
        assert!(compiled.matches(&good));
        assert!(!compiled.matches(&bad));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (Any; Any)* over a long provenance: the reference matcher would
        // explore exponentially many splits; the NFA stays linear.
        let pattern = Pattern::Any.then(Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        let long = Provenance::from_events((0..200).map(|_| out("a")).collect::<Vec<_>>());
        assert!(compiled.matches(&long));
    }

    #[test]
    fn star_requires_all_chunks_to_match() {
        let pattern = Pattern::send(GroupExpr::single("a"), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.matches(&seq(vec![out("a"), out("a")])));
        assert!(!compiled.matches(&seq(vec![out("a"), out("b")])));
        assert!(compiled.matches(&Provenance::empty()));
    }

    #[test]
    fn dead_states_short_circuit() {
        let pattern = Pattern::send(GroupExpr::single("a"), Pattern::Any);
        let compiled = CompiledPattern::compile(&pattern);
        // Second event can never be consumed: no live state remains.
        assert!(!compiled.matches(&seq(vec![out("a"), out("a"), out("a")])));
    }

    #[test]
    fn debug_and_introspection() {
        let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.state_count() >= 4);
        assert_eq!(compiled.source(), &pattern);
        let dbg = format!("{:?}", compiled);
        assert!(dbg.contains("CompiledPattern"));
    }

    #[test]
    fn agreement_helper() {
        let pattern = Pattern::originated_at(GroupExpr::single("d"));
        let compiled = CompiledPattern::compile(&pattern);
        for p in sample_provenances() {
            assert!(compiled.agrees_with_reference(&p));
        }
    }
}
