//! A compiled matching engine for the sample pattern language.
//!
//! The reference matcher in [`crate::matching`] follows the paper's
//! inference rules directly, which makes sequencing and repetition try every
//! split point — exponential in the worst case.  Patterns are, however,
//! ordinary regular expressions over an alphabet of *event predicates*, so
//! we compile them once (Thompson construction) and then simulate the NFA
//! over the provenance sequence in `O(|κ| · |states|)` transitions; nested
//! channel patterns are compiled recursively and evaluated when their atom
//! is crossed.
//!
//! On top of the simulation sits a **match memo** keyed by
//! `(ProvId, state set)`: provenance sequences are interned DAG nodes
//! (see [`piprov_core::provenance::interner`]), and NFA simulation from a
//! given state set over a given suffix is deterministic, so its verdict
//! can be cached per interned node.  Long runs vet the same channel
//! provenance thousands of times (every value exchanged on a channel
//! carries that channel's history in its events); with the memo each
//! distinct `(suffix, state set)` pair is simulated once per automaton and
//! every later query is a hash lookup.  Nested channel automata carry
//! their own memos, so the sharing compounds through nesting levels.
//!
//! The memo is **bounded**: a long-lived automaton (an audit service vets
//! requests for the lifetime of the process) caps the number of cached
//! verdicts at a configurable bound ([`CompiledPattern::set_memo_bound`],
//! default [`DEFAULT_MEMO_BOUND`]) and, when an insert would exceed it,
//! starts a fresh **epoch**.  What the rollover does with the old epoch is
//! the [`MemoEviction`] policy: [`MemoEviction::Wholesale`] clears
//! everything (the original scheme), while the default
//! [`MemoEviction::Generational`] keeps the entries that actually answered
//! lookups during the ending epoch — up to half the bound — so a stable
//! working set survives the rollover and only the one-shot tail pays the
//! cold-start cost again.  [`CompiledPattern::memo_stats`] reports entries,
//! hits, misses, the epoch counter and the cumulative survivors.
//!
//! The equivalence of the two engines is checked by unit tests here and by
//! property-based tests over random patterns and provenances.

use crate::ast::{EventPattern, Pattern};
use crate::matching::event_satisfies;
use piprov_core::provenance::{Event, ProvId, Provenance};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// A transition label: either free (`ε`) or guarded by an atom predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// Move without consuming an event.
    Epsilon,
    /// Consume one event that satisfies the indexed atom.
    Atom(usize),
    /// Consume any one event.
    AnyEvent,
}

/// A single transition of the NFA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transition {
    to: usize,
    label: Label,
}

/// A set of NFA states as a fixed-width bitmask (one bit per state).
type StateSet = Box<[u64]>;

/// Default bound on the number of `(suffix, state set)` verdicts one
/// automaton level memoizes before starting a fresh epoch.
pub const DEFAULT_MEMO_BOUND: usize = 65_536;

/// What an epoch rollover does with the entries it is evicting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoEviction {
    /// Clear the memo wholesale (the original scheme): every cached verdict
    /// is dropped and the working set re-simulates from cold.
    Wholesale,
    /// Keep the **hot** entries of the ending epoch — those answered from
    /// the memo since the last rollover — up to half the bound, so a stable
    /// working set survives and only the one-shot tail is evicted.  The
    /// default.
    #[default]
    Generational,
}

/// One cached verdict plus its generation bit: `hot` is set when the entry
/// answers a lookup and cleared when it survives a rollover, so "hot" means
/// *used during the current epoch*.
#[derive(Debug, Clone, Copy)]
struct Cached {
    verdict: bool,
    hot: bool,
}

/// The bounded match memo of one automaton level.
struct Memo {
    /// Verdicts per suffix id, per state set at that suffix.
    verdicts: HashMap<ProvId, HashMap<StateSet, Cached>>,
    /// Total `(suffix, state set)` pairs held (kept incrementally; summing
    /// the inner maps on every insert would be quadratic).
    entries: usize,
    /// Maximum entries before the next insert starts a new epoch.
    bound: usize,
    /// Number of epoch rollovers performed so far.
    epochs: u64,
    /// Lookups answered from the memo.
    hits: u64,
    /// Lookups that had to fall through to simulation.
    misses: u64,
    /// Entries that survived a rollover, summed over all rollovers.
    retained: u64,
    /// What a rollover does with the evicted epoch.
    eviction: MemoEviction,
}

impl Memo {
    fn new(bound: usize) -> Self {
        Memo {
            verdicts: HashMap::new(),
            entries: 0,
            bound: bound.max(1),
            epochs: 0,
            hits: 0,
            misses: 0,
            retained: 0,
            eviction: MemoEviction::default(),
        }
    }

    fn lookup(&mut self, id: ProvId, states: &StateSet) -> Option<bool> {
        let found = self
            .verdicts
            .get_mut(&id)
            .and_then(|m| m.get_mut(states))
            .map(|cached| {
                cached.hot = true;
                cached.verdict
            });
        match found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        found
    }

    /// Starts a new epoch.  Under [`MemoEviction::Wholesale`] everything is
    /// dropped; under [`MemoEviction::Generational`] up to `bound / 2` hot
    /// entries survive with their hotness reset (they must earn their place
    /// in the new epoch too).  Capping the survivors at half the bound
    /// guarantees every rollover frees at least half the memo, so a fully
    /// hot working set cannot wedge the memo into rolling over on every
    /// insert.
    fn rollover(&mut self) {
        match self.eviction {
            MemoEviction::Wholesale => {
                self.verdicts.clear();
                self.entries = 0;
            }
            MemoEviction::Generational => {
                let budget = self.bound / 2;
                let mut kept = 0usize;
                self.verdicts.retain(|_, per_states| {
                    per_states.retain(|_, cached| {
                        if cached.hot && kept < budget {
                            cached.hot = false;
                            kept += 1;
                            true
                        } else {
                            false
                        }
                    });
                    !per_states.is_empty()
                });
                self.entries = kept;
                self.retained += kept as u64;
            }
        }
        self.epochs += 1;
    }

    /// Inserts one verdict, rolling the epoch over first if the memo is
    /// full.  The invariant `entries <= bound` holds after every insert,
    /// whatever order verdicts arrive in (the rollover keeps at most
    /// `bound / 2 < bound` entries).
    fn insert(&mut self, id: ProvId, states: StateSet, verdict: bool) {
        if self.entries >= self.bound {
            self.rollover();
        }
        if self
            .verdicts
            .entry(id)
            .or_default()
            .insert(
                states,
                Cached {
                    verdict,
                    hot: false,
                },
            )
            .is_none()
        {
            self.entries += 1;
        }
    }

    fn stats(&self) -> MemoStats {
        MemoStats {
            entries: self.entries,
            bound: self.bound,
            epochs: self.epochs,
            hits: self.hits,
            misses: self.misses,
            retained: self.retained,
        }
    }
}

/// A snapshot of one automaton level's memo occupancy and traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// `(suffix, state set)` verdicts currently held.
    pub entries: usize,
    /// Configured bound; `entries` never exceeds it.
    pub bound: usize,
    /// Epoch rollovers performed so far (0 until the bound is first hit).
    pub epochs: u64,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that fell through to NFA simulation.
    pub misses: u64,
    /// Entries that survived a rollover because they were hot, summed over
    /// all rollovers (always 0 under [`MemoEviction::Wholesale`]).
    pub retained: u64,
}

/// Work accounting for one [`CompiledPattern::matches_with_stats`] call,
/// accumulated across this automaton and every nested channel automaton it
/// consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchStats {
    /// Memo lookups answered from a cache (this level and nested levels).
    pub memo_hits: usize,
    /// Spine nodes actually simulated (events consumed by some automaton).
    pub nodes_visited: usize,
}

/// One consumed spine event of a [`CompiledPattern::witness`] walk: the
/// event together with the interned id of the suffix that starts at it, so
/// callers can point back into the hash-consed DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// Interned id of the spine suffix whose head is `event`.
    pub node: ProvId,
    /// The consumed event.
    pub event: Event,
}

/// The explained outcome of simulating a provenance against a pattern.
///
/// The subset simulation tracks *every* candidate trail of the NFA at
/// once, so one walk explains the verdict exactly: on acceptance the
/// consumed spine is an accepting trail's event set, and on rejection
/// there is a unique earliest point where all surviving candidates die —
/// either a concrete blocking event or the end of the history with no
/// accept state held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessTrail {
    /// The automaton accepted; `steps` is the full consumed spine,
    /// most recent first.
    Accepted {
        /// Events of one accepting trail (the whole spine — the subset
        /// walk consumes every event), most recent first.
        steps: Vec<WitnessStep>,
    },
    /// The state subset went empty consuming `blocked`: the blocking
    /// frontier where every candidate trail dies at once.
    Blocked {
        /// Events consumed successfully before the death point.
        consumed: Vec<WitnessStep>,
        /// The earliest event (in match order) no candidate trail survives.
        blocked: WitnessStep,
    },
    /// Every event was consumed but no accept state held at the end of the
    /// history: the history is too short for the pattern.
    Exhausted {
        /// The full consumed spine, most recent first.
        consumed: Vec<WitnessStep>,
    },
}

impl WitnessTrail {
    /// The verdict this trail explains.
    pub fn verdict(&self) -> bool {
        matches!(self, WitnessTrail::Accepted { .. })
    }
}

fn set_bit(states: &mut StateSet, bit: usize) {
    states[bit / 64] |= 1u64 << (bit % 64);
}

fn get_bit(states: &StateSet, bit: usize) -> bool {
    states[bit / 64] & (1u64 << (bit % 64)) != 0
}

fn is_zero(states: &StateSet) -> bool {
    states.iter().all(|&w| w == 0)
}

fn iter_bits(states: &StateSet) -> impl Iterator<Item = usize> + '_ {
    states.iter().enumerate().flat_map(|(word, &bits)| {
        let mut bits = bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(word * 64 + bit)
            }
        })
    })
}

/// A pattern compiled to a non-deterministic finite automaton over event
/// predicates.
///
/// ```
/// use piprov_patterns::ast::{GroupExpr, Pattern};
/// use piprov_patterns::nfa::CompiledPattern;
/// use piprov_core::provenance::{Event, Provenance};
/// use piprov_core::name::Principal;
///
/// let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
/// let compiled = CompiledPattern::compile(&pattern);
/// let prov = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
/// assert!(compiled.matches(&prov));
/// ```
pub struct CompiledPattern {
    /// The source pattern (kept for display and introspection).
    source: Pattern,
    /// Transitions per state.
    transitions: Vec<Vec<Transition>>,
    /// Atom predicates; nested channel patterns are compiled too.
    atoms: Vec<CompiledAtom>,
    start: usize,
    accept: usize,
    /// Match memo: verdict of simulating from a state set over the suffix
    /// identified by an interned `ProvId`.  Bounded, with epoch-based
    /// wholesale eviction (see the module docs).
    memo: Mutex<Memo>,
}

/// A compiled event predicate: the group/direction test plus a compiled
/// nested pattern for the channel provenance.
#[derive(Clone)]
struct CompiledAtom {
    pattern: EventPattern,
    channel: Box<CompiledPattern>,
}

impl Clone for CompiledPattern {
    fn clone(&self) -> Self {
        CompiledPattern {
            source: self.source.clone(),
            transitions: self.transitions.clone(),
            atoms: self.atoms.clone(),
            start: self.start,
            accept: self.accept,
            // The memo is a cache: clones start cold but keep the bound and
            // eviction policy.
            memo: Mutex::new({
                let source = self.lock_memo();
                let mut memo = Memo::new(source.bound);
                memo.eviction = source.eviction;
                memo
            }),
        }
    }
}

impl fmt::Debug for CompiledPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledPattern")
            .field("source", &self.source.to_string())
            .field("states", &self.transitions.len())
            .field("atoms", &self.atoms.len())
            .field("memo_entries", &self.memo_entries())
            .finish()
    }
}

/// Builder state for the Thompson construction.
struct Builder {
    transitions: Vec<Vec<Transition>>,
    atoms: Vec<CompiledAtom>,
}

impl Builder {
    fn new_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, label: Label) {
        self.transitions[from].push(Transition { to, label });
    }

    /// Compiles `pattern` into a fragment with fresh start/accept states.
    fn fragment(&mut self, pattern: &Pattern) -> (usize, usize) {
        match pattern {
            Pattern::Empty => {
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, a, Label::Epsilon);
                (s, a)
            }
            Pattern::Any => {
                // Any ≡ (any single event)*
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, a, Label::Epsilon);
                self.edge(s, s, Label::AnyEvent);
                (s, a)
            }
            Pattern::Event(ep) => {
                let s = self.new_state();
                let a = self.new_state();
                let idx = self.atoms.len();
                self.atoms.push(CompiledAtom {
                    pattern: ep.clone(),
                    channel: Box::new(CompiledPattern::compile(&ep.channel_pattern)),
                });
                self.edge(s, a, Label::Atom(idx));
                (s, a)
            }
            Pattern::Seq(first, second) => {
                let (s1, a1) = self.fragment(first);
                let (s2, a2) = self.fragment(second);
                self.edge(a1, s2, Label::Epsilon);
                (s1, a2)
            }
            Pattern::Alt(left, right) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sl, al) = self.fragment(left);
                let (sr, ar) = self.fragment(right);
                self.edge(s, sl, Label::Epsilon);
                self.edge(s, sr, Label::Epsilon);
                self.edge(al, a, Label::Epsilon);
                self.edge(ar, a, Label::Epsilon);
                (s, a)
            }
            Pattern::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (si, ai) = self.fragment(inner);
                self.edge(s, a, Label::Epsilon);
                self.edge(s, si, Label::Epsilon);
                self.edge(ai, si, Label::Epsilon);
                self.edge(ai, a, Label::Epsilon);
                (s, a)
            }
        }
    }
}

impl CompiledPattern {
    /// Compiles a pattern into an NFA.
    pub fn compile(pattern: &Pattern) -> Self {
        let mut builder = Builder {
            transitions: Vec::new(),
            atoms: Vec::new(),
        };
        let (start, accept) = builder.fragment(pattern);
        CompiledPattern {
            source: pattern.clone(),
            transitions: builder.transitions,
            atoms: builder.atoms,
            start,
            accept,
            memo: Mutex::new(Memo::new(DEFAULT_MEMO_BOUND)),
        }
    }

    /// The pattern this automaton was compiled from.
    pub fn source(&self) -> &Pattern {
        &self.source
    }

    /// Number of NFA states (including states of *this* level only; nested
    /// channel patterns have their own automata).
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Number of `(suffix, state set)` verdicts currently memoized at this
    /// level (nested channel automata keep their own memos).
    pub fn memo_entries(&self) -> usize {
        self.lock_memo().entries
    }

    /// A snapshot of this level's memo occupancy and traffic (nested
    /// channel automata keep their own memos and stats).
    pub fn memo_stats(&self) -> MemoStats {
        self.lock_memo().stats()
    }

    /// Sets the memo bound of this automaton *and every nested channel
    /// automaton*, clamped to at least 1.  If the memo currently holds
    /// more entries than the new bound, it is cleared immediately (a new
    /// epoch), so `memo_entries() <= bound` holds from the moment this
    /// returns.
    pub fn set_memo_bound(&self, bound: usize) {
        {
            let mut memo = self.lock_memo();
            memo.bound = bound.max(1);
            if memo.entries > memo.bound {
                memo.rollover();
            }
        }
        for atom in &self.atoms {
            atom.channel.set_memo_bound(bound);
        }
    }

    /// Sets the eviction policy applied at epoch rollover, for this
    /// automaton *and every nested channel automaton*.  The default is
    /// [`MemoEviction::Generational`]; [`MemoEviction::Wholesale`] is the
    /// original clear-everything scheme, kept selectable as the ablation
    /// baseline.
    pub fn set_memo_eviction(&self, eviction: MemoEviction) {
        self.lock_memo().eviction = eviction;
        for atom in &self.atoms {
            atom.channel.set_memo_eviction(eviction);
        }
    }

    fn lock_memo(&self) -> std::sync::MutexGuard<'_, Memo> {
        match self.memo.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn empty_states(&self) -> StateSet {
        vec![0u64; self.transitions.len().div_ceil(64)].into_boxed_slice()
    }

    fn initial_states(&self) -> StateSet {
        let mut states = self.empty_states();
        set_bit(&mut states, self.start);
        self.epsilon_closure(&mut states);
        states
    }

    /// Consumes one event from every active state, returning the closure
    /// of the successor set.
    fn step(&self, states: &StateSet, event: &Event, stats: &mut MatchStats) -> StateSet {
        let mut next = self.empty_states();
        for state in iter_bits(states) {
            for t in &self.transitions[state] {
                let crosses = match t.label {
                    Label::Epsilon => false,
                    Label::AnyEvent => true,
                    Label::Atom(idx) => self.atom_matches(idx, event, stats),
                };
                if crosses {
                    set_bit(&mut next, t.to);
                }
            }
        }
        self.epsilon_closure(&mut next);
        next
    }

    /// Decides `κ ⊨ π` by NFA simulation, memoized per
    /// `(ProvId, state set)`.
    ///
    /// The walk follows the interned spine of `κ`; at each node it first
    /// consults the memo (simulation from a state set over a fixed suffix
    /// is deterministic, so the cached verdict is exact) and otherwise
    /// records the node on a trail that is back-filled with the final
    /// verdict.  Re-vetting a provenance whose suffix was seen before —
    /// the common case when every message on a channel carries that
    /// channel's history — therefore costs one hash lookup per *new* node
    /// only.
    pub fn matches(&self, provenance: &Provenance) -> bool {
        self.matches_collect(provenance, &mut MatchStats::default())
    }

    /// Like [`CompiledPattern::matches`], but also reports how much work
    /// the query cost: memo hits and spine nodes simulated, accumulated
    /// across this automaton and every nested channel automaton consulted.
    pub fn matches_with_stats(&self, provenance: &Provenance) -> (bool, MatchStats) {
        let mut stats = MatchStats::default();
        let verdict = self.matches_collect(provenance, &mut stats);
        (verdict, stats)
    }

    fn matches_collect(&self, provenance: &Provenance, stats: &mut MatchStats) -> bool {
        let mut states = self.initial_states();
        let mut cursor = provenance.clone();
        let mut trail: Vec<(ProvId, StateSet)> = Vec::new();
        let verdict = loop {
            let id = cursor.id();
            if let Some(cached) = self.lock_memo().lookup(id, &states) {
                stats.memo_hits += 1;
                break cached;
            }
            trail.push((id, states.clone()));
            match cursor.head() {
                None => break get_bit(&states, self.accept),
                Some(event) => {
                    stats.nodes_visited += 1;
                    let next = self.step(&states, event, stats);
                    if is_zero(&next) {
                        break false;
                    }
                    let tail = cursor.tail().expect("non-empty provenance").clone();
                    states = next;
                    cursor = tail;
                }
            }
        };
        if !trail.is_empty() {
            let mut memo = self.lock_memo();
            for (id, states) in trail {
                memo.insert(id, states, verdict);
            }
        }
        verdict
    }

    /// Explains `κ ⊨ π` (or its failure) with a [`WitnessTrail`].
    ///
    /// The walk mirrors [`CompiledPattern::matches`] but records, for every
    /// consumed event, the interned id of the suffix it heads.  It does not
    /// *consult* the memo — a cached verdict carries no trail — but it
    /// seeds the memo with the final verdict for every suffix visited,
    /// exactly as a plain match would, so later (e.g. counterfactual)
    /// matches over untouched subgraphs answer from cache.
    pub fn witness(&self, provenance: &Provenance, stats: &mut MatchStats) -> WitnessTrail {
        let mut states = self.initial_states();
        let mut cursor = provenance.clone();
        let mut consumed: Vec<WitnessStep> = Vec::new();
        let mut trail: Vec<(ProvId, StateSet)> = Vec::new();
        let outcome = loop {
            let id = cursor.id();
            trail.push((id, states.clone()));
            match cursor.head() {
                None => {
                    break if get_bit(&states, self.accept) {
                        WitnessTrail::Accepted { steps: consumed }
                    } else {
                        WitnessTrail::Exhausted { consumed }
                    }
                }
                Some(event) => {
                    stats.nodes_visited += 1;
                    let step = WitnessStep {
                        node: id,
                        event: event.clone(),
                    };
                    let next = self.step(&states, event, stats);
                    if is_zero(&next) {
                        break WitnessTrail::Blocked {
                            consumed,
                            blocked: step,
                        };
                    }
                    consumed.push(step);
                    let tail = cursor.tail().expect("non-empty provenance").clone();
                    states = next;
                    cursor = tail;
                }
            }
        };
        let verdict = outcome.verdict();
        let mut memo = self.lock_memo();
        for (id, states) in trail {
            memo.insert(id, states, verdict);
        }
        outcome
    }

    /// Decides whether a slice of borrowed events (most recent first)
    /// matches, by plain (unmemoized) NFA simulation.
    pub fn matches_events(&self, events: &[&Event]) -> bool {
        let mut stats = MatchStats::default();
        let mut current = self.initial_states();
        for &event in events {
            if is_zero(&current) {
                return false;
            }
            current = self.step(&current, event, &mut stats);
        }
        get_bit(&current, self.accept)
    }

    fn atom_matches(&self, idx: usize, event: &Event, stats: &mut MatchStats) -> bool {
        let atom = &self.atoms[idx];
        event.direction == atom.pattern.direction
            && atom.pattern.group.contains(&event.principal)
            && atom
                .channel
                .matches_collect(&event.channel_provenance, stats)
    }

    fn epsilon_closure(&self, states: &mut StateSet) {
        let mut stack: Vec<usize> = iter_bits(states).collect();
        while let Some(state) = stack.pop() {
            for t in &self.transitions[state] {
                if t.label == Label::Epsilon && !get_bit(states, t.to) {
                    set_bit(states, t.to);
                    stack.push(t.to);
                }
            }
        }
    }

    /// Checks that the NFA agrees with the reference matcher on a single
    /// input; used by the property-based test suite.
    pub fn agrees_with_reference(&self, provenance: &Provenance) -> bool {
        self.matches(provenance) == crate::matching::satisfies(provenance, &self.source)
    }
}

/// Convenience: checks one event against an event pattern using the same
/// logic as the reference matcher (re-exported for the static analysis).
pub fn compiled_event_satisfies(event: &Event, pattern: &EventPattern) -> bool {
    event_satisfies(event, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GroupExpr;
    use crate::matching::satisfies;
    use piprov_core::name::Principal;

    fn out(p: &str) -> Event {
        Event::output(Principal::new(p), Provenance::empty())
    }
    fn inp(p: &str) -> Event {
        Event::input(Principal::new(p), Provenance::empty())
    }
    fn seq(events: Vec<Event>) -> Provenance {
        Provenance::from_events(events)
    }

    fn check_agreement(pattern: &Pattern, provenances: &[Provenance]) {
        let compiled = CompiledPattern::compile(pattern);
        for p in provenances {
            assert_eq!(
                compiled.matches(p),
                satisfies(p, pattern),
                "engines disagree on {} ⊨ {}",
                p,
                pattern
            );
        }
    }

    fn sample_provenances() -> Vec<Provenance> {
        vec![
            Provenance::empty(),
            seq(vec![out("a")]),
            seq(vec![inp("a")]),
            seq(vec![out("b")]),
            seq(vec![out("c"), inp("b"), out("a")]),
            seq(vec![inp("b"), out("a"), out("a")]),
            seq(vec![out("a"), out("a"), out("a"), out("a")]),
            Provenance::single(Event::output(
                Principal::new("a"),
                seq(vec![out("b"), inp("c")]),
            )),
        ]
    }

    #[test]
    fn engines_agree_on_basic_patterns() {
        let patterns = vec![
            Pattern::Empty,
            Pattern::Any,
            Pattern::send(GroupExpr::single("a"), Pattern::Any),
            Pattern::receive(GroupExpr::all(), Pattern::Any),
            Pattern::immediately_sent_by(GroupExpr::single("c")),
            Pattern::originated_at(GroupExpr::single("a")),
            Pattern::only_touched_by(GroupExpr::any_of(["a", "b"])),
            Pattern::send(GroupExpr::everyone_but("a"), Pattern::Any).star(),
            Pattern::Any.then(Pattern::Any).then(Pattern::Empty),
            Pattern::Empty.or(Pattern::send(GroupExpr::single("a"), Pattern::Any)),
            Pattern::send(
                GroupExpr::single("a"),
                Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any),
            ),
        ];
        let provenances = sample_provenances();
        for p in &patterns {
            check_agreement(p, &provenances);
        }
    }

    #[test]
    fn nested_channel_patterns_are_simulated_recursively() {
        let inner = Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any);
        let pattern = Pattern::send(GroupExpr::single("a"), inner);
        let compiled = CompiledPattern::compile(&pattern);
        let chan_prov = seq(vec![out("b"), inp("c")]);
        let good = Provenance::single(Event::output(Principal::new("a"), chan_prov));
        let bad = Provenance::single(Event::output(Principal::new("a"), seq(vec![inp("c")])));
        assert!(compiled.matches(&good));
        assert!(!compiled.matches(&bad));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (Any; Any)* over a long provenance: the reference matcher would
        // explore exponentially many splits; the NFA stays linear.
        let pattern = Pattern::Any.then(Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        let long = Provenance::from_events((0..200).map(|_| out("a")).collect::<Vec<_>>());
        assert!(compiled.matches(&long));
    }

    #[test]
    fn star_requires_all_chunks_to_match() {
        let pattern = Pattern::send(GroupExpr::single("a"), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.matches(&seq(vec![out("a"), out("a")])));
        assert!(!compiled.matches(&seq(vec![out("a"), out("b")])));
        assert!(compiled.matches(&Provenance::empty()));
    }

    #[test]
    fn dead_states_short_circuit() {
        let pattern = Pattern::send(GroupExpr::single("a"), Pattern::Any);
        let compiled = CompiledPattern::compile(&pattern);
        // Second event can never be consumed: no live state remains.
        assert!(!compiled.matches(&seq(vec![out("a"), out("a"), out("a")])));
    }

    #[test]
    fn memo_returns_consistent_verdicts() {
        let pattern = Pattern::only_touched_by(GroupExpr::any_of(["a", "b"]));
        let compiled = CompiledPattern::compile(&pattern);
        let yes = seq(vec![out("a"), inp("b"), out("b")]);
        let no = seq(vec![out("a"), inp("c")]);
        for _ in 0..3 {
            assert!(compiled.matches(&yes));
            assert!(!compiled.matches(&no));
        }
        assert!(compiled.memo_entries() > 0, "verdicts were memoized");
    }

    #[test]
    fn memo_is_reused_across_shared_suffixes() {
        let pattern = Pattern::send(GroupExpr::all(), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        // Grow one history; every extension shares the previous spine, so
        // the memo grows by O(1) nodes per query instead of re-simulating
        // the whole sequence.
        let mut prov = Provenance::empty();
        for i in 0..32 {
            prov = prov.prepend(out(&format!("p{}", i % 4)));
            assert!(compiled.matches(&prov));
        }
        let entries_after_growth = compiled.memo_entries();
        // Re-vetting the full history is answered from the memo alone.
        assert!(compiled.matches(&prov));
        assert_eq!(compiled.memo_entries(), entries_after_growth);
    }

    #[test]
    fn matches_events_agrees_with_matches() {
        let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
        let compiled = CompiledPattern::compile(&pattern);
        for prov in sample_provenances() {
            let events: Vec<&Event> = prov.iter().collect();
            assert_eq!(compiled.matches_events(&events), compiled.matches(&prov));
        }
    }

    #[test]
    fn memo_stays_under_its_bound_on_a_long_workload() {
        let pattern = Pattern::send(GroupExpr::all(), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        compiled.set_memo_bound(16);
        // Vet far more distinct histories than the bound admits.
        for i in 0..400 {
            let prov = Provenance::from_events(
                (0..(1 + i % 7))
                    .map(|j| out(&format!("bound-{}-{}", i, j)))
                    .collect::<Vec<_>>(),
            );
            assert!(compiled.matches(&prov));
            assert!(
                compiled.memo_entries() <= 16,
                "memo exceeded its bound: {}",
                compiled.memo_entries()
            );
        }
        let stats = compiled.memo_stats();
        assert_eq!(stats.bound, 16);
        assert!(stats.epochs > 0, "the bound forced at least one epoch");
        assert!(stats.misses > 0);
        // Verdicts stay correct across epochs.
        assert!(compiled.matches(&seq(vec![out("fresh")])));
        assert!(!compiled.matches(&seq(vec![inp("fresh")])));
    }

    #[test]
    fn set_memo_bound_reaches_nested_channel_automata() {
        let inner = Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any);
        let pattern = Pattern::send(GroupExpr::single("a"), inner);
        let compiled = CompiledPattern::compile(&pattern);
        compiled.set_memo_bound(4);
        for i in 0..64 {
            let chan = seq(vec![out("b"), inp(&format!("nested-{}", i))]);
            let prov = Provenance::single(Event::output(Principal::new("a"), chan));
            assert!(compiled.matches(&prov));
        }
        // The nested automaton (vetting channel histories) saw 64 distinct
        // suffixes under a bound of 4: it must have cycled epochs.
        let nested_epochs: u64 = compiled
            .atoms
            .iter()
            .map(|a| a.channel.memo_stats().epochs)
            .sum();
        assert!(nested_epochs > 0, "nested memos respect the bound too");
        assert!(compiled.atoms.iter().all(|a| a.channel.memo_entries() <= 4));
    }

    #[test]
    fn shrinking_the_bound_clears_excess_entries_immediately() {
        let pattern = Pattern::Any;
        let compiled = CompiledPattern::compile(&pattern);
        for i in 0..32 {
            assert!(compiled.matches(&seq(vec![out(&format!("shrink-{}", i))])));
        }
        assert!(compiled.memo_entries() > 8);
        compiled.set_memo_bound(8);
        assert!(compiled.memo_entries() <= 8);
        assert!(compiled.memo_stats().epochs >= 1);
    }

    #[test]
    fn matches_with_stats_reports_memo_reuse() {
        let pattern = Pattern::send(GroupExpr::all(), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        let prov = seq(vec![out("ws-a"), out("ws-b"), out("ws-c")]);
        let (verdict, cold) = compiled.matches_with_stats(&prov);
        assert!(verdict);
        // The outer spine is fully simulated; the only hits come from the
        // nested channel automaton re-vetting the (memoized) ε history.
        assert_eq!(cold.nodes_visited, 3);
        assert_eq!(cold.memo_hits, 2);
        let (verdict, warm) = compiled.matches_with_stats(&prov);
        assert!(verdict);
        assert_eq!(warm.nodes_visited, 0, "second query simulates nothing");
        assert_eq!(warm.memo_hits, 1, "…it is answered by one memo lookup");
        // Extending the history costs O(new nodes): the new event plus at
        // most one more step until the state set re-enters a memoized
        // (suffix, states) pair — never a re-simulation of the whole spine.
        let grown = prov.prepend(out("ws-d"));
        let (_, incremental) = compiled.matches_with_stats(&grown);
        assert!(incremental.nodes_visited <= 2);
        assert!(incremental.memo_hits >= 1);
    }

    /// Drives one compiled pattern through the hot-set-plus-cold-stream
    /// workload that distinguishes the eviction policies: a small working
    /// set is re-vetted on every iteration while a stream of one-shot
    /// histories forces epoch rollovers.  Returns the memo stats.
    fn hot_and_cold_workload(eviction: MemoEviction) -> MemoStats {
        let pattern = Pattern::send(GroupExpr::all(), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        compiled.set_memo_bound(16);
        compiled.set_memo_eviction(eviction);
        let hot: Vec<Provenance> = (0..4)
            .map(|i| seq(vec![out(&format!("hot-{}", i)), out("shared")]))
            .collect();
        for i in 0..300 {
            assert!(compiled.matches(&hot[i % hot.len()]));
            let cold = seq(vec![out(&format!("cold-{}", i))]);
            assert!(compiled.matches(&cold));
            assert!(
                compiled.memo_entries() <= 16,
                "memo exceeded its bound: {}",
                compiled.memo_entries()
            );
        }
        compiled.memo_stats()
    }

    #[test]
    fn generational_eviction_retains_the_hot_working_set() {
        let generational = hot_and_cold_workload(MemoEviction::Generational);
        let wholesale = hot_and_cold_workload(MemoEviction::Wholesale);
        assert!(generational.epochs > 0, "the cold stream forced rollovers");
        assert!(wholesale.epochs > 0);
        assert!(
            generational.retained > 0,
            "hot entries survived at least one rollover"
        );
        assert_eq!(wholesale.retained, 0, "wholesale keeps nothing");
        // The regression the policy exists for: after a rollover the hot
        // working set still answers from the memo instead of re-simulating
        // from cold, so the identical workload misses less.
        assert!(
            generational.misses < wholesale.misses,
            "generational {} misses must beat wholesale {}",
            generational.misses,
            wholesale.misses
        );
    }

    #[test]
    fn generational_rollover_frees_at_least_half_the_memo() {
        // A workload where *every* entry is hot: vet the same histories
        // repeatedly so all cached verdicts answer lookups, then overflow.
        // The survivor cap (bound / 2) must still free room for the new
        // epoch rather than thrashing a rollover per insert.
        let pattern = Pattern::send(GroupExpr::all(), Pattern::Any).star();
        let compiled = CompiledPattern::compile(&pattern);
        compiled.set_memo_bound(8);
        let working: Vec<Provenance> = (0..8)
            .map(|i| seq(vec![out(&format!("w-{}", i))]))
            .collect();
        for _ in 0..3 {
            for prov in &working {
                assert!(compiled.matches(prov));
            }
        }
        // Overflow with fresh histories; entries never exceed the bound and
        // the memo never holds more than bound/2 survivors post-rollover.
        for i in 0..64 {
            assert!(compiled.matches(&seq(vec![out(&format!("fresh-{}", i))])));
            assert!(compiled.memo_entries() <= 8);
        }
        let stats = compiled.memo_stats();
        assert!(stats.epochs > 0);
        assert!(
            stats.retained <= stats.epochs * 4,
            "each rollover keeps at most bound/2 = 4 entries"
        );
    }

    #[test]
    fn clones_start_with_a_cold_memo() {
        let pattern = Pattern::Any;
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.matches(&seq(vec![out("a")])));
        assert!(compiled.memo_entries() > 0);
        let cloned = compiled.clone();
        assert_eq!(cloned.memo_entries(), 0);
        assert!(cloned.matches(&seq(vec![out("a")])));
    }

    #[test]
    fn debug_and_introspection() {
        let pattern = Pattern::immediately_sent_by(GroupExpr::single("c"));
        let compiled = CompiledPattern::compile(&pattern);
        assert!(compiled.state_count() >= 4);
        assert_eq!(compiled.source(), &pattern);
        let dbg = format!("{:?}", compiled);
        assert!(dbg.contains("CompiledPattern"));
    }

    #[test]
    fn agreement_helper() {
        let pattern = Pattern::originated_at(GroupExpr::single("d"));
        let compiled = CompiledPattern::compile(&pattern);
        for p in sample_provenances() {
            assert!(compiled.agrees_with_reference(&p));
        }
    }
}
