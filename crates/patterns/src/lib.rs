//! # piprov-patterns
//!
//! The sample pattern matching language of Table 3 of *"A Formal Model of
//! Provenance in Distributed Systems"*: regular-expression patterns over
//! provenance sequences, with group expressions over principals.
//!
//! The crate provides:
//!
//! * the pattern AST and group expressions ([`ast`]),
//! * the reference satisfaction relation `κ ⊨ π`, a direct transcription of
//!   the paper's inference rules ([`matching`]),
//! * a compiled NFA engine with identical semantics but linear-time
//!   matching ([`nfa`]),
//! * a parser for a concrete pattern syntax ([`parse`]),
//! * [`SamplePatterns`], an implementation of
//!   [`piprov_core::pattern::PatternLanguage`] that plugs either engine into
//!   the reduction semantics.
//!
//! ```
//! use piprov_core::pattern::PatternLanguage;
//! use piprov_core::provenance::{Event, Provenance};
//! use piprov_core::name::Principal;
//! use piprov_patterns::{parse::parse_pattern, SamplePatterns};
//!
//! let matcher = SamplePatterns::new();
//! let pattern = parse_pattern("c!Any; Any")?;
//! let prov = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
//! assert!(matcher.satisfies(&prov, &pattern));
//! # Ok::<(), piprov_patterns::parse::ParsePatternError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod matching;
pub mod nfa;
pub mod parse;

pub use ast::{EventPattern, GroupExpr, Pattern};
pub use nfa::{
    CompiledPattern, MatchStats, MemoEviction, MemoStats, WitnessStep, WitnessTrail,
    DEFAULT_MEMO_BOUND,
};
pub use parse::{parse_pattern, ParsePatternError};

use piprov_core::pattern::PatternLanguage;
use piprov_core::provenance::Provenance;
use std::collections::HashMap;
use std::sync::Mutex;

/// Which engine a [`SamplePatterns`] matcher uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The reference backtracking matcher (the paper's rules verbatim).
    Reference,
    /// The compiled NFA engine with a per-pattern compilation cache.
    #[default]
    Compiled,
}

/// The sample pattern language packaged as a
/// [`PatternLanguage`] instance, so it
/// can drive the reduction semantics of `piprov-core`.
///
/// The compiled engine memoises compilations keyed by the pattern's textual
/// form, so repeated vetting of the same input pattern (the common case in
/// long simulation runs) costs one hash lookup plus an NFA simulation.
#[derive(Debug, Default)]
pub struct SamplePatterns {
    engine: Engine,
    cache: Mutex<HashMap<Pattern, CompiledPattern>>,
}

impl SamplePatterns {
    /// A matcher using the default (compiled) engine.
    pub fn new() -> Self {
        SamplePatterns::default()
    }

    /// A matcher using the reference backtracking engine.
    pub fn reference() -> Self {
        SamplePatterns {
            engine: Engine::Reference,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// A matcher using the compiled NFA engine.
    pub fn compiled() -> Self {
        SamplePatterns {
            engine: Engine::Compiled,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The engine in use.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Number of patterns currently in the compilation cache.
    pub fn cached_patterns(&self) -> usize {
        self.cache.lock().map(|c| c.len()).unwrap_or(0)
    }
}

impl Clone for SamplePatterns {
    fn clone(&self) -> Self {
        SamplePatterns {
            engine: self.engine,
            cache: Mutex::new(HashMap::new()),
        }
    }
}

impl PatternLanguage for SamplePatterns {
    type Pattern = Pattern;

    fn satisfies(&self, provenance: &Provenance, pattern: &Pattern) -> bool {
        match self.engine {
            Engine::Reference => matching::satisfies(provenance, pattern),
            Engine::Compiled => {
                let mut cache = match self.cache.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let compiled = cache
                    .entry(pattern.clone())
                    .or_insert_with(|| CompiledPattern::compile(pattern));
                compiled.matches(provenance)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::Principal;
    use piprov_core::provenance::Event;

    fn sent_by(p: &str) -> Provenance {
        Provenance::single(Event::output(Principal::new(p), Provenance::empty()))
    }

    #[test]
    fn both_engines_agree_through_the_trait() {
        let pattern = parse_pattern("c!Any; Any").unwrap();
        let reference = SamplePatterns::reference();
        let compiled = SamplePatterns::compiled();
        for prov in [sent_by("c"), sent_by("d"), Provenance::empty()] {
            assert_eq!(
                reference.satisfies(&prov, &pattern),
                compiled.satisfies(&prov, &pattern)
            );
        }
    }

    #[test]
    fn compiled_engine_caches_compilations() {
        let matcher = SamplePatterns::compiled();
        let pattern = parse_pattern("Any; d!Any").unwrap();
        assert_eq!(matcher.cached_patterns(), 0);
        let _ = matcher.satisfies(&sent_by("d"), &pattern);
        let _ = matcher.satisfies(&sent_by("e"), &pattern);
        assert_eq!(matcher.cached_patterns(), 1);
    }

    #[test]
    fn default_engine_is_compiled() {
        assert_eq!(SamplePatterns::new().engine(), Engine::Compiled);
        assert_eq!(SamplePatterns::reference().engine(), Engine::Reference);
        let cloned = SamplePatterns::new().clone();
        assert_eq!(cloned.engine(), Engine::Compiled);
    }
}

#[cfg(test)]
mod proptests {
    //! Property-based tests: the two engines agree on random patterns and
    //! random provenance sequences, and parsing round-trips through display.

    use super::*;
    use piprov_core::name::Principal;
    use piprov_core::provenance::{Event, Provenance};
    use proptest::prelude::*;

    fn arb_principal() -> impl Strategy<Value = Principal> {
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")].prop_map(Principal::new)
    }

    fn arb_group(depth: u32) -> BoxedStrategy<GroupExpr> {
        let leaf = prop_oneof![
            arb_principal().prop_map(GroupExpr::Single),
            Just(GroupExpr::All),
        ];
        if depth == 0 {
            leaf.boxed()
        } else {
            prop_oneof![
                4 => leaf,
                1 => (arb_group(depth - 1), arb_group(depth - 1))
                    .prop_map(|(g, h)| g.union(h)),
                1 => (arb_group(depth - 1), arb_group(depth - 1))
                    .prop_map(|(g, h)| g.difference(h)),
            ]
            .boxed()
        }
    }

    fn arb_pattern(depth: u32) -> BoxedStrategy<Pattern> {
        let leaf = prop_oneof![
            Just(Pattern::Empty),
            Just(Pattern::Any),
            arb_group(1).prop_map(|g| Pattern::send(g, Pattern::Any)),
            arb_group(1).prop_map(|g| Pattern::receive(g, Pattern::Any)),
        ];
        if depth == 0 {
            leaf.boxed()
        } else {
            let rec = arb_pattern(depth - 1);
            prop_oneof![
                3 => leaf,
                2 => (arb_pattern(depth - 1), arb_pattern(depth - 1))
                    .prop_map(|(a, b)| a.then(b)),
                2 => (arb_pattern(depth - 1), arb_pattern(depth - 1))
                    .prop_map(|(a, b)| a.or(b)),
                1 => rec.prop_map(|a| a.star()),
                1 => (arb_group(1), arb_pattern(depth - 1))
                    .prop_map(|(g, p)| Pattern::send(g, p)),
            ]
            .boxed()
        }
    }

    fn arb_event(depth: u32) -> BoxedStrategy<Event> {
        if depth == 0 {
            (arb_principal(), any::<bool>())
                .prop_map(|(p, send)| {
                    if send {
                        Event::output(p, Provenance::empty())
                    } else {
                        Event::input(p, Provenance::empty())
                    }
                })
                .boxed()
        } else {
            (arb_principal(), any::<bool>(), arb_provenance(depth - 1))
                .prop_map(|(p, send, chan)| {
                    if send {
                        Event::output(p, chan)
                    } else {
                        Event::input(p, chan)
                    }
                })
                .boxed()
        }
    }

    fn arb_provenance(depth: u32) -> BoxedStrategy<Provenance> {
        proptest::collection::vec(arb_event(depth), 0..5)
            .prop_map(Provenance::from_events)
            .boxed()
    }

    proptest! {
        // 128 cases by default; the PIPROV_PROPTEST_CASES environment
        // variable overrides it (handled inside with_cases) for deeper CI
        // runs.
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn nfa_agrees_with_reference(pattern in arb_pattern(2), prov in arb_provenance(1)) {
            let compiled = CompiledPattern::compile(&pattern);
            prop_assert_eq!(compiled.matches(&prov), matching::satisfies(&prov, &pattern));
        }

        #[test]
        fn display_parse_round_trip(pattern in arb_pattern(2)) {
            let printed = pattern.to_string();
            let reparsed = parse::parse_pattern(&printed).unwrap();
            // Semantically equal: check on a few provenances (structural
            // equality can differ because display flattens parentheses).
            let compiled_a = CompiledPattern::compile(&pattern);
            let compiled_b = CompiledPattern::compile(&reparsed);
            let samples = [
                Provenance::empty(),
                Provenance::single(Event::output(Principal::new("a"), Provenance::empty())),
                Provenance::from_events(vec![
                    Event::input(Principal::new("b"), Provenance::empty()),
                    Event::output(Principal::new("a"), Provenance::empty()),
                ]),
            ];
            for s in &samples {
                prop_assert_eq!(compiled_a.matches(s), compiled_b.matches(s));
            }
        }

        #[test]
        fn any_pattern_always_matches(prov in arb_provenance(1)) {
            prop_assert!(matching::satisfies(&prov, &Pattern::Any));
        }

        #[test]
        fn empty_pattern_matches_only_empty(prov in arb_provenance(1)) {
            prop_assert_eq!(matching::satisfies(&prov, &Pattern::Empty), prov.is_empty());
        }

        #[test]
        fn star_is_idempotent_on_match(pattern in arb_pattern(1), prov in arb_provenance(1)) {
            // If κ ⊨ π* then κ ⊨ (π*)* as well.
            let starred = pattern.clone().star();
            let double = starred.clone().star();
            if matching::satisfies(&prov, &starred) {
                prop_assert!(matching::satisfies(&prov, &double));
            }
        }
    }
}
