//! A concrete textual syntax for patterns, with a lexer and a
//! recursive-descent parser.
//!
//! Grammar (whitespace insensitive):
//!
//! ```text
//! pattern  := alt
//! alt      := seq ('|' seq)*
//! seq      := postfix (';' postfix)*
//! postfix  := primary '*'*
//! primary  := 'Any' | 'eps' | event | '(' pattern ')'
//! event    := group ('!' | '?') postfix
//! group    := gterm (('+' | '-') gterm)*
//! gterm    := '~' | identifier | '(' group ')'
//! ```
//!
//! Examples: `c!Any; Any`, `Any; d!Any`, `(c1 + c3)!Any; Any`,
//! `(~ - mallory)!eps`, `(a!Any | a?Any)*`.

use crate::ast::{GroupExpr, Pattern};
use piprov_core::name::Principal;
use piprov_core::provenance::Direction;
use std::error::Error;
use std::fmt;

/// Error produced when a pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Character offset in the input where the problem was detected.
    pub position: usize,
    /// 1-based line of the offending character (0 until located).
    pub line: usize,
    /// 1-based column (in characters) of the offending character
    /// (0 until located).
    pub column: usize,
    /// The source line containing the error, for caret context.
    pub snippet: String,
}

impl ParsePatternError {
    /// Resolves `position` against `input` into a 1-based line/column
    /// pair and captures the offending source line as a snippet.
    ///
    /// Positions are character offsets (the lexer indexes characters,
    /// not bytes), so multi-byte input is located correctly.
    pub fn locate(mut self, input: &str) -> ParsePatternError {
        let mut line = 1usize;
        let mut column = 1usize;
        let mut line_start = 0usize;
        for (offset, c) in input.chars().enumerate() {
            if offset == self.position {
                break;
            }
            if c == '\n' {
                line += 1;
                column = 1;
                line_start = offset + 1;
            } else {
                column += 1;
            }
        }
        self.line = line;
        self.column = column;
        self.snippet = input
            .chars()
            .skip(line_start)
            .take_while(|&c| c != '\n')
            .collect::<String>()
            .trim_end_matches('\r')
            .to_string();
        self
    }

    /// Renders the offending line with a caret under the error column.
    /// Empty when the error has not been located against its input.
    fn caret_context(&self) -> Option<String> {
        if self.line == 0 {
            return None;
        }
        let caret_pad = self.column.saturating_sub(1);
        Some(format!(
            "  | {}\n  | {}^",
            self.snippet,
            " ".repeat(caret_pad)
        ))
    }
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            return write!(
                f,
                "pattern parse error at {}: {}",
                self.position, self.message
            );
        }
        write!(
            f,
            "pattern parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )?;
        if let Some(context) = self.caret_context() {
            write!(f, "\n{}", context)?;
        }
        Ok(())
    }
}

impl Error for ParsePatternError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Any,
    Eps,
    Bang,
    Question,
    Semi,
    Pipe,
    Star,
    Plus,
    Minus,
    Tilde,
    LParen,
    RParen,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    position: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, ParsePatternError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let position = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '!' => out.push(Spanned {
                token: Token::Bang,
                position,
            }),
            '?' => out.push(Spanned {
                token: Token::Question,
                position,
            }),
            ';' => out.push(Spanned {
                token: Token::Semi,
                position,
            }),
            '|' => out.push(Spanned {
                token: Token::Pipe,
                position,
            }),
            '*' => out.push(Spanned {
                token: Token::Star,
                position,
            }),
            '+' => out.push(Spanned {
                token: Token::Plus,
                position,
            }),
            '-' => out.push(Spanned {
                token: Token::Minus,
                position,
            }),
            '~' => out.push(Spanned {
                token: Token::Tilde,
                position,
            }),
            '(' => out.push(Spanned {
                token: Token::LParen,
                position,
            }),
            ')' => out.push(Spanned {
                token: Token::RParen,
                position,
            }),
            c if c.is_alphanumeric() || c == '_' => {
                let mut word = String::new();
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    word.push(bytes[i]);
                    i += 1;
                }
                let token = match word.as_str() {
                    "Any" | "any" => Token::Any,
                    "eps" | "epsilon" | "empty" => Token::Eps,
                    _ => Token::Ident(word),
                };
                out.push(Spanned { token, position });
                continue;
            }
            other => {
                return Err(ParsePatternError {
                    message: format!("unexpected character '{}'", other),
                    position,
                    line: 0,
                    column: 0,
                    snippet: String::new(),
                })
            }
        }
        i += 1;
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    cursor: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|s| &s.token)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map(|s| s.position)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.position + 1).unwrap_or(0))
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|s| s.token.clone());
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParsePatternError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.advance();
                Ok(())
            }
            _ => Err(self.error(format!("expected {}", what))),
        }
    }

    fn error(&self, message: String) -> ParsePatternError {
        ParsePatternError {
            message,
            position: self.position(),
            line: 0,
            column: 0,
            snippet: String::new(),
        }
    }

    fn pattern(&mut self) -> Result<Pattern, ParsePatternError> {
        self.alt()
    }

    fn alt(&mut self) -> Result<Pattern, ParsePatternError> {
        let mut left = self.seq()?;
        while self.peek() == Some(&Token::Pipe) {
            self.advance();
            let right = self.seq()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn seq(&mut self) -> Result<Pattern, ParsePatternError> {
        let mut left = self.postfix()?;
        while self.peek() == Some(&Token::Semi) {
            self.advance();
            let right = self.postfix()?;
            left = left.then(right);
        }
        Ok(left)
    }

    fn postfix(&mut self) -> Result<Pattern, ParsePatternError> {
        let mut inner = self.primary()?;
        while self.peek() == Some(&Token::Star) {
            self.advance();
            inner = inner.star();
        }
        Ok(inner)
    }

    fn primary(&mut self) -> Result<Pattern, ParsePatternError> {
        match self.peek() {
            Some(Token::Any) => {
                self.advance();
                Ok(Pattern::Any)
            }
            Some(Token::Eps) => {
                self.advance();
                Ok(Pattern::Empty)
            }
            Some(Token::Ident(_)) | Some(Token::Tilde) => self.event(),
            Some(Token::LParen) => {
                // Could be a parenthesised pattern or a parenthesised group
                // starting an event.  Try the event interpretation first and
                // backtrack on failure.
                let saved = self.cursor;
                match self.event() {
                    Ok(ev) => Ok(ev),
                    Err(_) => {
                        self.cursor = saved;
                        self.advance(); // consume '('
                        let inner = self.pattern()?;
                        self.expect(&Token::RParen, "')'")?;
                        Ok(inner)
                    }
                }
            }
            _ => Err(self.error("expected a pattern".to_string())),
        }
    }

    fn event(&mut self) -> Result<Pattern, ParsePatternError> {
        let group = self.group()?;
        let direction = match self.peek() {
            Some(Token::Bang) => Direction::Output,
            Some(Token::Question) => Direction::Input,
            _ => return Err(self.error("expected '!' or '?' after group".to_string())),
        };
        self.advance();
        let channel_pattern = self.postfix()?;
        Ok(match direction {
            Direction::Output => Pattern::send(group, channel_pattern),
            Direction::Input => Pattern::receive(group, channel_pattern),
        })
    }

    fn group(&mut self) -> Result<GroupExpr, ParsePatternError> {
        let mut left = self.gterm()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.advance();
                    left = left.union(self.gterm()?);
                }
                Some(Token::Minus) => {
                    self.advance();
                    left = left.difference(self.gterm()?);
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn gterm(&mut self) -> Result<GroupExpr, ParsePatternError> {
        match self.advance() {
            Some(Token::Tilde) => Ok(GroupExpr::All),
            Some(Token::Ident(name)) => Ok(GroupExpr::Single(Principal::new(name))),
            Some(Token::LParen) => {
                let inner = self.group()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            _ => Err(self.error("expected a group expression".to_string())),
        }
    }
}

/// Parses a pattern from its textual form.
///
/// # Errors
///
/// Returns a [`ParsePatternError`] describing the first syntax error.
///
/// ```
/// use piprov_patterns::parse::parse_pattern;
/// let p = parse_pattern("(c1 + c3)!Any; Any")?;
/// assert_eq!(p.to_string(), "(c1 + c3)!Any; Any");
/// # Ok::<(), piprov_patterns::parse::ParsePatternError>(())
/// ```
pub fn parse_pattern(input: &str) -> Result<Pattern, ParsePatternError> {
    parse_pattern_inner(input).map_err(|err| err.locate(input))
}

fn parse_pattern_inner(input: &str) -> Result<Pattern, ParsePatternError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, cursor: 0 };
    let pattern = parser.pattern()?;
    if parser.cursor != parser.tokens.len() {
        return Err(parser.error("unexpected trailing input".to_string()));
    }
    Ok(pattern)
}

impl std::str::FromStr for Pattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_pattern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GroupExpr;

    #[test]
    fn parses_paper_examples() {
        assert_eq!(
            parse_pattern("c!Any; Any").unwrap(),
            Pattern::immediately_sent_by(GroupExpr::single("c"))
        );
        assert_eq!(
            parse_pattern("Any; d!Any").unwrap(),
            Pattern::originated_at(GroupExpr::single("d"))
        );
        assert_eq!(
            parse_pattern("(c1 + c3)!Any; Any").unwrap(),
            Pattern::immediately_sent_by(GroupExpr::any_of(["c1", "c3"]))
        );
    }

    #[test]
    fn parses_epsilon_and_any() {
        assert_eq!(parse_pattern("eps").unwrap(), Pattern::Empty);
        assert_eq!(parse_pattern("empty").unwrap(), Pattern::Empty);
        assert_eq!(parse_pattern("Any").unwrap(), Pattern::Any);
    }

    #[test]
    fn parses_groups() {
        let p = parse_pattern("(~ - mallory)!Any").unwrap();
        assert_eq!(
            p,
            Pattern::send(GroupExpr::everyone_but("mallory"), Pattern::Any)
        );
        let q = parse_pattern("~?eps").unwrap();
        assert_eq!(q, Pattern::receive(GroupExpr::All, Pattern::Empty));
    }

    #[test]
    fn parses_alternation_and_star() {
        let p = parse_pattern("(a!Any | a?Any)*").unwrap();
        assert_eq!(p, Pattern::only_touched_by(GroupExpr::single("a")));
        let q = parse_pattern("a!Any*").unwrap();
        // The star binds to the nested channel pattern: a!(Any*).
        assert_eq!(
            q,
            Pattern::send(GroupExpr::single("a"), Pattern::Any.star())
        );
    }

    #[test]
    fn sequencing_is_right_nested_but_flat_semantically() {
        let p = parse_pattern("Any; Any; Any").unwrap();
        assert_eq!(p, Pattern::Any.then(Pattern::Any).then(Pattern::Any));
    }

    #[test]
    fn parenthesised_pattern_vs_group() {
        // '(' here opens a pattern, not a group.
        let p = parse_pattern("(Any; a!Any) | eps").unwrap();
        assert_eq!(
            p,
            Pattern::Any
                .then(Pattern::send(GroupExpr::single("a"), Pattern::Any))
                .or(Pattern::Empty)
        );
    }

    #[test]
    fn display_round_trip() {
        let sources = [
            "c!Any; Any",
            "Any; d!Any",
            "(c1 + c3)!Any; Any",
            "(a!Any | a?Any)*",
            "(~ - mallory)!eps",
            "a!(b!Any; Any)",
            "eps",
        ];
        for src in sources {
            let parsed = parse_pattern(src).unwrap();
            let reparsed = parse_pattern(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "round trip failed for {}", src);
        }
    }

    #[test]
    fn errors_are_reported_with_position() {
        let err = parse_pattern("c!Any;; Any").unwrap_err();
        assert!(err.position > 0);
        assert!(err.to_string().contains("parse error"));
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("a!").is_err());
        assert!(parse_pattern("a Any").is_err());
        assert!(parse_pattern("€").is_err());
        assert!(parse_pattern("(a!Any").is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse_pattern("c!Any;; Any").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 7);
        assert_eq!(err.snippet, "c!Any;; Any");

        // The same error on a later line reports that line, with a
        // column relative to the line start rather than the input start.
        let err = parse_pattern("c!Any;\nAny |\nd!Any;; Any").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 7);
        assert_eq!(err.snippet, "d!Any;; Any");
        let rendered = err.to_string();
        assert!(rendered.contains("line 3, column 7"), "{rendered}");
    }

    #[test]
    fn display_includes_caret_context() {
        let err = parse_pattern("a!Any |\n  ; Any").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 3);
        let rendered = err.to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3, "{rendered}");
        assert_eq!(lines[1], "  |   ; Any");
        assert_eq!(lines[2], "  |   ^");
    }

    #[test]
    fn multibyte_input_locates_by_characters_not_bytes() {
        // 'é' is two bytes but one character; the column must count it
        // as a single step.
        let err = parse_pattern("ééé €").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 5);

        let err = parse_pattern("Any;\nrésumé €").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 8);
        assert_eq!(err.snippet, "résumé €");
    }

    #[test]
    fn error_at_end_of_input_points_past_the_last_line() {
        let err = parse_pattern("a!Any;\nb!").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 3);
        assert_eq!(err.snippet, "b!");
    }

    #[test]
    fn from_str_impl() {
        let p: Pattern = "c!Any; Any".parse().unwrap();
        assert_eq!(p, Pattern::immediately_sent_by(GroupExpr::single("c")));
    }
}
