//! The reference satisfaction relation `κ ⊨ π` (Table 3, lower half).
//!
//! This is a direct transcription of the paper's inference rules as a
//! recursive, backtracking matcher.  It is the semantic reference against
//! which the compiled [`crate::nfa`] engine is checked (they must agree on
//! every input), but its worst case is exponential in the pattern size —
//! sequencing and repetition try every split point.

use crate::ast::{EventPattern, Pattern};
use piprov_core::provenance::{Event, Provenance};

/// Decides `κ ⊨ π` by structural recursion on the pattern.
pub fn satisfies(provenance: &Provenance, pattern: &Pattern) -> bool {
    let events: Vec<&Event> = provenance.iter().collect();
    satisfies_events(&events, pattern)
}

/// Decides whether a slice of borrowed events (most recent first)
/// satisfies a pattern.
///
/// The matcher works over `&[&Event]` cursor slices so that the
/// exponentially many splits tried by sequencing and repetition never
/// clone an event: every recursive call re-borrows a sub-slice of the
/// original sequence.
pub fn satisfies_events(events: &[&Event], pattern: &Pattern) -> bool {
    match pattern {
        // S-Any: every sequence matches Any.
        Pattern::Any => true,
        // S-Empty: only the empty sequence matches ε.
        Pattern::Empty => events.is_empty(),
        // S-Send / S-Recv: exactly one event, whose principal is in the
        // group, whose direction matches, and whose channel provenance
        // satisfies the nested pattern.
        Pattern::Event(ep) => events.len() == 1 && event_satisfies(events[0], ep),
        // S-Concat: some split of the sequence satisfies the two parts.
        Pattern::Seq(first, second) => (0..=events.len()).any(|i| {
            satisfies_events(&events[..i], first) && satisfies_events(&events[i..], second)
        }),
        // S-AltL / S-AltR.
        Pattern::Alt(left, right) => {
            satisfies_events(events, left) || satisfies_events(events, right)
        }
        // S-Rep: the sequence splits into zero or more chunks, each
        // satisfying the repeated pattern.  Chunks are non-empty, so the
        // recursion terminates even when the inner pattern is nullable.
        Pattern::Star(inner) => {
            if events.is_empty() {
                return true;
            }
            (1..=events.len()).any(|i| {
                satisfies_events(&events[..i], inner) && satisfies_events(&events[i..], pattern)
            })
        }
    }
}

/// Decides whether a single event satisfies an event pattern `G!π` / `G?π`.
pub fn event_satisfies(event: &Event, pattern: &EventPattern) -> bool {
    event.direction == pattern.direction
        && pattern.group.contains(&event.principal)
        && satisfies(&event.channel_provenance, &pattern.channel_pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GroupExpr;
    use piprov_core::name::Principal;

    fn out(p: &str) -> Event {
        Event::output(Principal::new(p), Provenance::empty())
    }
    fn inp(p: &str) -> Event {
        Event::input(Principal::new(p), Provenance::empty())
    }
    fn seq(events: Vec<Event>) -> Provenance {
        Provenance::from_events(events)
    }

    #[test]
    fn empty_matches_only_empty() {
        assert!(satisfies(&Provenance::empty(), &Pattern::Empty));
        assert!(!satisfies(&seq(vec![out("a")]), &Pattern::Empty));
    }

    #[test]
    fn any_matches_everything() {
        assert!(satisfies(&Provenance::empty(), &Pattern::Any));
        assert!(satisfies(&seq(vec![out("a"), inp("b")]), &Pattern::Any));
    }

    #[test]
    fn single_event_patterns() {
        let p = Pattern::send(GroupExpr::single("a"), Pattern::Any);
        assert!(satisfies(&seq(vec![out("a")]), &p));
        assert!(!satisfies(&seq(vec![inp("a")]), &p), "direction matters");
        assert!(!satisfies(&seq(vec![out("b")]), &p), "principal matters");
        assert!(
            !satisfies(&seq(vec![out("a"), out("a")]), &p),
            "event patterns match exactly one event"
        );
        assert!(!satisfies(&Provenance::empty(), &p));
    }

    #[test]
    fn nested_channel_pattern_is_checked() {
        // a!(b!Any) : a sent the value on a channel that b had sent somewhere.
        let inner = Pattern::send(GroupExpr::single("b"), Pattern::Any).then(Pattern::Any);
        let p = Pattern::send(GroupExpr::single("a"), inner);
        let chan_prov = Provenance::single(Event::output(Principal::new("b"), Provenance::empty()));
        let good = Provenance::single(Event::output(Principal::new("a"), chan_prov));
        let bad = Provenance::single(Event::output(Principal::new("a"), Provenance::empty()));
        assert!(satisfies(&good, &p));
        assert!(!satisfies(&bad, &p));
    }

    #[test]
    fn sequencing_tries_all_splits() {
        // (Any; a!Any) — last (oldest) event is a send by a.
        let p = Pattern::originated_at(GroupExpr::single("a"));
        assert!(satisfies(&seq(vec![out("a")]), &p));
        assert!(satisfies(&seq(vec![inp("c"), out("b"), out("a")]), &p));
        assert!(!satisfies(&seq(vec![out("a"), out("b")]), &p));
        assert!(!satisfies(&Provenance::empty(), &p), "needs the a! event");
    }

    #[test]
    fn immediate_sender_pattern() {
        // c!Any; Any — most recent event is a send by c.
        let p = Pattern::immediately_sent_by(GroupExpr::single("c"));
        assert!(satisfies(&seq(vec![out("c")]), &p));
        assert!(satisfies(&seq(vec![out("c"), inp("b"), out("a")]), &p));
        assert!(!satisfies(&seq(vec![inp("c"), out("c")]), &p));
    }

    #[test]
    fn alternation() {
        let p = Pattern::send(GroupExpr::single("a"), Pattern::Any)
            .or(Pattern::send(GroupExpr::single("b"), Pattern::Any));
        assert!(satisfies(&seq(vec![out("a")]), &p));
        assert!(satisfies(&seq(vec![out("b")]), &p));
        assert!(!satisfies(&seq(vec![out("c")]), &p));
    }

    #[test]
    fn repetition_allows_zero_or_more() {
        let p = Pattern::send(GroupExpr::all(), Pattern::Any).star();
        assert!(satisfies(&Provenance::empty(), &p));
        assert!(satisfies(&seq(vec![out("a")]), &p));
        assert!(satisfies(&seq(vec![out("a"), out("b"), out("c")]), &p));
        assert!(!satisfies(&seq(vec![out("a"), inp("b")]), &p));
    }

    #[test]
    fn only_touched_by_group() {
        let p = Pattern::only_touched_by(GroupExpr::any_of(["a", "b"]));
        assert!(satisfies(&seq(vec![out("a"), inp("b"), out("b")]), &p));
        assert!(!satisfies(&seq(vec![out("a"), inp("c")]), &p));
        assert!(satisfies(&Provenance::empty(), &p));
    }

    #[test]
    fn group_difference_excludes() {
        let p = Pattern::immediately_sent_by(GroupExpr::everyone_but("mallory"));
        assert!(satisfies(&seq(vec![out("alice")]), &p));
        assert!(!satisfies(&seq(vec![out("mallory")]), &p));
    }

    #[test]
    fn star_of_nullable_pattern_terminates() {
        // (Any)* where Any is nullable: must not loop forever.
        let p = Pattern::Any.star();
        assert!(satisfies(&seq(vec![out("a"), out("b")]), &p));
        assert!(satisfies(&Provenance::empty(), &p));
        let q = Pattern::Empty.star();
        assert!(satisfies(&Provenance::empty(), &q));
        assert!(!satisfies(&seq(vec![out("a")]), &q));
    }

    #[test]
    fn paper_competition_patterns() {
        // π1 = (c1 + c3)!Any; Any and π2 = c2!Any; Any
        let pi1 = Pattern::immediately_sent_by(GroupExpr::any_of(["c1", "c3"]));
        let pi2 = Pattern::immediately_sent_by(GroupExpr::single("c2"));
        let from_c1 = seq(vec![out("c1")]);
        let from_c2 = seq(vec![out("c2")]);
        let from_c3 = seq(vec![out("c3")]);
        assert!(satisfies(&from_c1, &pi1));
        assert!(satisfies(&from_c3, &pi1));
        assert!(!satisfies(&from_c2, &pi1));
        assert!(satisfies(&from_c2, &pi2));
        assert!(!satisfies(&from_c1, &pi2));
    }
}
