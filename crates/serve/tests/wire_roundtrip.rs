//! Property-based round-trip suite for the wire codec, plus
//! malformed-frame behaviour against a live server.
//!
//! * `decode(encode(m)) == m` for **every** request and response variant —
//!   including deeply shared provenance in embedded records, empty trails,
//!   and a deterministic near-cap maximum-size batch;
//! * malformed input (truncated frame, bad CRC, hostile length prefix,
//!   unknown tags, unsupported version) is a **typed** error on the
//!   decode side and, against a live [`AuditServer`], a best-effort
//!   `ServerError` frame followed by a clean close — never a panic, and
//!   never a wedged server: the pool keeps serving fresh connections.

use bytes::Bytes;
use piprov_audit::{
    AuditEngine, AuditOutcome, AuditRequest, AuditResponse, CounterfactualVerdict, EngineStats,
    EventFilter, Exemplar, HistogramSnapshot, MetricsSnapshot, PolicyInfo, PolicyListing,
    PolicySnapshot, RequestKind, RequestStats, Span, SpanKind, TraceContext, TraceRecord, WhyEvent,
    WhySlice,
};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Direction, Event, InternerStats, Provenance, ShardStats};
use piprov_core::value::Value;
use piprov_patterns::MemoStats;
use piprov_policy::{PackDiagnostic, PackFile, PackSource};
use piprov_serve::codec::{
    decode_request, decode_request_traced, decode_response, encode_request, encode_request_traced,
    encode_response,
};
use piprov_serve::wire::{read_frame, write_frame};
use piprov_serve::{
    AuditClient, AuditServer, ClientError, RequestTrace, ServeConfig, ServerCore, WireError,
    WireLimits, WireResponse,
};
use piprov_store::{AuditTrail, Operation, ProvenanceRecord};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..64).prop_map(|i| Value::Channel(Channel::new(format!("v{}", i)))),
        (0u32..64).prop_map(|i| Value::Principal(Principal::new(format!("q{}", i)))),
    ]
}

/// Builds provenance with genuine sharing: each step prepends one event
/// whose channel provenance and tail are drawn from the pool built so far.
fn build_provenance(steps: &[(u8, bool, usize, usize)]) -> Provenance {
    let mut pool: Vec<Provenance> = vec![Provenance::empty()];
    for (principal, output, channel_pick, tail_pick) in steps {
        let channel = pool[channel_pick % pool.len()].clone();
        let tail = pool[tail_pick % pool.len()].clone();
        let principal = Principal::new(format!("p{}", principal));
        let event = if *output {
            Event::output(principal, channel)
        } else {
            Event::input(principal, channel)
        };
        pool.push(tail.prepend(event));
    }
    pool.last().expect("pool starts non-empty").clone()
}

fn arb_provenance() -> impl Strategy<Value = Provenance> {
    proptest::collection::vec((0u8..5, any::<bool>(), 0usize..16, 0usize..16), 0..12)
        .prop_map(|steps| build_provenance(&steps))
}

fn arb_record() -> impl Strategy<Value = ProvenanceRecord> {
    (
        (0u64..1 << 48, 0u64..1 << 32, 0u8..4, 0u32..32),
        arb_value(),
        arb_provenance(),
    )
        .prop_map(
            |((sequence, logical_time, op, chan), value, provenance)| ProvenanceRecord {
                sequence,
                logical_time,
                principal: Principal::new(format!("actor{}", op)),
                operation: Operation::from_tag(op).expect("tag in range"),
                channel: Channel::new(format!("chan{}", chan)),
                value,
                provenance,
            },
        )
}

fn arb_event_filter() -> impl Strategy<Value = EventFilter> {
    prop_oneof![
        (0u32..32).prop_map(|p| EventFilter::Principal(Principal::new(format!("p{}", p)))),
        prop_oneof![Just(Direction::Output), Just(Direction::Input)].prop_map(EventFilter::Kind),
        (0u32..32).prop_map(|p| EventFilter::ChannelVia(Principal::new(format!("p{}", p)))),
    ]
}

fn arb_audit_request() -> impl Strategy<Value = AuditRequest> {
    prop_oneof![
        (arb_value(), 0u32..16).prop_map(|(value, p)| AuditRequest::VetValue {
            value,
            pattern: format!("pattern{}", p),
        }),
        arb_value().prop_map(|value| AuditRequest::AuditTrail { value }),
        (0u32..32).prop_map(|p| AuditRequest::WhoTouched {
            principal: Principal::new(format!("p{}", p)),
        }),
        arb_value().prop_map(|value| AuditRequest::OriginOf { value }),
        (arb_value(), 0u32..16).prop_map(|(value, p)| AuditRequest::Why {
            value,
            pattern: format!("pattern{}", p),
        }),
        (arb_value(), 0u32..16, arb_event_filter()).prop_map(|(value, p, remove)| {
            AuditRequest::Counterfactual {
                value,
                pattern: format!("pattern{}", p),
                remove,
            }
        }),
    ]
}

fn arb_request_stats() -> impl Strategy<Value = RequestStats> {
    (
        0usize..1 << 20,
        0usize..1 << 20,
        0usize..1 << 20,
        0usize..1 << 20,
    )
        .prop_map(
            |(index_hits, memo_hits, dag_nodes_visited, memo_reused)| RequestStats {
                index_hits,
                memo_hits,
                dag_nodes_visited,
                memo_reused,
            },
        )
}

fn arb_why_events() -> impl Strategy<Value = Vec<WhyEvent>> {
    proptest::collection::vec(
        (any::<u32>(), 0u8..5, any::<bool>(), arb_provenance()),
        0..5,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(node, principal, output, channel)| {
                let principal = Principal::new(format!("p{}", principal));
                let event = if output {
                    Event::output(principal, channel)
                } else {
                    Event::input(principal, channel)
                };
                WhyEvent { node, event }
            })
            .collect()
    })
}

fn arb_why_slice() -> impl Strategy<Value = WhySlice> {
    (
        any::<bool>(),
        0u64..1 << 40,
        arb_why_events(),
        any::<bool>(),
    )
        .prop_map(|(verdict, sequence, events, mark_blocked)| {
            // The codec rejects out-of-range blocked indices, so only mark a
            // blocked frontier when there is an event to point at.
            let blocked = if mark_blocked && !events.is_empty() {
                Some(events.len() as u32 - 1)
            } else {
                None
            };
            WhySlice {
                verdict,
                sequence,
                events,
                blocked,
            }
        })
}

fn arb_counterfactual() -> impl Strategy<Value = CounterfactualVerdict> {
    (
        any::<bool>(),
        any::<bool>(),
        0u64..1 << 40,
        arb_why_events(),
    )
        .prop_map(
            |(original, counterfactual, sequence, removed)| CounterfactualVerdict {
                original,
                counterfactual,
                sequence,
                removed,
            },
        )
}

fn arb_outcome() -> impl Strategy<Value = AuditOutcome> {
    prop_oneof![
        (any::<bool>(), 0u64..1 << 40)
            .prop_map(|(verdict, sequence)| AuditOutcome::Vetted { verdict, sequence }),
        (
            arb_value(),
            proptest::collection::vec(arb_record(), 0..4),
            proptest::collection::vec(0u32..32, 0..6),
            proptest::collection::vec(0u32..32, 0..6),
        )
            .prop_map(|(value, records, principals, channels)| {
                AuditOutcome::Trail(AuditTrail {
                    value,
                    records,
                    principals: principals
                        .into_iter()
                        .map(|i| Principal::new(format!("p{}", i)))
                        .collect(),
                    channels: channels
                        .into_iter()
                        .map(|i| Channel::new(format!("c{}", i)))
                        .collect(),
                })
            }),
        (
            proptest::collection::vec(0u64..1 << 40, 0..8),
            proptest::collection::vec(arb_value(), 0..8),
        )
            .prop_map(|(records, values)| AuditOutcome::Touched { records, values }),
        prop_oneof![
            Just(None),
            (0u32..32).prop_map(|i| Some(Principal::new(format!("p{}", i)))),
        ]
        .prop_map(|principal| AuditOutcome::Origin { principal }),
        Just(AuditOutcome::UnknownValue),
        (
            proptest::collection::vec(0u32..32, 0..6),
            prop_oneof![
                Just(None),
                (0u32..32).prop_map(|i| Some(format!("pol{}", i))),
            ],
        )
            .prop_map(|(known, nearest)| AuditOutcome::UnknownPattern {
                known: known.into_iter().map(|i| format!("pol{}", i)).collect(),
                nearest,
            }),
        arb_why_slice().prop_map(AuditOutcome::Why),
        arb_counterfactual().prop_map(AuditOutcome::Counterfactual),
    ]
}

fn arb_pack_source() -> impl Strategy<Value = PackSource> {
    (0u32..4, proptest::collection::vec((0u32..8, 0u32..4), 0..4)).prop_map(|(root, files)| {
        PackSource::new(
            format!("root{}", root),
            files
                .into_iter()
                .enumerate()
                .map(|(i, (stem, n))| {
                    PackFile::new(
                        format!("f{}_{}.ppol", i, stem),
                        format!("policy p{} = Any\n", n),
                    )
                })
                .collect(),
        )
    })
}

fn arb_engine_stats() -> impl Strategy<Value = EngineStats> {
    proptest::collection::vec(0u64..u64::MAX, 12..13).prop_map(|v| EngineStats {
        requests: v[0],
        ingested: v[1],
        vets_passed: v[2],
        vets_failed: v[3],
        index_hits: v[4],
        memo_hits: v[5],
        ingest_batches: v[6],
        busy_rejections: v[7],
        queue_depth: v[8],
        snapshots_published: v[9],
        snapshot_lag: v[10],
        watermark: v[11],
    })
}

fn arb_memo_stats() -> impl Strategy<Value = MemoStats> {
    (
        0usize..1 << 20,
        0usize..1 << 20,
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
    )
        .prop_map(
            |(entries, bound, epochs, hits, misses, retained)| MemoStats {
                entries,
                bound,
                epochs,
                hits,
                misses,
                retained,
            },
        )
}

/// A 128-bit trace id out of two 64-bit halves (the vendored proptest
/// shim has no `u128` ranges); the nonzero low half keeps it a real id.
fn arb_trace_id() -> impl Strategy<Value = u128> {
    (0u64..u64::MAX, 1u64..u64::MAX).prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

fn arb_exemplar() -> impl Strategy<Value = Option<Exemplar>> {
    prop_oneof![
        2 => Just(None),
        1 => (arb_trace_id(), 0u64..1 << 40)
            .prop_map(|(trace_id, value_ns)| Some(Exemplar { trace_id, value_ns })),
    ]
}

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(0u64..1 << 40, 0..20),
        0u64..1 << 40,
        0u64..u64::MAX,
        0u64..1 << 40,
        proptest::collection::vec(arb_exemplar(), 0..18),
    )
        .prop_map(
            |(counts, overflow, sum_ns, count, exemplars)| HistogramSnapshot {
                counts,
                overflow,
                sum_ns,
                count,
                exemplars,
            },
        )
}

fn arb_policy_snapshot() -> impl Strategy<Value = PolicySnapshot> {
    (
        (0u32..64).prop_map(|i| format!("policy-{}", i)),
        arb_memo_stats(),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40),
        arb_histogram(),
    )
        .prop_map(
            |(
                policy,
                memo,
                (vets_passed, vets_failed, vets_unknown_value),
                (counterfactuals, counterfactual_flips),
                latency,
            )| {
                PolicySnapshot {
                    policy,
                    memo,
                    vets_passed,
                    vets_failed,
                    vets_unknown_value,
                    counterfactuals,
                    counterfactual_flips,
                    latency,
                }
            },
        )
}

fn arb_metrics_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        arb_engine_stats(),
        (0usize..1 << 30, 0usize..1 << 10, 0usize..1 << 40),
        (0u64..u64::MAX, 0u64..u64::MAX, 0usize..64, 0usize..1 << 20),
        proptest::collection::vec(
            (0usize..64, 0usize..1 << 20, 0u64..1 << 40, 0u64..1 << 40),
            0..5,
        ),
        (
            (
                0u64..1 << 40,
                arb_histogram(),
                arb_histogram(),
                arb_histogram(),
            ),
            (0u64..1 << 31, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 20),
        ),
        proptest::collection::vec(arb_policy_snapshot(), 0..4),
    )
        .prop_map(
            |(
                engine,
                (records, segments, bytes),
                (hits, misses, shards, interned_nodes),
                shard_rows,
                (
                    (vets_unknown_pattern, frame_decode, request_service, ingest_queue_wait),
                    (uptime_seconds, connections_accepted, connections_closed, open_connections),
                ),
                policies,
            )| MetricsSnapshot {
                engine,
                store: piprov_store::StoreStats {
                    records,
                    segments,
                    bytes,
                },
                interner: InternerStats {
                    interned_nodes,
                    hits,
                    misses,
                    shards,
                },
                interner_shards: shard_rows
                    .into_iter()
                    .map(|(shard, entries, hits, misses)| ShardStats {
                        shard,
                        entries,
                        hits,
                        misses,
                    })
                    .collect(),
                vets_unknown_pattern,
                frame_decode,
                request_service,
                ingest_queue_wait,
                uptime_seconds,
                connections_accepted,
                connections_closed,
                open_connections,
                policies,
            },
        )
}

fn arb_trace_record() -> impl Strategy<Value = TraceRecord> {
    (
        arb_trace_id(),
        0u8..9,
        0u64..1 << 48,
        proptest::collection::vec((0u8..5, 0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 20), 0..6),
    )
        .prop_map(|(trace_id, kind, total_ns, spans)| TraceRecord {
            trace_id,
            kind: RequestKind::from_u8(kind + 1).expect("kind in range"),
            total_ns,
            spans: spans
                .into_iter()
                .map(|(k, duration_ns, index_hits, memo_hits)| Span {
                    kind: SpanKind::from_u8(k + 1).expect("span kind in range"),
                    duration_ns,
                    index_hits,
                    memo_hits,
                })
                .collect(),
        })
}

fn arb_request_trace() -> impl Strategy<Value = RequestTrace> {
    (arb_trace_id(), any::<bool>(), 0u64..1 << 40).prop_map(
        |(trace_id, sampled, client_encode_ns)| RequestTrace {
            context: TraceContext { trace_id, sampled },
            client_encode_ns,
        },
    )
}

fn arb_wire_request() -> impl Strategy<Value = piprov_serve::WireRequest> {
    use piprov_serve::WireRequest;
    prop_oneof![
        4 => arb_audit_request().prop_map(WireRequest::Audit),
        2 => proptest::collection::vec(arb_record(), 0..6).prop_map(WireRequest::IngestBatch),
        1 => Just(WireRequest::Flush),
        1 => Just(WireRequest::Stats),
        1 => Just(WireRequest::Metrics),
        1 => (0u64..1 << 48).prop_map(|min_total_ns| WireRequest::Traces { min_total_ns }),
        1 => arb_pack_source().prop_map(WireRequest::LoadPack),
        1 => Just(WireRequest::ListPolicies),
    ]
}

fn arb_wire_response() -> impl Strategy<Value = WireResponse> {
    prop_oneof![
        4 => (arb_outcome(), arb_request_stats(), 0u64..1 << 48, 0u64..1 << 32)
            .prop_map(|(outcome, stats, watermark, pack_version)| {
                WireResponse::Audit(AuditResponse {
                    outcome,
                    stats,
                    watermark,
                    pack_version,
                })
            }),
        1 => (0u32..1 << 16, 0u32..256).prop_map(|(accepted, queue_depth)| {
            WireResponse::IngestAck {
                accepted,
                queue_depth,
            }
        }),
        1 => (0u32..256).prop_map(|queue_depth| WireResponse::Busy { queue_depth }),
        1 => (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(ingested, watermark)| {
            WireResponse::Flushed {
                ingested,
                watermark,
            }
        }),
        1 => arb_engine_stats().prop_map(WireResponse::Stats),
        1 => arb_metrics_snapshot().prop_map(|m| WireResponse::Metrics(Box::new(m))),
        1 => proptest::collection::vec(arb_trace_record(), 0..5).prop_map(WireResponse::Traces),
        1 => (0u32..64).prop_map(|i| WireResponse::ServerError {
            message: format!("error {}", i),
        }),
        1 => (0u64..1 << 40, 0u32..1 << 16, 0u32..1 << 16).prop_map(
            |(version, installed, reused)| WireResponse::PackLoaded {
                version,
                installed,
                reused,
            }
        ),
        1 => proptest::collection::vec((0u32..8, 0u64..1 << 20, 0u64..1 << 20, 0u32..16), 0..4)
            .prop_map(|diags| WireResponse::PackRejected {
                diagnostics: diags
                    .into_iter()
                    .map(|(p, line, column, m)| PackDiagnostic::new(
                        format!("f{}.ppol", p),
                        line as usize,
                        column as usize,
                        format!("msg {}", m),
                    ))
                    .collect(),
            }),
        1 => (0u64..1 << 40, proptest::collection::vec((0u32..16, 0u32..8), 0..4)).prop_map(
            |(version, infos)| WireResponse::Policies(PolicyListing {
                version,
                policies: infos
                    .into_iter()
                    .map(|(n, p)| PolicyInfo {
                        name: format!("pkg{}::pol{}", p, n),
                        package: format!("pkg{}", p),
                        source: "Any".to_string(),
                    })
                    .collect(),
            })
        ),
    ]
}

proptest! {
    // 64 cases by default; PIPROV_PROPTEST_CASES raises it in CI.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip(request in arb_wire_request()) {
        let limits = WireLimits::default();
        let decoded = decode_request(encode_request(&request), &limits).unwrap();
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn traced_requests_round_trip(
        request in arb_wire_request(),
        trace in prop_oneof![Just(None), arb_request_trace().prop_map(Some)],
    ) {
        // The additive v4 trace field survives the round trip for every
        // request shape, and its absence decodes as `None`.
        let limits = WireLimits::default();
        let body = encode_request_traced(&request, trace.as_ref());
        let (decoded, decoded_trace) = decode_request_traced(body, &limits).unwrap();
        prop_assert_eq!(decoded, request);
        prop_assert_eq!(decoded_trace, trace);
    }

    #[test]
    fn responses_round_trip(response in arb_wire_response()) {
        let limits = WireLimits::default();
        let decoded = decode_response(encode_response(&response), &limits).unwrap();
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn framing_is_transparent(response in arb_wire_response()) {
        // Through the actual frame layer (header + CRC), not just the body
        // codec.
        let limits = WireLimits::default();
        let mut out = Vec::new();
        write_frame(&mut out, &encode_response(&response)).unwrap();
        let mut cursor = std::io::Cursor::new(out);
        let frame = read_frame(&mut cursor, limits.max_frame_len).unwrap().unwrap();
        prop_assert_eq!(decode_response(frame, &limits).unwrap(), response);
        prop_assert!(read_frame(&mut cursor, limits.max_frame_len).unwrap().is_none());
    }

    #[test]
    fn corrupting_any_byte_never_panics(response in arb_wire_response(), flip in 0usize..4096) {
        // Decode of a corrupted body either fails with a typed error or
        // yields some decoded message — it must never panic or over-read.
        let mut body = encode_response(&response).to_vec();
        if body.is_empty() {
            return;
        }
        let idx = flip % body.len();
        body[idx] ^= 0x41;
        let _ = decode_response(Bytes::from(body), &WireLimits::default());
    }
}

/// The empty-trail edge the codec must not choke on: a trail with no
/// records, principals, or channels.
#[test]
fn empty_trail_round_trips() {
    let limits = WireLimits::default();
    let response = WireResponse::Audit(AuditResponse {
        outcome: AuditOutcome::Trail(AuditTrail {
            value: Value::Channel(Channel::new("ghost")),
            records: Vec::new(),
            principals: Vec::new(),
            channels: Vec::new(),
        }),
        stats: RequestStats::default(),
        watermark: 0,
        pack_version: 0,
    });
    let decoded = decode_response(encode_response(&response), &limits).unwrap();
    assert_eq!(decoded, response);
}

/// A batch right at the configured record cap round-trips; one past it is
/// rejected before any record is decoded.
#[test]
fn max_size_batch_round_trips_and_the_cap_binds() {
    let limits = WireLimits {
        max_records: 512,
        ..WireLimits::default()
    };
    let record = |i: u64| {
        ProvenanceRecord::new(
            i,
            "p",
            Operation::Send,
            "m",
            Value::Channel(Channel::new(format!("v{}", i))),
            Provenance::single(Event::output(Principal::new("p"), Provenance::empty())),
        )
    };
    let at_cap: Vec<ProvenanceRecord> = (0..512).map(record).collect();
    let request = piprov_serve::WireRequest::IngestBatch(at_cap);
    let encoded = encode_request(&request);
    assert_eq!(decode_request(encoded, &limits).unwrap(), request);

    let over_cap: Vec<ProvenanceRecord> = (0..513).map(record).collect();
    let err = decode_request(
        encode_request(&piprov_serve::WireRequest::IngestBatch(over_cap)),
        &limits,
    )
    .unwrap_err();
    assert!(matches!(err, WireError::Malformed(_)), "{:?}", err);
}

// ---------------------------------------------------------------------------
// Malformed frames against a live server — run against both cores: hostile
// input must die the same typed death whichever core fields it.
// ---------------------------------------------------------------------------

fn live_server(name: &str, core: ServerCore) -> (AuditServer, std::path::PathBuf) {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "piprov-serve-mal-{}-{}-{}",
        std::process::id(),
        name,
        core.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Arc::new(AuditEngine::open(&dir).unwrap());
    let config = ServeConfig {
        core,
        ..ServeConfig::default()
    };
    let server = AuditServer::bind(engine, "127.0.0.1:0", config).unwrap();
    (server, dir)
}

fn expect_server_error_then_close(client: &mut AuditClient, what: &str) {
    // Best effort: the server names the cause in a final frame, then
    // closes; depending on timing the client may only observe the close.
    match client.receive_response() {
        Ok(WireResponse::ServerError { message }) => {
            assert!(!message.is_empty(), "{}: error frame names a cause", what);
            assert!(matches!(
                client.receive_response(),
                Err(ClientError::ConnectionClosed) | Err(ClientError::Wire(_))
            ));
        }
        Err(ClientError::ConnectionClosed) | Err(ClientError::Wire(_)) => {}
        other => panic!("{}: expected error-then-close, got {:?}", what, other),
    }
}

#[test]
fn hostile_length_prefix_gets_a_typed_error_and_the_server_survives() {
    for core in ServerCore::all() {
        let (server, dir) = live_server("hostile-len", core);
        let addr = server.local_addr();
        {
            let mut client = AuditClient::connect(addr).unwrap();
            // A frame header announcing a 4 GiB body.
            let mut frame = Vec::new();
            frame.extend_from_slice(&u32::MAX.to_be_bytes());
            frame.extend_from_slice(&0u32.to_be_bytes());
            client.send_raw(&frame).unwrap();
            expect_server_error_then_close(&mut client, "hostile length");
        }
        // The pool is not wedged: a fresh connection is served normally.
        let mut fresh = AuditClient::connect(addr).unwrap();
        assert_eq!(fresh.stats().unwrap().ingested, 0);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn bad_crc_gets_a_typed_error_and_the_server_survives() {
    for core in ServerCore::all() {
        let (server, dir) = live_server("bad-crc", core);
        let addr = server.local_addr();
        {
            let mut client = AuditClient::connect(addr).unwrap();
            let mut framed = Vec::new();
            write_frame(
                &mut framed,
                &encode_request(&piprov_serve::WireRequest::Stats),
            )
            .unwrap();
            let last = framed.len() - 1;
            framed[last] ^= 0xFF;
            client.send_raw(&framed).unwrap();
            expect_server_error_then_close(&mut client, "bad crc");
        }
        let mut fresh = AuditClient::connect(addr).unwrap();
        assert!(fresh.stats().is_ok());
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn unknown_tags_and_versions_get_typed_errors() {
    for core in ServerCore::all() {
        let (server, dir) = live_server("bad-body", core);
        let addr = server.local_addr();
        // (byte offset to clobber, value, scenario): version byte, then tag.
        for (offset, bad_byte, what) in [(0usize, 99u8, "bad version"), (1, 77, "bad tag")] {
            let mut client = AuditClient::connect(addr).unwrap();
            let mut body = encode_request(&piprov_serve::WireRequest::Stats).to_vec();
            body[offset] = bad_byte;
            let mut framed = Vec::new();
            write_frame(&mut framed, &body).unwrap();
            client.send_raw(&framed).unwrap();
            expect_server_error_then_close(&mut client, what);
        }
        let mut fresh = AuditClient::connect(addr).unwrap();
        assert!(fresh.stats().is_ok());
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_frame_closes_cleanly_without_wedging_the_server() {
    for core in ServerCore::all() {
        let (server, dir) = live_server("truncated", core);
        let addr = server.local_addr();
        {
            let mut client = AuditClient::connect(addr).unwrap();
            let mut framed = Vec::new();
            write_frame(
                &mut framed,
                &encode_request(&piprov_serve::WireRequest::Stats),
            )
            .unwrap();
            // Send only part of the frame, then drop the connection: the
            // server sees a truncated body and must just close its side.
            client.send_raw(&framed[..framed.len() - 3]).unwrap();
        }
        let mut fresh = AuditClient::connect(addr).unwrap();
        assert!(fresh.stats().is_ok());
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
