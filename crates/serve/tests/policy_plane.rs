//! The policy-pack plane over the wire, against **both server cores**:
//! `LoadPack` publishing a whole pack atomically, `ListPolicies` and
//! `GET /policies` reading the published set back, per-file line/column
//! diagnostics for rejected packs, and — the acceptance bar — hot
//! reloads that never drop a vet: auditor connections vet continuously
//! while packs swap underneath them, and every answer is explained by
//! exactly one pack version.

use piprov_audit::{AuditEngine, AuditOutcome, AuditRequest};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_policy::{PackFile, PackSource};
use piprov_serve::{AuditClient, AuditServer, PackLoadOutcome, ServeConfig, ServerCore};
use piprov_store::{Operation, ProvenanceRecord};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn temp_dir(name: &str, core: ServerCore) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "piprov-serve-ppack-{}-{}-{}",
        std::process::id(),
        name,
        core.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(core: ServerCore) -> ServeConfig {
    ServeConfig {
        core,
        ..ServeConfig::default()
    }
}

fn value(name: &str) -> Value {
    Value::Channel(Channel::new(name))
}

fn record(i: u64, who: &str) -> ProvenanceRecord {
    let k = Provenance::single(Event::output(Principal::new(who), Provenance::empty()));
    ProvenanceRecord::new(
        i,
        who,
        Operation::Send,
        "m",
        value(&format!("item{}", i)),
        k,
    )
}

/// One raw HTTP GET against the framed port; returns the full response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {} HTTP/1.1\r\nHost: piprov\r\n\r\n", path).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// A two-policy pack under package `supply_chain::build`; `vendor_only`
/// varies with `variant` so alternating loads genuinely recompile it,
/// while `origin` stays identical (and its automaton is carried over).
fn pack(variant: usize) -> PackSource {
    let vendor_only = if variant.is_multiple_of(2) {
        "s0!Any; Any"
    } else {
        "(s0!Any; Any) | eps"
    };
    PackSource::new(
        "supply_chain",
        vec![PackFile::new(
            "build.ppol",
            format!(
                "package supply_chain::build\n\n\
                 policy vendor_only = {}\n\
                 policy origin = s0!Any\n",
                vendor_only
            ),
        )],
    )
}

fn broken_pack() -> PackSource {
    PackSource::new(
        "supply_chain",
        vec![PackFile::new(
            "build.ppol",
            "package supply_chain::build\npolicy broken = (((\n",
        )],
    )
}

const VENDOR_ONLY: &str = "supply_chain::build::vendor_only";

#[test]
fn load_list_and_scrape_the_policy_plane_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("list", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let addr = server.local_addr();
        let mut client = AuditClient::connect(addr).unwrap();
        client.ingest_blocking(vec![record(1, "s0")]).unwrap();
        client.flush().unwrap();

        // Load the pack: two policies published at version 1.
        let loaded = client.load_pack(&pack(0)).unwrap();
        assert_eq!(
            loaded,
            PackLoadOutcome::Loaded {
                version: 1,
                installed: 2,
                reused: 0,
            }
        );

        // Vets answer from the freshly published pack, stamped with it.
        let vetted = client
            .request(&AuditRequest::VetValue {
                value: value("item1"),
                pattern: VENDOR_ONLY.into(),
            })
            .unwrap();
        assert!(matches!(
            vetted.outcome,
            AuditOutcome::Vetted { verdict: true, .. }
        ));
        assert_eq!(vetted.pack_version, 1);

        // The listing carries the version, sorted names, packages, and
        // canonical sources.
        let listing = client.list_policies().unwrap();
        assert_eq!(listing.version, 1);
        let names: Vec<&str> = listing.policies.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["supply_chain::build::origin", VENDOR_ONLY]);
        assert!(listing
            .policies
            .iter()
            .all(|p| p.package == "supply_chain::build"));

        // The same listing is served as plaintext next to /metrics.
        let scrape = http_get(addr, "/policies");
        assert!(
            scrape.starts_with("HTTP/1.1 200 OK\r\n"),
            "unexpected scrape: {}",
            scrape
        );
        assert!(scrape.contains("# pack version 1 (2 policies)"));
        assert!(scrape.contains("supply_chain::build::vendor_only [supply_chain::build] = "));

        // A misspelled policy name comes back with the sorted known set
        // and a nearest-name hint — over the wire, not just in-process.
        let typo = client
            .request(&AuditRequest::VetValue {
                value: value("item1"),
                pattern: "supply_chain::build::vendor_onyl".into(),
            })
            .unwrap();
        match &typo.outcome {
            AuditOutcome::UnknownPattern { known, nearest } => {
                assert_eq!(known.as_slice(), names.as_slice());
                assert_eq!(nearest.as_deref(), Some(VENDOR_ONLY));
            }
            other => panic!("expected UnknownPattern, got {:?}", other),
        }

        // A broken pack is rejected with file/line/column diagnostics and
        // changes nothing: all-or-nothing.
        match client.load_pack(&broken_pack()).unwrap() {
            PackLoadOutcome::Rejected { diagnostics } => {
                assert!(!diagnostics.is_empty());
                assert_eq!(diagnostics[0].path, "build.ppol");
                assert_eq!(diagnostics[0].line, 2);
                assert!(diagnostics[0].column >= 1);
            }
            other => panic!("expected rejection, got {:?}", other),
        }
        let unchanged = client.list_policies().unwrap();
        assert_eq!(unchanged, listing);

        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn hot_reloads_never_drop_a_wire_vet_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("reload", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let addr = server.local_addr();

        let mut loader = AuditClient::connect(addr).unwrap();
        loader.ingest_blocking(vec![record(1, "s0")]).unwrap();
        loader.flush().unwrap();
        assert!(matches!(
            loader.load_pack(&pack(0)).unwrap(),
            PackLoadOutcome::Loaded { version: 1, .. }
        ));

        // Auditors vet continuously over their own connections while the
        // loader swaps packs underneath them.
        let done = Arc::new(AtomicBool::new(false));
        let auditors: Vec<_> = (0..3)
            .map(|_| {
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut client = AuditClient::connect(addr).unwrap();
                    let mut last_version = 0u64;
                    let mut vets = 0u64;
                    // At least 40 vets each, even if the loader finishes
                    // first — the swap window must actually be exercised.
                    while vets < 40 || !done.load(Ordering::Acquire) {
                        let response = client
                            .request(&AuditRequest::VetValue {
                                value: value("item1"),
                                pattern: VENDOR_ONLY.into(),
                            })
                            .unwrap();
                        // Never UnknownPattern mid-swap; every answer is
                        // explained by exactly one published version, and
                        // versions observed on one connection are monotone.
                        assert!(
                            matches!(response.outcome, AuditOutcome::Vetted { .. }),
                            "vet dropped mid-swap: {:?}",
                            response.outcome
                        );
                        assert!(response.pack_version >= 1);
                        assert!(response.pack_version >= last_version);
                        last_version = response.pack_version;
                        vets += 1;
                    }
                    last_version
                })
            })
            .collect();

        // 30 alternating swaps; a broken pack thrown in mid-stream must
        // not bump the version or disturb the auditors.
        let mut expected_version = 1;
        for swap in 0..30 {
            match loader.load_pack(&pack(swap + 1)).unwrap() {
                PackLoadOutcome::Loaded {
                    version, installed, ..
                } => {
                    expected_version += 1;
                    assert_eq!(version, expected_version);
                    assert_eq!(installed, 2);
                }
                other => panic!("swap {} rejected: {:?}", swap, other),
            }
            if swap == 15 {
                assert!(matches!(
                    loader.load_pack(&broken_pack()).unwrap(),
                    PackLoadOutcome::Rejected { .. }
                ));
            }
        }
        done.store(true, Ordering::Release);
        for auditor in auditors {
            let last = auditor.join().unwrap();
            assert!(last <= expected_version);
        }
        assert_eq!(loader.list_policies().unwrap().version, expected_version);

        drop(loader);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
