//! Loopback integration of server and client: pipelined queries,
//! blocking and fire-and-batch ingest, the flush barrier, and provable
//! back-pressure on a 1-deep ingest queue.
//!
//! Every test runs against **both server cores** (`ServerCore::all()`):
//! the protocol contract is core-independent, and the loop is the proof.

use piprov_audit::{AuditEngine, AuditOutcome, AuditRequest};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_serve::{
    AuditClient, AuditServer, ClientConfig, IngestOutcome, ServeConfig, ServerCore,
};
use piprov_store::{Operation, ProvenanceRecord};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(name: &str, core: ServerCore) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "piprov-serve-loop-{}-{}-{}",
        std::process::id(),
        name,
        core.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(core: ServerCore) -> ServeConfig {
    ServeConfig {
        core,
        ..ServeConfig::default()
    }
}

fn value(name: &str) -> Value {
    Value::Channel(Channel::new(name))
}

fn record(i: u64, who: &str) -> ProvenanceRecord {
    let k = Provenance::single(Event::output(Principal::new(who), Provenance::empty()));
    ProvenanceRecord::new(
        i,
        who,
        Operation::Send,
        "m",
        value(&format!("item{}", i)),
        k,
    )
}

#[test]
fn queries_match_the_in_process_engine_and_pipelining_preserves_order() {
    for core in ServerCore::all() {
        let dir = temp_dir("queries", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern(
            "from-s",
            Pattern::originated_at(GroupExpr::any_of(["s0", "s1"])),
        );
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let mut client = AuditClient::connect(server.local_addr()).unwrap();

        // Ingest over the wire, then flush so the records are queryable.
        for i in 0..8u64 {
            client
                .ingest_blocking(vec![record(i, &format!("s{}", i % 2))])
                .unwrap();
        }
        let ack = client.flush().unwrap();
        assert_eq!(ack.ingested, 8);
        assert_eq!(ack.watermark, 8, "the flush names the published watermark");

        // Every request kind answers over the wire exactly as in-process.
        let requests: Vec<AuditRequest> = (0..8u64)
            .flat_map(|i| {
                let item = value(&format!("item{}", i));
                vec![
                    AuditRequest::VetValue {
                        value: item.clone(),
                        pattern: "from-s".into(),
                    },
                    AuditRequest::AuditTrail {
                        value: item.clone(),
                    },
                    AuditRequest::OriginOf { value: item },
                    AuditRequest::WhoTouched {
                        principal: Principal::new(format!("s{}", i % 2)),
                    },
                ]
            })
            .collect();
        // Pipelined: all written before any response is read; order holds.
        let responses = client.pipeline(&requests).unwrap();
        assert_eq!(responses.len(), requests.len());
        for (request, wire_response) in requests.iter().zip(&responses) {
            let local = engine.handle(request);
            assert_eq!(
                wire_response.outcome, local.outcome,
                "wire and in-process answers must agree on {}",
                request
            );
        }
        // Spot-check a verdict: item0 originated at s0.
        assert!(matches!(
            responses[0].outcome,
            AuditOutcome::Vetted { verdict: true, .. }
        ));

        // Unknown values/patterns stay structured over the wire.
        let ghost = client
            .request(&AuditRequest::OriginOf {
                value: value("ghost"),
            })
            .unwrap();
        assert_eq!(ghost.outcome, AuditOutcome::UnknownValue);
        let nope = client
            .request(&AuditRequest::VetValue {
                value: value("item0"),
                pattern: "nope".into(),
            })
            .unwrap();
        match &nope.outcome {
            AuditOutcome::UnknownPattern { known, nearest } => {
                assert_eq!(known, &vec!["from-s".to_string()]);
                assert_eq!(nearest, &None);
            }
            other => panic!("expected UnknownPattern, got {:?}", other),
        }

        let stats = client.stats().unwrap();
        assert_eq!(stats.ingested, 8);
        assert!(stats.ingest_batches >= 8);
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn read_your_writes_via_the_flushed_watermark() {
    for core in ServerCore::all() {
        let dir = temp_dir("ryw", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern("from-s0", Pattern::originated_at(GroupExpr::single("s0")));
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        // Pause the drain worker: acceptance and visibility genuinely decouple.
        server.ingest_queue().set_paused(true);

        let mut client = AuditClient::connect(server.local_addr()).unwrap();
        let batch: Vec<ProvenanceRecord> = (0..3).map(|i| record(i, "s0")).collect();
        assert!(matches!(
            client.ingest_batch(batch).unwrap(),
            IngestOutcome::Acked { accepted: 3, .. }
        ));
        // Acked is not visible: the server reports the lag, and a query
        // answers below the records' eventual sequence numbers.
        let stats = client.stats().unwrap();
        assert_eq!(
            stats.snapshot_lag, 1,
            "one accepted batch awaits its snapshot"
        );
        assert_eq!(stats.watermark, 0);
        let early = client
            .request(&AuditRequest::AuditTrail {
                value: value("item0"),
            })
            .unwrap();
        assert_eq!(early.outcome, AuditOutcome::UnknownValue);
        assert_eq!(early.watermark, 0);

        // Release the worker from another thread while this client polls the
        // stats watermark — the read-your-writes loop a real producer runs.
        let queue = Arc::clone(server.ingest_queue());
        let release = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            queue.set_paused(false);
        });
        let watermark = loop {
            let stats = client.stats().unwrap();
            if stats.watermark >= 3 {
                break stats.watermark;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        release.join().unwrap();

        // Once the polled watermark covers the writes, every query must see
        // them: responses answer at or above it.
        for i in 0..3u64 {
            let item = value(&format!("item{}", i));
            let trail = client
                .request(&AuditRequest::AuditTrail {
                    value: item.clone(),
                })
                .unwrap();
            assert!(trail.watermark >= watermark);
            let AuditOutcome::Trail(trail_data) = &trail.outcome else {
                panic!("write not visible after its watermark: {:?}", trail.outcome);
            };
            assert_eq!(trail_data.records.len(), 1);
            let vet = client
                .request(&AuditRequest::VetValue {
                    value: item,
                    pattern: "from-s0".into(),
                })
                .unwrap();
            assert!(matches!(
                vet.outcome,
                AuditOutcome::Vetted { verdict: true, .. }
            ));
            assert!(vet.watermark >= watermark);
        }

        // The flush barrier gives the same guarantee in one round trip, and
        // names the watermark explicitly.
        let ack = client.flush().unwrap();
        assert_eq!(ack.ingested, 3);
        assert!(ack.watermark >= 3);
        let stats = client.stats().unwrap();
        assert_eq!(stats.snapshot_lag, 0);
        assert_eq!(stats.snapshots_published, 1, "one batch, one snapshot");
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn flooding_a_one_deep_queue_yields_busy_over_the_wire() {
    for core in ServerCore::all() {
        let dir = temp_dir("busy", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                queue_capacity: 1,
                ..config(core)
            },
        )
        .unwrap();
        // Pause the drain worker so the flood is deterministic.
        server.ingest_queue().set_paused(true);

        let mut client = AuditClient::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client.ingest_batch(vec![record(0, "s0")]).unwrap(),
            IngestOutcome::Acked {
                accepted: 1,
                queue_depth: 1
            }
        ));
        // The queue is full: every further batch answers a typed Busy and
        // buffers nothing server-side.
        for i in 1..=5u64 {
            assert!(matches!(
                client.ingest_batch(vec![record(i, "s0")]).unwrap(),
                IngestOutcome::Busy { queue_depth: 1 }
            ));
        }
        assert_eq!(client.busy_observed(), 5);
        let stats = client.stats().unwrap();
        assert_eq!(stats.busy_rejections, 5);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.ingested, 0, "nothing applied while paused");

        // ingest_blocking turns Busy into client-side blocking: unpause from
        // another thread while the client retries.
        let queue = Arc::clone(server.ingest_queue());
        let unpause = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            queue.set_paused(false);
        });
        client.ingest_blocking(vec![record(9, "s0")]).unwrap();
        unpause.join().unwrap();
        client.flush().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.ingested, 2, "the accepted batch and the retried one");
        assert!(stats.busy_rejections >= 5);
        assert_eq!(stats.queue_depth, 0);
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn fire_and_batch_buffers_locally_and_ships_on_flush() {
    for core in ServerCore::all() {
        let dir = temp_dir("batch", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let mut client = AuditClient::connect_with(
            server.local_addr(),
            ClientConfig {
                batch_size: 4,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        for i in 0..10u64 {
            client.buffer(record(i, "s0")).unwrap();
        }
        // 10 records at batch size 4: two batches shipped, two buffered.
        assert_eq!(client.buffered(), 2);
        client.flush().unwrap();
        assert_eq!(client.buffered(), 0);
        let stats = client.stats().unwrap();
        assert_eq!(stats.ingested, 10);
        assert_eq!(
            stats.ingest_batches, 3,
            "4 + 4 + 2: one write-lock acquisition per shipped batch"
        );
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn oversized_batches_split_client_side_instead_of_killing_the_connection() {
    for core in ServerCore::all() {
        use piprov_serve::{WireError, WireLimits};
        let dir = temp_dir("split", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        // A client whose own frame cap is tiny: 64 records won't fit one
        // frame, so ingest_blocking must split rather than ship a frame the
        // server would reject.
        let mut client = AuditClient::connect_with(
            server.local_addr(),
            ClientConfig {
                limits: WireLimits {
                    max_frame_len: 2048,
                    ..WireLimits::default()
                },
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let records: Vec<ProvenanceRecord> = (0..64).map(|i| record(i, "s0")).collect();
        let encoded_len = piprov_serve::codec::encode_ingest_batch(&records).len();
        assert!(encoded_len > 2048, "the batch must overflow the cap");

        // The no-retry path refuses with a typed error, sending nothing.
        match client.ingest_batch(records.clone()) {
            Err(piprov_serve::ClientError::Wire(WireError::FrameTooLarge { max, .. })) => {
                assert_eq!(max, 2048)
            }
            other => panic!("expected FrameTooLarge, got {:?}", other),
        }
        // The blocking path splits recursively and lands every record — the
        // connection survives (the refusal above sent no bytes).
        client.ingest_blocking(records).unwrap();
        client.flush().unwrap();
        assert_eq!(engine.stats().ingested, 64);
        assert!(
            engine.stats().ingest_batches >= 2,
            "the flood shipped as multiple sub-frame batches"
        );
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn metrics_round_trip_over_the_wire_and_the_exposition_lints_clean() {
    for core in ServerCore::all() {
        let dir = temp_dir("metrics", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern("from-s0", Pattern::originated_at(GroupExpr::single("s0")));
        engine.register_pattern("from-s1", Pattern::originated_at(GroupExpr::single("s1")));
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let mut client = AuditClient::connect(server.local_addr()).unwrap();

        for i in 0..6u64 {
            client
                .ingest_blocking(vec![record(i, &format!("s{}", i % 2))])
                .unwrap();
        }
        client.flush().unwrap();
        // Drive the vet hot path so per-policy histograms have something in
        // them: 6 vets against from-s0 (3 pass, 3 fail), 1 unknown value.
        for i in 0..6u64 {
            client
                .request(&AuditRequest::VetValue {
                    value: value(&format!("item{}", i)),
                    pattern: "from-s0".into(),
                })
                .unwrap();
        }
        client
            .request(&AuditRequest::VetValue {
                value: value("ghost"),
                pattern: "from-s0".into(),
            })
            .unwrap();

        let report = client.metrics().unwrap();
        // The typed snapshot matches the engine the server wraps.  (Interner
        // fields are process-global and other tests run in parallel, so only
        // engine-local surfaces are compared.)
        assert_eq!(report.snapshot.engine, engine.stats());
        assert_eq!(report.snapshot.store, engine.store_stats());
        let names: Vec<&str> = report
            .snapshot
            .policies
            .iter()
            .map(|p| p.policy.as_str())
            .collect();
        assert_eq!(names, ["from-s0", "from-s1"], "policies arrive sorted");
        let s0 = &report.snapshot.policies[0];
        assert_eq!(s0.vets_passed, 3);
        assert_eq!(s0.vets_failed, 3);
        assert_eq!(s0.vets_unknown_value, 1);
        assert_eq!(
            s0.latency.count, 7,
            "every vet against the policy is timed, unknown values included"
        );
        assert_eq!(
            s0.latency.counts.iter().sum::<u64>() + s0.latency.overflow,
            s0.latency.count
        );
        assert_eq!(report.snapshot.policies[1].latency.count, 0);

        // The client-side render is the server-side render (deterministic),
        // and it lints clean under the exposition-format validator.
        assert_eq!(report.exposition, report.snapshot.exposition());
        piprov_audit::validate_exposition(&report.exposition).unwrap();
        assert!(report
            .exposition
            .contains("piprov_vet_latency_seconds_bucket{policy=\"from-s0\""));
        assert!(report
            .exposition
            .contains("piprov_policy_vets_passed_total{policy=\"from-s0\"} 3"));
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn wire_flush_is_bounded_and_never_unpauses_the_drain_worker() {
    for core in ServerCore::all() {
        let dir = temp_dir("flush-bound", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                flush_timeout: std::time::Duration::from_millis(100),
                ..config(core)
            },
        )
        .unwrap();
        // A paused worker with one accepted batch: the old wire flush would
        // unpause the queue (clobbering operator intent) or park the worker
        // thread forever; the barrier must do neither.
        server.ingest_queue().set_paused(true);
        let mut client = AuditClient::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client.ingest_batch(vec![record(0, "s0")]).unwrap(),
            IngestOutcome::Acked { .. }
        ));

        let started = std::time::Instant::now();
        match client.flush() {
            Err(piprov_serve::ClientError::Server(message)) => {
                assert!(
                    message.contains("flush failed"),
                    "timeout surfaces as a typed server error: {}",
                    message
                );
            }
            other => panic!("expected a server error, got {:?}", other),
        }
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "the wire flush is bounded by flush_timeout"
        );
        // The queue is still paused (nothing drained) and the connection
        // survived the failed flush.
        let stats = client.stats().unwrap();
        assert_eq!(stats.ingested, 0, "the barrier never unpauses the worker");
        assert_eq!(stats.queue_depth, 1);

        server.ingest_queue().set_paused(false);
        let ack = client.flush().unwrap();
        assert_eq!(ack.ingested, 1);
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn shutdown_returns_when_bound_to_a_wildcard_address() {
    for core in ServerCore::all() {
        let dir = temp_dir("wildcard", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        // Binding 0.0.0.0 used to hang shutdown: the wake-up connection
        // targeted the unspecified address itself, which never routes, so the
        // workers stayed parked in accept().  The wake-up must rewrite to the
        // matching loopback.
        let server = AuditServer::bind(Arc::clone(&engine), "0.0.0.0:0", config(core)).unwrap();
        let port = server.local_addr().port();
        let mut client = AuditClient::connect(("127.0.0.1", port)).unwrap();
        client.ingest_blocking(vec![record(0, "s0")]).unwrap();
        client.flush().unwrap();
        assert_eq!(client.stats().unwrap().ingested, 1);
        drop(client);

        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&done);
        let shut = std::thread::spawn(move || {
            server.shutdown().unwrap();
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        // Watchdog: fail loudly instead of hanging the suite if the wake-up
        // regresses.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !done.load(std::sync::atomic::Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "shutdown hung on a wildcard bind"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        shut.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn connections_racing_shutdown_get_an_answer_or_a_clean_close_never_a_hang() {
    for core in ServerCore::all() {
        use piprov_serve::ClientError;
        for round in 0..8 {
            let dir = temp_dir(&format!("race{}", round), core);
            let engine = Arc::new(AuditEngine::open(&dir).unwrap());
            let server =
                AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
            let addr = server.local_addr();

            let racer = std::thread::spawn(move || {
                // Keep connecting while shutdown runs.  A connection accepted
                // after the stop flag flips used to be dropped silently (the
                // client saw an unexplained EOF mid-handshake); now it gets a
                // best-effort "shutting down" error frame.  Every outcome
                // must be prompt and explicable.
                for _ in 0..20 {
                    let Ok(mut client) = AuditClient::connect(addr) else {
                        return; // refused: the listener is gone, race over.
                    };
                    match client.stats() {
                        Ok(_) => {}
                        Err(ClientError::Server(message)) => {
                            assert!(
                                message.contains("shutting down"),
                                "unexpected server error during shutdown: {}",
                                message
                            );
                            return;
                        }
                        Err(ClientError::ConnectionClosed) | Err(ClientError::Wire(_)) => return,
                        Err(other) => panic!("unexpected outcome racing shutdown: {:?}", other),
                    }
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(2));
            server.shutdown().unwrap();
            racer.join().unwrap();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn traced_requests_surface_identical_per_stage_spans_in_both_cores() {
    use piprov_audit::{RequestKind, SpanKind};
    use std::collections::{BTreeMap, BTreeSet};

    // Per core: request kind (as u8) → the set of span stages it recorded.
    // The cores must agree — the trace vocabulary is core-independent.
    let mut per_core: Vec<BTreeMap<u8, BTreeSet<u8>>> = Vec::new();
    for core in ServerCore::all() {
        let dir = temp_dir("traces", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern("from-s0", Pattern::originated_at(GroupExpr::single("s0")));
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let mut client = AuditClient::connect(server.local_addr()).unwrap();

        client.ingest_blocking(vec![record(0, "s0")]).unwrap();
        client.flush().unwrap();
        // Twice: the second vet hits the memo, and its handle span says so.
        for _ in 0..2 {
            client
                .request(&AuditRequest::VetValue {
                    value: value("item0"),
                    pattern: "from-s0".into(),
                })
                .unwrap();
        }

        let records = client.traces().unwrap();
        let vets: Vec<_> = records
            .iter()
            .filter(|r| r.kind == RequestKind::Vet)
            .collect();
        assert_eq!(vets.len(), 2, "core {}: both vets are traced", core.name());
        for vet in &vets {
            let stages: BTreeSet<u8> = vet.spans.iter().map(|s| s.kind as u8).collect();
            for stage in [
                SpanKind::ClientEncode,
                SpanKind::Decode,
                SpanKind::Handle,
                SpanKind::Write,
            ] {
                assert!(
                    stages.contains(&(stage as u8)),
                    "core {}: vet trace is missing the {:?} stage: {:?}",
                    core.name(),
                    stage,
                    vet
                );
            }
            assert!(stages.len() >= 4, "at least four distinct stages per vet");
            assert!(vet.total_ns > 0, "the end-to-end total is measured");
        }
        assert!(
            vets.iter().any(|r| r
                .spans
                .iter()
                .any(|s| s.kind == SpanKind::Handle && s.memo_hits >= 1)),
            "core {}: the warm vet's handle span reports its memo hit",
            core.name()
        );

        // The ingest trace also carries the asynchronous queue-wait stage,
        // merged in by trace id after the drain worker applied the batch.
        let ingest = records
            .iter()
            .find(|r| r.kind == RequestKind::Ingest)
            .unwrap_or_else(|| panic!("core {}: no ingest trace", core.name()));
        assert!(
            ingest.spans.iter().any(|s| s.kind == SpanKind::QueueWait),
            "core {}: ingest trace is missing queue_wait: {:?}",
            core.name(),
            ingest
        );

        // The min-total filter applies server-side.
        assert!(
            client.traces_min(u64::MAX).unwrap().is_empty(),
            "an impossible threshold filters everything"
        );

        let mut sets: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
        for record in &records {
            let entry = sets.entry(record.kind as u8).or_default();
            entry.extend(record.spans.iter().map(|s| s.kind as u8));
        }
        per_core.push(sets);

        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
    for pair in per_core.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "both cores must record the same span set per request kind"
        );
    }
}

#[test]
fn concurrent_clients_are_served_by_the_worker_pool() {
    for core in ServerCore::all() {
        let dir = temp_dir("pool", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern("any", Pattern::Any);
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                workers: 3,
                ..config(core)
            },
        )
        .unwrap();
        let addr = server.local_addr();
        {
            let mut seed = AuditClient::connect(addr).unwrap();
            seed.ingest_blocking(vec![record(0, "s0")]).unwrap();
            seed.flush().unwrap();
        }
        let clients: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = AuditClient::connect(addr).unwrap();
                    let mut passed = 0usize;
                    for _ in 0..50 {
                        let response = client
                            .request(&AuditRequest::VetValue {
                                value: value("item0"),
                                pattern: "any".into(),
                            })
                            .unwrap();
                        if matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. }) {
                            passed += 1;
                        }
                    }
                    passed
                })
            })
            .collect();
        let passed: usize = clients.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(passed, 150);
        assert_eq!(engine.stats().vets_passed, 150);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
