//! Behaviors this PR added to the serving layer, pinned against **both**
//! cores where they are core-independent (idle timeout, the `/metrics`
//! HTTP scrape) and against the event loop alone where they are its
//! reason to exist (thousands-of-connections scale, pipelined bursts
//! through the dispatch pool).

use piprov_audit::{AuditEngine, AuditOutcome, AuditRequest};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_serve::{AuditClient, AuditServer, ClientError, ServeConfig, ServerCore, WireResponse};
use piprov_store::{Operation, ProvenanceRecord};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(name: &str, core: ServerCore) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "piprov-serve-ec-{}-{}-{}",
        std::process::id(),
        name,
        core.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn value(name: &str) -> Value {
    Value::Channel(Channel::new(name))
}

fn record(i: u64, who: &str) -> ProvenanceRecord {
    let k = Provenance::single(Event::output(Principal::new(who), Provenance::empty()));
    ProvenanceRecord::new(
        i,
        who,
        Operation::Send,
        "m",
        value(&format!("item{}", i)),
        k,
    )
}

#[test]
fn idle_connections_get_a_typed_timeout_frame_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("idle", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                core,
                idle_timeout: Some(Duration::from_millis(300)),
                ..ServeConfig::default()
            },
        )
        .unwrap();

        // An idle client is told why before the close — a typed frame, not
        // a silent EOF.
        let mut idler = AuditClient::connect(server.local_addr()).unwrap();
        match idler.receive_response() {
            Ok(WireResponse::ServerError { message }) => {
                assert!(
                    message.contains("idle timeout"),
                    "core {}: expected an idle-timeout notice, got {:?}",
                    core.name(),
                    message
                );
            }
            other => panic!(
                "core {}: expected the idle-timeout frame, got {:?}",
                core.name(),
                other
            ),
        }
        assert!(
            matches!(
                idler.receive_response(),
                Err(ClientError::ConnectionClosed) | Err(ClientError::Wire(_))
            ),
            "core {}: the notice is followed by the close",
            core.name()
        );

        // A connection that keeps talking (gaps well under the bound)
        // outlives many idle windows.
        let mut active = AuditClient::connect(server.local_addr()).unwrap();
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(100));
            active.stats().unwrap();
        }
        drop(active);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// One raw HTTP GET against the framed port; returns the full response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {} HTTP/1.1\r\nHost: piprov\r\n\r\n", path).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn a_plaintext_get_on_the_framed_port_scrapes_the_exposition_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("http", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern("from-s0", Pattern::originated_at(GroupExpr::single("s0")));
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                core,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // Put real numbers on the metrics plane first.
        let mut client = AuditClient::connect(addr).unwrap();
        client.ingest_blocking(vec![record(0, "s0")]).unwrap();
        client.flush().unwrap();
        client
            .request(&AuditRequest::VetValue {
                value: value("item0"),
                pattern: "from-s0".into(),
            })
            .unwrap();

        let response = http_get(addr, "/metrics");
        assert!(
            response.starts_with("HTTP/1.1 200 OK\r\n"),
            "core {}: {}",
            core.name(),
            &response[..response.len().min(200)]
        );
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("Connection: close"));
        let body = response
            .split_once("\r\n\r\n")
            .expect("header/body split")
            .1;
        piprov_audit::validate_exposition(body).unwrap();
        assert!(body.contains("piprov_ingested_total 1\n"));
        assert!(body.contains("piprov_vets_passed_total 1\n"));
        // The serve layer's own histograms observed the framed traffic
        // that just happened.
        assert!(body.contains("# TYPE piprov_frame_decode_seconds histogram"));
        assert!(body.contains("# TYPE piprov_request_service_seconds histogram"));
        assert!(body.contains("# TYPE piprov_ingest_queue_wait_seconds histogram"));
        for family in [
            "piprov_frame_decode_seconds",
            "piprov_request_service_seconds",
            "piprov_ingest_queue_wait_seconds",
        ] {
            let count_line = body
                .lines()
                .find(|l| l.starts_with(&format!("{}_count ", family)))
                .unwrap_or_else(|| panic!("{} has no _count sample", family));
            let count: u64 = count_line
                .split_whitespace()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                count >= 1,
                "core {}: {} never observed",
                core.name(),
                family
            );
        }

        // Any other path is a 404, not a hang and not a frame error.
        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));

        // The framed protocol is undisturbed by the HTTP detour.
        assert_eq!(client.stats().unwrap().ingested, 1);
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn healthz_and_trace_answer_plaintext_gets_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("obsget", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern("from-s0", Pattern::originated_at(GroupExpr::single("s0")));
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                core,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // The liveness probe needs no traffic first.
        let health = http_get(addr, "/healthz");
        assert!(
            health.starts_with("HTTP/1.1 200 OK\r\n"),
            "core {}: {}",
            core.name(),
            &health[..health.len().min(200)]
        );
        assert_eq!(health.split_once("\r\n\r\n").unwrap().1, "ok\n");

        // Drive traced framed traffic so the ring has something to show.
        let mut client = AuditClient::connect(addr).unwrap();
        client.ingest_blocking(vec![record(0, "s0")]).unwrap();
        client.flush().unwrap();
        client
            .request(&AuditRequest::VetValue {
                value: value("item0"),
                pattern: "from-s0".into(),
            })
            .unwrap();

        let response = http_get(addr, "/trace");
        assert!(
            response.starts_with("HTTP/1.1 200 OK\r\n"),
            "core {}: {}",
            core.name(),
            &response[..response.len().min(200)]
        );
        let body = response.split_once("\r\n\r\n").unwrap().1;
        piprov_audit::validate_trace_text(body)
            .unwrap_or_else(|e| panic!("core {}: trace body lints clean: {}", core.name(), e));
        assert!(
            body.contains("kind=vet"),
            "core {}: the vet trace is served: {}",
            core.name(),
            body
        );
        for stage in ["  client_encode ", "  decode ", "  handle ", "  write "] {
            assert!(
                body.lines().any(|l| l.starts_with(stage)),
                "core {}: missing the {} span line:\n{}",
                core.name(),
                stage.trim(),
                body
            );
        }

        // `?min_us=` prunes server-side; an impossible floor leaves nothing.
        let filtered = http_get(addr, "/trace?min_us=60000000");
        let filtered_body = filtered.split_once("\r\n\r\n").unwrap().1;
        assert!(
            filtered_body.is_empty(),
            "core {}: a 60s floor filters every trace: {}",
            core.name(),
            filtered_body
        );

        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn a_hostile_unterminated_get_is_bounded_and_leaves_the_server_healthy() {
    for core in ServerCore::all() {
        let dir = temp_dir("hostile", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                core,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // A request line that never ends: no blank line, megabytes of
        // header bytes.  The server must cap what it buffers (8 KiB head)
        // and answer-and-close instead of accumulating the flood.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_write_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nX-Flood: ").unwrap();
        let junk = vec![b'a'; 64 * 1024];
        let mut sent = 0usize;
        let severed = loop {
            if sent >= 8 * 1024 * 1024 {
                break false;
            }
            match stream.write(&junk) {
                Ok(n) => sent += n,
                // Reset/EPIPE: the server already answered and closed.
                Err(_) => break true,
            }
        };
        if !severed {
            // The flood drained into kernel buffers before the close
            // landed; the response (or a clean EOF) must still arrive.
            let mut response = String::new();
            let _ = stream.read_to_string(&mut response);
        }
        drop(stream);

        // The regression proof: the server is still healthy and the flood
        // did not wedge the HTTP path or the framed protocol.
        let health = http_get(addr, "/healthz");
        assert!(
            health.starts_with("HTTP/1.1 200 OK\r\n"),
            "core {}: server unhealthy after hostile GET: {}",
            core.name(),
            &health[..health.len().min(200)]
        );
        let mut client = AuditClient::connect(addr).unwrap();
        assert_eq!(client.stats().unwrap().ingested, 0);
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn scrapes_run_concurrently_with_framed_traffic_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("scrape-race", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern("any", Pattern::Any);
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                core,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        {
            let mut seed = AuditClient::connect(addr).unwrap();
            seed.ingest_blocking(vec![record(0, "s0")]).unwrap();
            seed.flush().unwrap();
        }

        // Scrapers hammer /metrics and /trace while a framed client
        // pipelines distinguishable requests on another connection.
        let scrapers: Vec<_> = ["/metrics", "/trace"]
            .into_iter()
            .map(|path| {
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let response = http_get(addr, path);
                        assert!(
                            response.starts_with("HTTP/1.1 200 OK\r\n"),
                            "{}: {}",
                            path,
                            &response[..response.len().min(200)]
                        );
                        let body = response.split_once("\r\n\r\n").unwrap().1;
                        if path == "/metrics" {
                            piprov_audit::validate_exposition(body).unwrap();
                        } else {
                            piprov_audit::validate_trace_text(body).unwrap();
                        }
                    }
                })
            })
            .collect();

        let mut client = AuditClient::connect(addr).unwrap();
        for _ in 0..10 {
            let requests: Vec<AuditRequest> = (0..32u64)
                .map(|i| {
                    if i % 2 == 0 {
                        AuditRequest::OriginOf {
                            value: value("item0"),
                        }
                    } else {
                        AuditRequest::VetValue {
                            value: value("item0"),
                            pattern: "any".into(),
                        }
                    }
                })
                .collect();
            let responses = client.pipeline(&requests).unwrap();
            // In order: each slot's outcome shape matches its request.
            for (i, response) in responses.iter().enumerate() {
                if i % 2 == 0 {
                    assert!(
                        matches!(response.outcome, AuditOutcome::Origin { .. }),
                        "core {}: slot {} got {:?}",
                        core.name(),
                        i,
                        response.outcome
                    );
                } else {
                    assert!(
                        matches!(response.outcome, AuditOutcome::Vetted { .. }),
                        "core {}: slot {} got {:?}",
                        core.name(),
                        i,
                        response.outcome
                    );
                }
            }
        }
        for scraper in scrapers {
            scraper.join().unwrap();
        }
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// The fd-limit probe lives in the Linux-only `poll` module; off Linux the
// event loop itself is a fallback, so there is nothing to prove.
#[cfg(target_os = "linux")]
#[test]
fn the_event_loop_holds_hundreds_of_idle_connections_while_serving_active_ones() {
    let core = ServerCore::EventLoop;
    let dir = temp_dir("scale", core);
    let engine = Arc::new(AuditEngine::open(&dir).unwrap());
    engine.register_pattern("any", Pattern::Any);
    let server = AuditServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            core,
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Far more connections than any worker pool has threads; scaled down
    // only if the fd limit is unusually tight (each conn costs two fds:
    // ours and the server's).
    let target = 300usize;
    let idle_count = piprov_serve::poll::max_open_files()
        .map(|limit| target.min((limit as usize).saturating_sub(128) / 2))
        .unwrap_or(target);
    let idle: Vec<TcpStream> = (0..idle_count)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();
    assert!(idle.len() >= 64, "fd limit too low to prove anything");

    // With all those connections parked, active clients still get served.
    let mut active = AuditClient::connect(addr).unwrap();
    for i in 0..32u64 {
        active.ingest_blocking(vec![record(i, "s0")]).unwrap();
    }
    active.flush().unwrap();
    for i in 0..32u64 {
        let vet = active
            .request(&AuditRequest::VetValue {
                value: value(&format!("item{}", i)),
                pattern: "any".into(),
            })
            .unwrap();
        assert!(matches!(
            vet.outcome,
            AuditOutcome::Vetted { verdict: true, .. }
        ));
    }
    assert_eq!(engine.stats().ingested, 32);

    // The parked connections are not zombies: a sampling of them can
    // still speak the protocol.
    for stream in idle.iter().step_by(idle.len() / 8) {
        let mut probe = AuditClient::from_stream(stream.try_clone().unwrap()).unwrap();
        assert_eq!(probe.stats().unwrap().ingested, 32);
    }
    drop(active);
    drop(idle);
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_pipelined_burst_through_the_dispatch_pool_answers_in_request_order() {
    let core = ServerCore::EventLoop;
    let dir = temp_dir("burst", core);
    let engine = Arc::new(AuditEngine::open(&dir).unwrap());
    engine.register_pattern("any", Pattern::Any);
    let server = AuditServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            core,
            workers: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = AuditClient::connect(server.local_addr()).unwrap();
    for i in 0..16u64 {
        client.ingest_blocking(vec![record(i, "s0")]).unwrap();
    }
    client.flush().unwrap();

    // 256 requests written before any response is read: each answer is
    // distinguishable by its value, so a single transposition fails.
    let requests: Vec<AuditRequest> = (0..256u64)
        .map(|i| AuditRequest::OriginOf {
            value: value(&format!("item{}", i % 16)),
        })
        .collect();
    let responses = client.pipeline(&requests).unwrap();
    assert_eq!(responses.len(), 256);
    for response in &responses {
        assert_eq!(
            response.outcome,
            AuditOutcome::Origin {
                principal: Some(Principal::new("s0"))
            }
        );
    }
    // Interleave a query kind with a different outcome shape and check
    // the answers land on the right slots.
    let mixed: Vec<AuditRequest> = (0..64u64)
        .map(|i| {
            if i % 2 == 0 {
                AuditRequest::OriginOf {
                    value: value(&format!("item{}", i % 16)),
                }
            } else {
                AuditRequest::VetValue {
                    value: value(&format!("item{}", i % 16)),
                    pattern: "any".into(),
                }
            }
        })
        .collect();
    let responses = client.pipeline(&mixed).unwrap();
    for (i, response) in responses.iter().enumerate() {
        if i % 2 == 0 {
            assert!(
                matches!(response.outcome, AuditOutcome::Origin { .. }),
                "slot {} got {:?}",
                i,
                response.outcome
            );
        } else {
            assert!(
                matches!(response.outcome, AuditOutcome::Vetted { .. }),
                "slot {} got {:?}",
                i,
                response.outcome
            );
        }
    }
    drop(client);
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
