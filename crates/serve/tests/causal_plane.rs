//! The causal-query plane over the wire, against **both server cores**:
//! `AuditClient::why` / `AuditClient::counterfactual` round-tripping the
//! v6 request/outcome vocabulary, the `GET /why` plaintext endpoint, the
//! `GET /policies?package=` filter, and — the acceptance bar — the wire
//! differential harness: counterfactual answers served live must equal a
//! second server that ingested the **literally filtered** history, across
//! seeded workloads on every core.

use piprov_audit::{AuditEngine, RequestStats};
use piprov_audit::{AuditOutcome, AuditRequest, EventFilter};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Direction, Event, Provenance};
use piprov_core::value::Value;
use piprov_policy::{PackFile, PackSource};
use piprov_serve::{AuditClient, AuditServer, PackLoadOutcome, ServeConfig, ServerCore};
use piprov_store::{Operation, ProvenanceRecord};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(name: &str, core: ServerCore) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "piprov-serve-causal-{}-{}-{}",
        std::process::id(),
        name,
        core.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(core: ServerCore) -> ServeConfig {
    ServeConfig {
        core,
        ..ServeConfig::default()
    }
}

fn value(name: &str) -> Value {
    Value::Channel(Channel::new(name))
}

fn event(principal: &str, direction: Direction, channel: Provenance) -> Event {
    match direction {
        Direction::Output => Event::output(Principal::new(principal), channel),
        Direction::Input => Event::input(Principal::new(principal), channel),
    }
}

/// A record whose top-level spine is `events`, newest first.
fn record_with(value_name: &str, events: Vec<Event>) -> ProvenanceRecord {
    ProvenanceRecord::new(
        0,
        "writer",
        Operation::Send,
        "m",
        value(value_name),
        Provenance::from_events(events),
    )
}

/// One raw HTTP GET against the framed port; returns the full response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {} HTTP/1.1\r\nHost: piprov\r\n\r\n", path).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// The pack both planes vet against: `head` wants the newest event to be
/// an output by `s0`, `deep` wants the oldest to be an output by `s1`,
/// `either` takes either vendor up front.
fn causal_pack() -> PackSource {
    PackSource::new(
        "causal",
        vec![PackFile::new(
            "q.ppol",
            "package causal::q\n\n\
             policy head = s0!Any; Any\n\
             policy deep = Any; s1!Any\n\
             policy either = (s0 + s1)!Any; Any\n",
        )],
    )
}

const HEAD: &str = "causal::q::head";
const POLICIES: &[&str] = &["causal::q::head", "causal::q::deep", "causal::q::either"];

#[test]
fn why_and_counterfactual_answer_over_the_wire_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("rpc", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let addr = server.local_addr();
        let mut client = AuditClient::connect(addr).unwrap();

        let empty = Provenance::empty;
        client
            .ingest_blocking(vec![
                // Passes `head`: newest event is an output by s0.
                record_with("item1", vec![event("s0", Direction::Output, empty())]),
                // Fails `head` at the very first event (s9 is no vendor);
                // removing s9 flips it back to passing.
                record_with(
                    "item2",
                    vec![
                        event("s9", Direction::Input, empty()),
                        event("s0", Direction::Output, empty()),
                    ],
                ),
            ])
            .unwrap();
        client.flush().unwrap();
        assert!(matches!(
            client.load_pack(&causal_pack()).unwrap(),
            PackLoadOutcome::Loaded { version: 1, .. }
        ));

        // A passing why slice: the whole consumed spine, no blocker.
        let response = client.why(value("item1"), HEAD).unwrap();
        assert_eq!(response.pack_version, 1);
        let slice = match &response.outcome {
            AuditOutcome::Why(slice) => slice,
            other => panic!("expected a why slice, got {:?}", other),
        };
        assert!(slice.verdict);
        assert_eq!(slice.blocked, None);
        assert_eq!(slice.events.len(), 1);
        assert_eq!(slice.events[0].event.to_string(), "s0!ε");

        // A failing slice blocks at index 0: the newest event mismatches.
        let response = client.why(value("item2"), HEAD).unwrap();
        let slice = match &response.outcome {
            AuditOutcome::Why(slice) => slice,
            other => panic!("expected a why slice, got {:?}", other),
        };
        assert!(!slice.verdict);
        assert_eq!(slice.blocked, Some(0));

        // Removing the offending principal flips the verdict; the delta
        // slice names exactly the removed event.
        let remove = EventFilter::Principal(Principal::new("s9"));
        let response = client.counterfactual(value("item2"), HEAD, remove).unwrap();
        let verdict = match &response.outcome {
            AuditOutcome::Counterfactual(verdict) => verdict,
            other => panic!("expected a counterfactual verdict, got {:?}", other),
        };
        assert!(!verdict.original);
        assert!(verdict.counterfactual);
        assert!(verdict.flipped());
        assert_eq!(verdict.removed.len(), 1);
        assert_eq!(verdict.removed[0].event.to_string(), "s9?ε");

        // A filter that touches nothing: both verdicts equal, no delta.
        let remove = EventFilter::Principal(Principal::new("nobody"));
        let response = client.counterfactual(value("item1"), HEAD, remove).unwrap();
        match &response.outcome {
            AuditOutcome::Counterfactual(verdict) => {
                assert!(verdict.original && verdict.counterfactual);
                assert!(!verdict.flipped());
                assert!(verdict.removed.is_empty());
            }
            other => panic!("expected a counterfactual verdict, got {:?}", other),
        }

        // Diagnostics cross the wire typed, not stringly.
        let response = client.why(value("ghost"), HEAD).unwrap();
        assert_eq!(response.outcome, AuditOutcome::UnknownValue);
        let remove = EventFilter::Kind(Direction::Input);
        let response = client
            .counterfactual(value("item1"), "causal::q::heda", remove)
            .unwrap();
        match &response.outcome {
            AuditOutcome::UnknownPattern { nearest, .. } => {
                assert_eq!(nearest.as_deref(), Some(HEAD));
            }
            other => panic!("expected UnknownPattern, got {:?}", other),
        }

        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deep shared spine: the `memo_reused` counter must survive the v6 wire
/// — the filtered re-vet rides the original walk's memoized suffix
/// instead of re-walking the spine.
#[test]
fn memo_reuse_stats_surface_over_the_wire_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("memo", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let addr = server.local_addr();
        let mut client = AuditClient::connect(addr).unwrap();

        let empty = Provenance::empty;
        let mut events = vec![
            event("s0", Direction::Output, empty()),
            event("drop", Direction::Input, empty()),
        ];
        events.extend((0..48).map(|_| event("relay", Direction::Input, empty())));
        client
            .ingest_blocking(vec![record_with("deep", events)])
            .unwrap();
        client.flush().unwrap();
        assert!(matches!(
            client.load_pack(&causal_pack()).unwrap(),
            PackLoadOutcome::Loaded { version: 1, .. }
        ));

        let remove = EventFilter::Principal(Principal::new("drop"));
        let response = client.counterfactual(value("deep"), HEAD, remove).unwrap();
        match &response.outcome {
            AuditOutcome::Counterfactual(verdict) => {
                assert!(verdict.original && verdict.counterfactual);
                assert_eq!(verdict.removed.len(), 1);
            }
            other => panic!("expected a counterfactual verdict, got {:?}", other),
        }
        let RequestStats {
            memo_reused,
            dag_nodes_visited,
            ..
        } = response.stats;
        assert!(
            memo_reused >= 1,
            "memo reuse must cross the wire: {:?}",
            response.stats
        );
        assert!(
            dag_nodes_visited <= 48 + 2 + 4,
            "the filtered walk must not re-walk the shared suffix: {:?}",
            response.stats
        );

        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// The wire differential harness: seeded workloads, both cores.
// ---------------------------------------------------------------------------

/// Deterministic splitmix-style generator, so the workload is seeded and
/// reproducible without pulling a proptest runner across two servers.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn seeded_workload(seed: u64) -> Vec<ProvenanceRecord> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed + 1);
    let principals = ["s0", "s1", "s2", "relay"];
    (0..24)
        .map(|_| {
            let value_pick = (next(&mut state) % 4) as usize;
            let spine_len = (next(&mut state) % 6) as usize;
            let events = (0..spine_len)
                .map(|_| {
                    let who = principals[(next(&mut state) % 4) as usize];
                    let direction = if next(&mut state).is_multiple_of(2) {
                        Direction::Output
                    } else {
                        Direction::Input
                    };
                    // A third of the events carry a one-hop channel
                    // history, grounding the ChannelVia filter.
                    let channel = if next(&mut state).is_multiple_of(3) {
                        let via = principals[(next(&mut state) % 4) as usize];
                        Provenance::single(Event::output(Principal::new(via), Provenance::empty()))
                    } else {
                        Provenance::empty()
                    };
                    event(who, direction, channel)
                })
                .collect();
            record_with(&format!("item{}", value_pick), events)
        })
        .collect()
}

fn seeded_filter(seed: u64) -> EventFilter {
    let mut state = seed.wrapping_mul(0xd1342543de82ef95).wrapping_add(7);
    let principals = ["s0", "s1", "s2", "relay"];
    match next(&mut state) % 3 {
        0 => EventFilter::Principal(Principal::new(principals[(next(&mut state) % 4) as usize])),
        1 => EventFilter::Kind(if next(&mut state).is_multiple_of(2) {
            Direction::Output
        } else {
            Direction::Input
        }),
        _ => EventFilter::ChannelVia(Principal::new(principals[(next(&mut state) % 4) as usize])),
    }
}

/// The oracle's definition of "literally filtered": keep every record,
/// drop matching top-level events, preserve order.
fn filtered(record: &ProvenanceRecord, filter: &EventFilter) -> ProvenanceRecord {
    let mut out = record.clone();
    out.provenance = Provenance::from_events(
        record
            .provenance
            .to_vec()
            .into_iter()
            .filter(|event| !filter.removes(event)),
    );
    out
}

fn vet_verdict(outcome: &AuditOutcome) -> Option<(bool, u64)> {
    match outcome {
        AuditOutcome::Vetted { verdict, sequence } => Some((*verdict, *sequence)),
        AuditOutcome::UnknownValue => None,
        other => panic!("expected a vet verdict, got {:?}", other),
    }
}

#[test]
fn wire_counterfactuals_match_a_filtered_server_across_seeds_in_both_cores() {
    for core in ServerCore::all() {
        for seed in [1u64, 2, 3] {
            let records = seeded_workload(seed);
            let filter = seeded_filter(seed);

            let live_dir = temp_dir(&format!("diff-live-{}", seed), core);
            let live_engine = Arc::new(AuditEngine::open(&live_dir).unwrap());
            let live_server =
                AuditServer::bind(Arc::clone(&live_engine), "127.0.0.1:0", config(core)).unwrap();
            let mut live = AuditClient::connect(live_server.local_addr()).unwrap();
            live.ingest_blocking(records.clone()).unwrap();
            live.flush().unwrap();
            assert!(matches!(
                live.load_pack(&causal_pack()).unwrap(),
                PackLoadOutcome::Loaded { .. }
            ));

            let oracle_dir = temp_dir(&format!("diff-oracle-{}", seed), core);
            let oracle_engine = Arc::new(AuditEngine::open(&oracle_dir).unwrap());
            let oracle_server =
                AuditServer::bind(Arc::clone(&oracle_engine), "127.0.0.1:0", config(core)).unwrap();
            let mut oracle = AuditClient::connect(oracle_server.local_addr()).unwrap();
            oracle
                .ingest_blocking(records.iter().map(|r| filtered(r, &filter)).collect())
                .unwrap();
            oracle.flush().unwrap();
            assert!(matches!(
                oracle.load_pack(&causal_pack()).unwrap(),
                PackLoadOutcome::Loaded { .. }
            ));

            for v in 0..4 {
                for policy in POLICIES {
                    let live_response = live
                        .counterfactual(value(&format!("item{}", v)), *policy, filter.clone())
                        .unwrap();
                    let oracle_response = oracle
                        .request(&AuditRequest::VetValue {
                            value: value(&format!("item{}", v)),
                            pattern: (*policy).to_string(),
                        })
                        .unwrap();
                    assert_eq!(
                        live_response.watermark, oracle_response.watermark,
                        "seed {} core {:?}: watermarks diverge",
                        seed, core
                    );
                    match &live_response.outcome {
                        AuditOutcome::UnknownValue => {
                            assert_eq!(vet_verdict(&oracle_response.outcome), None);
                        }
                        AuditOutcome::Counterfactual(verdict) => {
                            let (oracle_verdict, oracle_seq) =
                                vet_verdict(&oracle_response.outcome)
                                    .expect("records survive filtering");
                            assert_eq!(
                                verdict.counterfactual, oracle_verdict,
                                "seed {} core {:?} {} item{}: live counterfactual \
                                 diverges from the literally filtered server",
                                seed, core, policy, v
                            );
                            assert_eq!(verdict.sequence, oracle_seq);
                            for removed in &verdict.removed {
                                assert!(filter.removes(&removed.event));
                            }
                        }
                        other => panic!("expected a counterfactual verdict, got {:?}", other),
                    }
                }
            }

            drop(live);
            drop(oracle);
            live_server.shutdown().unwrap();
            oracle_server.shutdown().unwrap();
            std::fs::remove_dir_all(&live_dir).ok();
            std::fs::remove_dir_all(&oracle_dir).ok();
        }
    }
}

// ---------------------------------------------------------------------------
// The plaintext endpoints: /why and the /policies?package= filter.
// ---------------------------------------------------------------------------

#[test]
fn why_endpoint_and_policies_package_filter_in_both_cores() {
    for core in ServerCore::all() {
        let dir = temp_dir("http", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", config(core)).unwrap();
        let addr = server.local_addr();
        let mut client = AuditClient::connect(addr).unwrap();

        let empty = Provenance::empty;
        client
            .ingest_blocking(vec![
                record_with("item1", vec![event("s0", Direction::Output, empty())]),
                record_with(
                    "item2",
                    vec![
                        event("s9", Direction::Input, empty()),
                        event("s0", Direction::Output, empty()),
                    ],
                ),
            ])
            .unwrap();
        client.flush().unwrap();
        assert!(matches!(
            client.load_pack(&causal_pack()).unwrap(),
            PackLoadOutcome::Loaded { version: 1, .. }
        ));

        // A passing slice renders with the verdict and the κ-tagged
        // events; a failing one marks the blocking frontier.
        let ok = http_get(addr, &format!("/why?value=item1&policy={}", HEAD));
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{}", ok);
        assert!(
            ok.contains("why: verdict=pass sequence=1 events=1"),
            "{}",
            ok
        );
        assert!(ok.contains("s0!ε"), "{}", ok);
        let fail = http_get(addr, &format!("/why?value=item2&policy={}", HEAD));
        assert!(fail.starts_with("HTTP/1.1 200 OK\r\n"), "{}", fail);
        assert!(fail.contains("why: verdict=fail"), "{}", fail);
        assert!(fail.contains("every candidate trail dies here"), "{}", fail);

        // Missing parameters are 400s; unknown names are 404s with the
        // engine's diagnostics (including the nearest-policy hint).
        assert!(http_get(addr, "/why").starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(http_get(addr, "/why?value=item1").starts_with("HTTP/1.1 400 Bad Request\r\n"));
        let unknown = http_get(addr, &format!("/why?value=ghost&policy={}", HEAD));
        assert!(
            unknown.starts_with("HTTP/1.1 404 Not Found\r\n"),
            "{}",
            unknown
        );
        assert!(unknown.contains("unknown value ghost"), "{}", unknown);
        let typo = http_get(addr, "/why?value=item1&policy=causal::q::heda");
        assert!(typo.starts_with("HTTP/1.1 404 Not Found\r\n"), "{}", typo);
        assert!(typo.contains(&format!("nearest: {}", HEAD)), "{}", typo);

        // /policies?package= filters; an unknown package 404s instead of
        // rendering an empty (misleading) listing.
        let all = http_get(addr, "/policies");
        assert!(all.contains("# pack version 1 (3 policies)"), "{}", all);
        let filtered = http_get(addr, "/policies?package=causal::q");
        assert!(filtered.starts_with("HTTP/1.1 200 OK\r\n"), "{}", filtered);
        assert!(
            filtered.contains("# pack version 1 (3 policies)"),
            "{}",
            filtered
        );
        assert!(filtered.contains(HEAD), "{}", filtered);
        let missing = http_get(addr, "/policies?package=nope");
        assert!(
            missing.starts_with("HTTP/1.1 404 Not Found\r\n"),
            "{}",
            missing
        );
        assert!(missing.contains("unknown package nope"), "{}", missing);

        // The shared query-string parser keeps /trace?min_us= working.
        let traces = http_get(addr, "/trace?min_us=0");
        assert!(traces.starts_with("HTTP/1.1 200 OK\r\n"), "{}", traces);

        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
