//! Binary codec for the wire vocabulary: the audit crate's typed
//! [`AuditRequest`]/[`AuditResponse`] plus the ingest and control messages
//! the cross-process service adds.
//!
//! Every message body is `version u8 | tag u8 | payload`.  The payload
//! reuses the store codec's primitive vocabulary
//! ([`piprov_store::codec::put_str`] and friends) and embeds whole
//! [`ProvenanceRecord`]s in the store's DAG body format — a record crosses
//! the socket in exactly the bytes it would occupy in a segment file, so
//! sharing-heavy provenance stays O(DAG) on the wire too, and the decoder
//! rebuilds it through the interner on the receiving side.
//!
//! Decode-side discipline: every count read off the wire is either capped
//! by [`WireLimits`] (record lists) or its pre-allocation is capped by the
//! bytes actually remaining, so no hostile count can request unbounded
//! memory before the per-element bounds checks reject it.

use crate::wire::{WireError, WireLimits, WIRE_VERSION};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use piprov_audit::{AuditOutcome, AuditRequest, AuditResponse, EngineStats, RequestStats};
use piprov_core::name::{Channel, Principal};
use piprov_store::codec::{decode_body, encode_body, get_str, get_value, put_str, put_value};
use piprov_store::{AuditTrail, ProvenanceRecord};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// One typed audit question.
    Audit(AuditRequest),
    /// A batch of records for the bounded ingest queue.
    IngestBatch(Vec<ProvenanceRecord>),
    /// Barrier: drain the ingest queue and sync the store, so everything
    /// submitted before this request is queryable and durable after it.
    Flush,
    /// Snapshot of the engine's lifetime counters.
    Stats,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Audit`].
    Audit(AuditResponse),
    /// The batch was queued.
    IngestAck {
        /// Records accepted (the whole batch; acceptance is atomic).
        accepted: u32,
        /// Ingest-queue depth after queuing, in batches.
        queue_depth: u32,
    },
    /// The bounded ingest queue was full: nothing was buffered, back off
    /// and retry.
    Busy {
        /// Queue depth at the moment of rejection.
        queue_depth: u32,
    },
    /// Answer to [`WireRequest::Flush`].
    Flushed {
        /// Records ingested over the engine's lifetime, after the drain.
        ingested: u64,
        /// The snapshot watermark published by the drain: every record
        /// submitted before the flush is visible at (or below) this
        /// sequence number, so a client can read its own writes by
        /// polling for it.
        watermark: u64,
    },
    /// Answer to [`WireRequest::Stats`].
    Stats(EngineStats),
    /// The server failed to serve an otherwise well-formed request (store
    /// error on flush, for example), or reports why it is closing the
    /// connection.
    ServerError {
        /// Human-readable cause.
        message: String,
    },
}

const REQ_AUDIT: u8 = 1;
const REQ_INGEST: u8 = 2;
const REQ_FLUSH: u8 = 3;
const REQ_STATS: u8 = 4;

const AUDIT_VET: u8 = 1;
const AUDIT_TRAIL: u8 = 2;
const AUDIT_TOUCHED: u8 = 3;
const AUDIT_ORIGIN: u8 = 4;

const RESP_AUDIT: u8 = 1;
const RESP_ACK: u8 = 2;
const RESP_BUSY: u8 = 3;
const RESP_FLUSHED: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_ERROR: u8 = 6;

const OUTCOME_VETTED: u8 = 1;
const OUTCOME_TRAIL: u8 = 2;
const OUTCOME_TOUCHED: u8 = 3;
const OUTCOME_ORIGIN: u8 = 4;
const OUTCOME_UNKNOWN_VALUE: u8 = 5;
const OUTCOME_UNKNOWN_PATTERN: u8 = 6;

fn malformed(what: impl Into<String>) -> WireError {
    WireError::Malformed(what.into())
}

/// Maps a store decode error (the embedded record codec) onto the wire
/// error vocabulary.
fn store_err(e: piprov_store::StoreError) -> WireError {
    malformed(format!("embedded record: {}", e))
}

fn need(buf: &Bytes, bytes: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < bytes {
        return Err(malformed(format!("truncated {}", what)));
    }
    Ok(())
}

fn wire_str(buf: &mut Bytes) -> Result<String, WireError> {
    get_str(buf).map_err(store_err)
}

fn wire_value(buf: &mut Bytes) -> Result<piprov_core::value::Value, WireError> {
    get_value(buf).map_err(store_err)
}

fn put_record(buf: &mut BytesMut, record: &ProvenanceRecord) {
    let body = encode_body(record);
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
}

fn get_record(buf: &mut Bytes) -> Result<ProvenanceRecord, WireError> {
    need(buf, 4, "record length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "record body")?;
    decode_body(buf.copy_to_bytes(len)).map_err(store_err)
}

fn put_records(buf: &mut BytesMut, records: &[ProvenanceRecord]) {
    buf.put_u32(records.len() as u32);
    for record in records {
        put_record(buf, record);
    }
}

fn get_records(
    buf: &mut Bytes,
    limits: &WireLimits,
    what: &str,
) -> Result<Vec<ProvenanceRecord>, WireError> {
    need(buf, 4, "record count")?;
    let count = buf.get_u32();
    if count > limits.max_records {
        return Err(malformed(format!(
            "{} of {} records exceeds the {} record cap",
            what, count, limits.max_records
        )));
    }
    let count = count as usize;
    // Each record costs at least 4 length bytes + the 18-byte minimum body.
    let mut records = Vec::with_capacity(count.min(buf.remaining() / 22 + 1));
    for _ in 0..count {
        records.push(get_record(buf)?);
    }
    Ok(records)
}

fn put_names<S: AsRef<str>>(buf: &mut BytesMut, names: &[S]) {
    buf.put_u32(names.len() as u32);
    for name in names {
        put_str(buf, name.as_ref());
    }
}

fn get_names(buf: &mut Bytes) -> Result<Vec<String>, WireError> {
    need(buf, 4, "name count")?;
    let count = buf.get_u32() as usize;
    // A name costs at least its 2 length bytes.
    let mut names = Vec::with_capacity(count.min(buf.remaining() / 2 + 1));
    for _ in 0..count {
        names.push(wire_str(buf)?);
    }
    Ok(names)
}

fn finish_message(tag: u8, payload: impl FnOnce(&mut BytesMut)) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(tag);
    payload(&mut buf);
    buf.freeze()
}

/// Strips and checks the version byte, returning the message tag.
fn open_message(buf: &mut Bytes) -> Result<u8, WireError> {
    if buf.remaining() < 2 {
        return Err(malformed("message shorter than version + tag"));
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    Ok(buf.get_u8())
}

/// Encodes an `IngestBatch` request body from a borrowed slice — what the
/// client's batching/splitting path uses to encode once (or re-encode a
/// half) without cloning the records.  Byte-identical to
/// `encode_request(&WireRequest::IngestBatch(..))`.
pub fn encode_ingest_batch(records: &[ProvenanceRecord]) -> Bytes {
    finish_message(REQ_INGEST, |buf| put_records(buf, records))
}

/// Encodes one request body (to be framed by [`crate::wire::write_frame`]).
pub fn encode_request(request: &WireRequest) -> Bytes {
    match request {
        WireRequest::Audit(audit) => finish_message(REQ_AUDIT, |buf| match audit {
            AuditRequest::VetValue { value, pattern } => {
                buf.put_u8(AUDIT_VET);
                put_value(buf, value);
                put_str(buf, pattern);
            }
            AuditRequest::AuditTrail { value } => {
                buf.put_u8(AUDIT_TRAIL);
                put_value(buf, value);
            }
            AuditRequest::WhoTouched { principal } => {
                buf.put_u8(AUDIT_TOUCHED);
                put_str(buf, principal.as_str());
            }
            AuditRequest::OriginOf { value } => {
                buf.put_u8(AUDIT_ORIGIN);
                put_value(buf, value);
            }
        }),
        WireRequest::IngestBatch(records) => {
            finish_message(REQ_INGEST, |buf| put_records(buf, records))
        }
        WireRequest::Flush => finish_message(REQ_FLUSH, |_| {}),
        WireRequest::Stats => finish_message(REQ_STATS, |_| {}),
    }
}

/// Decodes one request body.
///
/// # Errors
///
/// [`WireError::UnsupportedVersion`] or [`WireError::Malformed`]; record
/// counts above [`WireLimits::max_records`] are rejected before any
/// per-record work.
pub fn decode_request(mut buf: Bytes, limits: &WireLimits) -> Result<WireRequest, WireError> {
    let request = match open_message(&mut buf)? {
        REQ_AUDIT => {
            need(&buf, 1, "audit request tag")?;
            let audit = match buf.get_u8() {
                AUDIT_VET => AuditRequest::VetValue {
                    value: wire_value(&mut buf)?,
                    pattern: wire_str(&mut buf)?,
                },
                AUDIT_TRAIL => AuditRequest::AuditTrail {
                    value: wire_value(&mut buf)?,
                },
                AUDIT_TOUCHED => AuditRequest::WhoTouched {
                    principal: Principal::new(wire_str(&mut buf)?),
                },
                AUDIT_ORIGIN => AuditRequest::OriginOf {
                    value: wire_value(&mut buf)?,
                },
                other => return Err(malformed(format!("unknown audit request tag {}", other))),
            };
            WireRequest::Audit(audit)
        }
        REQ_INGEST => WireRequest::IngestBatch(get_records(&mut buf, limits, "ingest batch")?),
        REQ_FLUSH => WireRequest::Flush,
        REQ_STATS => WireRequest::Stats,
        other => return Err(malformed(format!("unknown request tag {}", other))),
    };
    if buf.has_remaining() {
        return Err(malformed("trailing bytes after request"));
    }
    Ok(request)
}

fn put_request_stats(buf: &mut BytesMut, stats: &RequestStats) {
    buf.put_u64(stats.index_hits as u64);
    buf.put_u64(stats.memo_hits as u64);
    buf.put_u64(stats.dag_nodes_visited as u64);
}

fn get_request_stats(buf: &mut Bytes) -> Result<RequestStats, WireError> {
    need(buf, 24, "request stats")?;
    Ok(RequestStats {
        index_hits: buf.get_u64() as usize,
        memo_hits: buf.get_u64() as usize,
        dag_nodes_visited: buf.get_u64() as usize,
    })
}

fn put_engine_stats(buf: &mut BytesMut, stats: &EngineStats) {
    for field in [
        stats.requests,
        stats.ingested,
        stats.vets_passed,
        stats.vets_failed,
        stats.index_hits,
        stats.memo_hits,
        stats.ingest_batches,
        stats.busy_rejections,
        stats.queue_depth,
        stats.snapshots_published,
        stats.snapshot_lag,
        stats.watermark,
    ] {
        buf.put_u64(field);
    }
}

fn get_engine_stats(buf: &mut Bytes) -> Result<EngineStats, WireError> {
    need(buf, 96, "engine stats")?;
    Ok(EngineStats {
        requests: buf.get_u64(),
        ingested: buf.get_u64(),
        vets_passed: buf.get_u64(),
        vets_failed: buf.get_u64(),
        index_hits: buf.get_u64(),
        memo_hits: buf.get_u64(),
        ingest_batches: buf.get_u64(),
        busy_rejections: buf.get_u64(),
        queue_depth: buf.get_u64(),
        snapshots_published: buf.get_u64(),
        snapshot_lag: buf.get_u64(),
        watermark: buf.get_u64(),
    })
}

/// Encodes one response body (to be framed by
/// [`crate::wire::write_frame`]).
pub fn encode_response(response: &WireResponse) -> Bytes {
    match response {
        WireResponse::Audit(audit) => finish_message(RESP_AUDIT, |buf| {
            match &audit.outcome {
                AuditOutcome::Vetted { verdict, sequence } => {
                    buf.put_u8(OUTCOME_VETTED);
                    buf.put_u8(*verdict as u8);
                    buf.put_u64(*sequence);
                }
                AuditOutcome::Trail(trail) => {
                    buf.put_u8(OUTCOME_TRAIL);
                    put_value(buf, &trail.value);
                    put_records(buf, &trail.records);
                    put_names(
                        buf,
                        &trail
                            .principals
                            .iter()
                            .map(|p| p.as_str())
                            .collect::<Vec<_>>(),
                    );
                    put_names(
                        buf,
                        &trail
                            .channels
                            .iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>(),
                    );
                }
                AuditOutcome::Touched { records, values } => {
                    buf.put_u8(OUTCOME_TOUCHED);
                    buf.put_u32(records.len() as u32);
                    for seq in records {
                        buf.put_u64(*seq);
                    }
                    buf.put_u32(values.len() as u32);
                    for value in values {
                        put_value(buf, value);
                    }
                }
                AuditOutcome::Origin { principal } => {
                    buf.put_u8(OUTCOME_ORIGIN);
                    match principal {
                        Some(p) => {
                            buf.put_u8(1);
                            put_str(buf, p.as_str());
                        }
                        None => buf.put_u8(0),
                    }
                }
                AuditOutcome::UnknownValue => buf.put_u8(OUTCOME_UNKNOWN_VALUE),
                AuditOutcome::UnknownPattern => buf.put_u8(OUTCOME_UNKNOWN_PATTERN),
            }
            put_request_stats(buf, &audit.stats);
            buf.put_u64(audit.watermark);
        }),
        WireResponse::IngestAck {
            accepted,
            queue_depth,
        } => finish_message(RESP_ACK, |buf| {
            buf.put_u32(*accepted);
            buf.put_u32(*queue_depth);
        }),
        WireResponse::Busy { queue_depth } => finish_message(RESP_BUSY, |buf| {
            buf.put_u32(*queue_depth);
        }),
        WireResponse::Flushed {
            ingested,
            watermark,
        } => finish_message(RESP_FLUSHED, |buf| {
            buf.put_u64(*ingested);
            buf.put_u64(*watermark);
        }),
        WireResponse::Stats(stats) => finish_message(RESP_STATS, |buf| {
            put_engine_stats(buf, stats);
        }),
        WireResponse::ServerError { message } => finish_message(RESP_ERROR, |buf| {
            put_str(buf, message);
        }),
    }
}

/// Decodes one response body.
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_response(mut buf: Bytes, limits: &WireLimits) -> Result<WireResponse, WireError> {
    let response = match open_message(&mut buf)? {
        RESP_AUDIT => {
            need(&buf, 1, "audit outcome tag")?;
            let outcome = match buf.get_u8() {
                OUTCOME_VETTED => {
                    need(&buf, 9, "vet outcome")?;
                    let verdict = match buf.get_u8() {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(malformed(format!("bad verdict byte {}", other)));
                        }
                    };
                    AuditOutcome::Vetted {
                        verdict,
                        sequence: buf.get_u64(),
                    }
                }
                OUTCOME_TRAIL => {
                    let value = wire_value(&mut buf)?;
                    let records = get_records(&mut buf, limits, "audit trail")?;
                    let principals = get_names(&mut buf)?
                        .into_iter()
                        .map(Principal::new)
                        .collect();
                    let channels = get_names(&mut buf)?.into_iter().map(Channel::new).collect();
                    AuditOutcome::Trail(AuditTrail {
                        value,
                        records,
                        principals,
                        channels,
                    })
                }
                OUTCOME_TOUCHED => {
                    need(&buf, 4, "touched record count")?;
                    let count = buf.get_u32() as usize;
                    let mut records = Vec::with_capacity(count.min(buf.remaining() / 8 + 1));
                    for _ in 0..count {
                        need(&buf, 8, "touched sequence")?;
                        records.push(buf.get_u64());
                    }
                    need(&buf, 4, "touched value count")?;
                    let count = buf.get_u32() as usize;
                    let mut values = Vec::with_capacity(count.min(buf.remaining() / 3 + 1));
                    for _ in 0..count {
                        values.push(wire_value(&mut buf)?);
                    }
                    AuditOutcome::Touched { records, values }
                }
                OUTCOME_ORIGIN => {
                    need(&buf, 1, "origin flag")?;
                    let principal = match buf.get_u8() {
                        0 => None,
                        1 => Some(Principal::new(wire_str(&mut buf)?)),
                        other => return Err(malformed(format!("bad origin flag {}", other))),
                    };
                    AuditOutcome::Origin { principal }
                }
                OUTCOME_UNKNOWN_VALUE => AuditOutcome::UnknownValue,
                OUTCOME_UNKNOWN_PATTERN => AuditOutcome::UnknownPattern,
                other => return Err(malformed(format!("unknown audit outcome tag {}", other))),
            };
            let stats = get_request_stats(&mut buf)?;
            need(&buf, 8, "response watermark")?;
            let watermark = buf.get_u64();
            WireResponse::Audit(AuditResponse {
                outcome,
                stats,
                watermark,
            })
        }
        RESP_ACK => {
            need(&buf, 8, "ingest ack")?;
            WireResponse::IngestAck {
                accepted: buf.get_u32(),
                queue_depth: buf.get_u32(),
            }
        }
        RESP_BUSY => {
            need(&buf, 4, "busy response")?;
            WireResponse::Busy {
                queue_depth: buf.get_u32(),
            }
        }
        RESP_FLUSHED => {
            need(&buf, 16, "flushed response")?;
            WireResponse::Flushed {
                ingested: buf.get_u64(),
                watermark: buf.get_u64(),
            }
        }
        RESP_STATS => WireResponse::Stats(get_engine_stats(&mut buf)?),
        RESP_ERROR => WireResponse::ServerError {
            message: wire_str(&mut buf)?,
        },
        other => return Err(malformed(format!("unknown response tag {}", other))),
    };
    if buf.has_remaining() {
        return Err(malformed("trailing bytes after response"));
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::provenance::{Event, Provenance};
    use piprov_core::value::Value;
    use piprov_store::Operation;

    fn record(i: u64) -> ProvenanceRecord {
        let who = Principal::new(format!("p{}", i));
        let k = Provenance::single(Event::output(who.clone(), Provenance::empty()));
        ProvenanceRecord::new(
            i,
            who,
            Operation::Send,
            "m",
            Value::Channel(Channel::new(format!("v{}", i))),
            k,
        )
    }

    #[test]
    fn requests_round_trip() {
        let limits = WireLimits::default();
        let requests = vec![
            WireRequest::Audit(AuditRequest::VetValue {
                value: Value::Channel(Channel::new("v")),
                pattern: "from-a".into(),
            }),
            WireRequest::Audit(AuditRequest::AuditTrail {
                value: Value::Principal(Principal::new("b")),
            }),
            WireRequest::Audit(AuditRequest::WhoTouched {
                principal: Principal::new("s"),
            }),
            WireRequest::Audit(AuditRequest::OriginOf {
                value: Value::Channel(Channel::new("x")),
            }),
            WireRequest::IngestBatch(vec![record(1), record(2)]),
            WireRequest::IngestBatch(Vec::new()),
            WireRequest::Flush,
            WireRequest::Stats,
        ];
        for request in requests {
            let decoded = decode_request(encode_request(&request), &limits).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn over_cap_batches_are_rejected_before_decoding_records() {
        let limits = WireLimits {
            max_records: 2,
            ..WireLimits::default()
        };
        let request = WireRequest::IngestBatch(vec![record(1), record(2), record(3)]);
        let err = decode_request(encode_request(&request), &limits).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{:?}", err);
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn version_and_tag_errors_are_typed() {
        let limits = WireLimits::default();
        let mut body = encode_request(&WireRequest::Flush).to_vec();
        body[0] = 9;
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::UnsupportedVersion(9))
        ));
        let mut body = encode_request(&WireRequest::Flush).to_vec();
        body[1] = 99;
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_response(Bytes::from(vec![WIRE_VERSION]), &limits),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let limits = WireLimits::default();
        let mut body = encode_request(&WireRequest::Stats).to_vec();
        body.push(0);
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::Malformed(_))
        ));
    }
}
