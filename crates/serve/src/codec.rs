//! Binary codec for the wire vocabulary: the audit crate's typed
//! [`AuditRequest`]/[`AuditResponse`] plus the ingest and control messages
//! the cross-process service adds.
//!
//! Every message body is `version u8 | tag u8 | payload`.  The payload
//! reuses the store codec's primitive vocabulary
//! ([`piprov_store::codec::put_str`] and friends) and embeds whole
//! [`ProvenanceRecord`]s in the store's DAG body format — a record crosses
//! the socket in exactly the bytes it would occupy in a segment file, so
//! sharing-heavy provenance stays O(DAG) on the wire too, and the decoder
//! rebuilds it through the interner on the receiving side.
//!
//! Decode-side discipline: every count read off the wire is either capped
//! by [`WireLimits`] (record lists) or its pre-allocation is capped by the
//! bytes actually remaining, so no hostile count can request unbounded
//! memory before the per-element bounds checks reject it.

use crate::wire::{WireError, WireLimits, MIN_WIRE_VERSION, WIRE_VERSION};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use piprov_audit::{
    AuditOutcome, AuditRequest, AuditResponse, CounterfactualVerdict, EngineStats, EventFilter,
    Exemplar, HistogramSnapshot, MetricsSnapshot, PolicyInfo, PolicyListing, PolicySnapshot,
    RequestKind, RequestStats, Span, SpanKind, TraceContext, TraceRecord, WhyEvent, WhySlice,
};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Direction, Event, InternerStats, Provenance, ShardStats};
use piprov_patterns::MemoStats;
use piprov_policy::{PackDiagnostic, PackFile, PackSource};
use piprov_store::codec::{decode_body, encode_body, get_str, get_value, put_str, put_value};
use piprov_store::record::{
    direction_from_tag, direction_tag, flatten_provenance, unflatten_provenance,
};
use piprov_store::{AuditTrail, ProvenanceRecord, StoreStats};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// One typed audit question.
    Audit(AuditRequest),
    /// A batch of records for the bounded ingest queue.
    IngestBatch(Vec<ProvenanceRecord>),
    /// Barrier: drain the ingest queue and sync the store, so everything
    /// submitted before this request is queryable and durable after it.
    /// The server's wait is bounded ([`crate::ServeConfig::flush_timeout`])
    /// and never touches the queue's pause hook; a timeout answers
    /// [`WireResponse::ServerError`].
    Flush,
    /// Snapshot of the engine's lifetime counters.
    Stats,
    /// The full metrics plane: engine/store/interner counters plus every
    /// registered policy's verdict counters and latency histogram (see
    /// [`piprov_audit::MetricsSnapshot`]).
    Metrics,
    /// Recent traces from the server's ring-buffer collector, oldest
    /// first, dropping traces shorter than `min_total_ns` end to end.
    Traces {
        /// Minimum end-to-end duration, nanoseconds (`0` = everything).
        min_total_ns: u64,
    },
    /// A whole policy pack, inline: root package name plus every `.ppol`
    /// file's source text (version 5).  The server compiles it off to the
    /// side and either installs it atomically
    /// ([`WireResponse::PackLoaded`]) or rejects it with per-file
    /// line/column diagnostics and changes nothing
    /// ([`WireResponse::PackRejected`]).
    LoadPack(PackSource),
    /// The registered policies: every name, source package, and canonical
    /// pattern text, plus the pack version they belong to (version 5).
    ListPolicies,
}

/// The trace field a traced request carries after its payload: the
/// propagated [`TraceContext`] plus the client-side encode+send duration,
/// measured by the originator (the server cannot observe it) so the
/// server-side trace covers the full path.
///
/// The field is *additive*: a v3 peer sends none and decodes to `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    /// The propagated trace identity.
    pub context: TraceContext,
    /// Client-side request encode (and send-buffer) time, nanoseconds.
    pub client_encode_ns: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Audit`].
    Audit(AuditResponse),
    /// The batch was queued.
    IngestAck {
        /// Records accepted (the whole batch; acceptance is atomic).
        accepted: u32,
        /// Ingest-queue depth after queuing, in batches.
        queue_depth: u32,
    },
    /// The bounded ingest queue was full: nothing was buffered, back off
    /// and retry.
    Busy {
        /// Queue depth at the moment of rejection.
        queue_depth: u32,
    },
    /// Answer to [`WireRequest::Flush`].
    Flushed {
        /// Records ingested over the engine's lifetime, after the drain.
        ingested: u64,
        /// The snapshot watermark published by the drain: every record
        /// submitted before the flush is visible at (or below) this
        /// sequence number, so a client can read its own writes by
        /// polling for it.
        watermark: u64,
    },
    /// Answer to [`WireRequest::Stats`].
    Stats(EngineStats),
    /// Answer to [`WireRequest::Metrics`]: the typed snapshot; the client
    /// renders the Prometheus exposition locally from it
    /// ([`piprov_audit::MetricsSnapshot::exposition`] is deterministic, so
    /// client and server render identical text).  Boxed: the snapshot is
    /// by far the largest payload, and boxing it keeps every other
    /// response variant small on the stack.
    Metrics(Box<MetricsSnapshot>),
    /// Answer to [`WireRequest::Traces`]: recent traces from the ring
    /// collector, oldest first, already merged by trace id.
    Traces(Vec<TraceRecord>),
    /// Answer to [`WireRequest::LoadPack`]: the pack compiled cleanly and
    /// was published as the new policy set in one atomic swap.
    PackLoaded {
        /// Registry version the new set was published at.
        version: u64,
        /// Policies in the installed set.
        installed: u32,
        /// Of those, policies carried over unchanged (same name, package,
        /// and canonical source), keeping automaton memo and metric
        /// timeline.
        reused: u32,
    },
    /// Answer to [`WireRequest::LoadPack`]: the pack failed to compile
    /// and **nothing changed** (all-or-nothing), with every problem's
    /// file, line, and column.
    PackRejected {
        /// Per-file diagnostics, sorted by (path, line, column).
        diagnostics: Vec<PackDiagnostic>,
    },
    /// Answer to [`WireRequest::ListPolicies`].
    Policies(PolicyListing),
    /// The server failed to serve an otherwise well-formed request (store
    /// error on flush, for example), or reports why it is closing the
    /// connection.
    ServerError {
        /// Human-readable cause.
        message: String,
    },
}

/// The [`RequestKind`] a wire request traces as.
pub fn request_kind(request: &WireRequest) -> RequestKind {
    match request {
        WireRequest::Audit(AuditRequest::VetValue { .. }) => RequestKind::Vet,
        WireRequest::Audit(AuditRequest::AuditTrail { .. }) => RequestKind::Trail,
        WireRequest::Audit(AuditRequest::WhoTouched { .. }) => RequestKind::Touched,
        WireRequest::Audit(AuditRequest::OriginOf { .. }) => RequestKind::Origin,
        WireRequest::Audit(AuditRequest::Why { .. }) => RequestKind::Why,
        WireRequest::Audit(AuditRequest::Counterfactual { .. }) => RequestKind::Counterfactual,
        WireRequest::IngestBatch(_) => RequestKind::Ingest,
        WireRequest::Flush => RequestKind::Flush,
        WireRequest::Stats => RequestKind::Stats,
        WireRequest::Metrics => RequestKind::Metrics,
        WireRequest::Traces { .. } => RequestKind::Traces,
        WireRequest::LoadPack(_) => RequestKind::LoadPack,
        WireRequest::ListPolicies => RequestKind::ListPolicies,
    }
}

const REQ_AUDIT: u8 = 1;
const REQ_INGEST: u8 = 2;
const REQ_FLUSH: u8 = 3;
const REQ_STATS: u8 = 4;
// Added after version 2 shipped as an additive tag; version 3 then grew
// its response payload (the wire-level histograms), which is why the
// version byte moved — a v2 peer would misparse the larger snapshot.
const REQ_METRICS: u8 = 5;
// Added with version 4 (the tracing plane).
const REQ_TRACES: u8 = 6;
// Added with version 5 (the policy-pack plane).
const REQ_LOAD_PACK: u8 = 7;
const REQ_LIST_POLICIES: u8 = 8;

/// Field tag of the additive per-request trace field (version 4).
const REQUEST_FIELD_TRACE: u8 = 1;

const AUDIT_VET: u8 = 1;
const AUDIT_TRAIL: u8 = 2;
const AUDIT_TOUCHED: u8 = 3;
const AUDIT_ORIGIN: u8 = 4;
// Added with version 6 (the causal-query plane).
const AUDIT_WHY: u8 = 5;
const AUDIT_COUNTERFACTUAL: u8 = 6;

// [`EventFilter`] tags (version 6).
const FILTER_PRINCIPAL: u8 = 1;
const FILTER_KIND: u8 = 2;
const FILTER_CHANNEL_VIA: u8 = 3;

const RESP_AUDIT: u8 = 1;
const RESP_ACK: u8 = 2;
const RESP_BUSY: u8 = 3;
const RESP_FLUSHED: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_METRICS: u8 = 7;
const RESP_TRACES: u8 = 8;
// Added with version 5 (the policy-pack plane).
const RESP_PACK_LOADED: u8 = 9;
const RESP_PACK_REJECTED: u8 = 10;
const RESP_POLICIES: u8 = 11;

const OUTCOME_VETTED: u8 = 1;
const OUTCOME_TRAIL: u8 = 2;
const OUTCOME_TOUCHED: u8 = 3;
const OUTCOME_ORIGIN: u8 = 4;
const OUTCOME_UNKNOWN_VALUE: u8 = 5;
const OUTCOME_UNKNOWN_PATTERN: u8 = 6;
// Added with version 6 (the causal-query plane).
const OUTCOME_WHY: u8 = 7;
const OUTCOME_COUNTERFACTUAL: u8 = 8;

fn malformed(what: impl Into<String>) -> WireError {
    WireError::Malformed(what.into())
}

/// Maps a store decode error (the embedded record codec) onto the wire
/// error vocabulary.
fn store_err(e: piprov_store::StoreError) -> WireError {
    malformed(format!("embedded record: {}", e))
}

fn need(buf: &Bytes, bytes: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < bytes {
        return Err(malformed(format!("truncated {}", what)));
    }
    Ok(())
}

fn wire_str(buf: &mut Bytes) -> Result<String, WireError> {
    get_str(buf).map_err(store_err)
}

fn wire_value(buf: &mut Bytes) -> Result<piprov_core::value::Value, WireError> {
    get_value(buf).map_err(store_err)
}

fn put_record(buf: &mut BytesMut, record: &ProvenanceRecord) {
    let body = encode_body(record);
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
}

fn get_record(buf: &mut Bytes) -> Result<ProvenanceRecord, WireError> {
    need(buf, 4, "record length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "record body")?;
    decode_body(buf.copy_to_bytes(len)).map_err(store_err)
}

fn put_records(buf: &mut BytesMut, records: &[ProvenanceRecord]) {
    buf.put_u32(records.len() as u32);
    for record in records {
        put_record(buf, record);
    }
}

fn get_records(
    buf: &mut Bytes,
    limits: &WireLimits,
    what: &str,
) -> Result<Vec<ProvenanceRecord>, WireError> {
    need(buf, 4, "record count")?;
    let count = buf.get_u32();
    if count > limits.max_records {
        return Err(malformed(format!(
            "{} of {} records exceeds the {} record cap",
            what, count, limits.max_records
        )));
    }
    let count = count as usize;
    // Each record costs at least 4 length bytes + the 18-byte minimum body.
    let mut records = Vec::with_capacity(count.min(buf.remaining() / 22 + 1));
    for _ in 0..count {
        records.push(get_record(buf)?);
    }
    Ok(records)
}

fn put_names<S: AsRef<str>>(buf: &mut BytesMut, names: &[S]) {
    buf.put_u32(names.len() as u32);
    for name in names {
        put_str(buf, name.as_ref());
    }
}

fn get_names(buf: &mut Bytes) -> Result<Vec<String>, WireError> {
    need(buf, 4, "name count")?;
    let count = buf.get_u32() as usize;
    // A name costs at least its 2 length bytes.
    let mut names = Vec::with_capacity(count.min(buf.remaining() / 2 + 1));
    for _ in 0..count {
        names.push(wire_str(buf)?);
    }
    Ok(names)
}

/// A u32-length-prefixed text blob: pack file sources (and canonical
/// policy text) routinely outgrow the u16-prefixed name vocabulary of
/// [`put_str`].
fn put_text(buf: &mut BytesMut, text: &str) {
    buf.put_u32(text.len() as u32);
    buf.put_slice(text.as_bytes());
}

fn get_text(buf: &mut Bytes) -> Result<String, WireError> {
    need(buf, 4, "text length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "text body")?;
    String::from_utf8(buf.copy_to_bytes(len).to_vec())
        .map_err(|_| malformed("invalid utf-8 in text"))
}

fn finish_message(tag: u8, payload: impl FnOnce(&mut BytesMut)) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(tag);
    payload(&mut buf);
    buf.freeze()
}

/// Strips and checks the version byte, returning `(version, tag)`.
/// Decoders accept [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`]; the version
/// gates the *additive* payload extensions (trace fields, exemplars,
/// connection counters) newer versions carry.
fn open_message(buf: &mut Bytes) -> Result<(u8, u8), WireError> {
    if buf.remaining() < 2 {
        return Err(malformed("message shorter than version + tag"));
    }
    let version = buf.get_u8();
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    Ok((version, buf.get_u8()))
}

fn put_request_trace(buf: &mut BytesMut, trace: &RequestTrace) {
    buf.put_u8(REQUEST_FIELD_TRACE);
    buf.put_u64((trace.context.trace_id >> 64) as u64);
    buf.put_u64(trace.context.trace_id as u64);
    buf.put_u8(trace.context.sampled as u8);
    buf.put_u64(trace.client_encode_ns);
}

fn get_request_trace(buf: &mut Bytes) -> Result<RequestTrace, WireError> {
    need(buf, 25, "request trace field")?;
    let hi = buf.get_u64();
    let lo = buf.get_u64();
    let sampled = match buf.get_u8() {
        0 => false,
        1 => true,
        other => return Err(malformed(format!("bad trace sampled flag {}", other))),
    };
    Ok(RequestTrace {
        context: TraceContext {
            trace_id: ((hi as u128) << 64) | lo as u128,
            sampled,
        },
        client_encode_ns: buf.get_u64(),
    })
}

/// Encodes an `IngestBatch` request body from a borrowed slice — what the
/// client's batching/splitting path uses to encode once (or re-encode a
/// half) without cloning the records.  Byte-identical to
/// `encode_request(&WireRequest::IngestBatch(..))`.
pub fn encode_ingest_batch(records: &[ProvenanceRecord]) -> Bytes {
    finish_message(REQ_INGEST, |buf| put_records(buf, records))
}

/// Appends the additive trace field to an already-encoded request body —
/// how a traced client turns any encoded request (including a pre-encoded
/// ingest batch) into its traced form without re-encoding the payload.
pub fn append_request_trace(body: &Bytes, trace: &RequestTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(body.len() + 26);
    buf.extend_from_slice(body);
    put_request_trace(&mut buf, trace);
    buf.freeze()
}

/// Encodes one request body with its optional trace field appended.
pub fn encode_request_traced(request: &WireRequest, trace: Option<&RequestTrace>) -> Bytes {
    let body = encode_request(request);
    match trace {
        Some(trace) => append_request_trace(&body, trace),
        None => body,
    }
}

/// Encodes one request body (to be framed by [`crate::wire::write_frame`]).
pub fn encode_request(request: &WireRequest) -> Bytes {
    match request {
        WireRequest::Audit(audit) => finish_message(REQ_AUDIT, |buf| match audit {
            AuditRequest::VetValue { value, pattern } => {
                buf.put_u8(AUDIT_VET);
                put_value(buf, value);
                put_str(buf, pattern);
            }
            AuditRequest::AuditTrail { value } => {
                buf.put_u8(AUDIT_TRAIL);
                put_value(buf, value);
            }
            AuditRequest::WhoTouched { principal } => {
                buf.put_u8(AUDIT_TOUCHED);
                put_str(buf, principal.as_str());
            }
            AuditRequest::OriginOf { value } => {
                buf.put_u8(AUDIT_ORIGIN);
                put_value(buf, value);
            }
            AuditRequest::Why { value, pattern } => {
                buf.put_u8(AUDIT_WHY);
                put_value(buf, value);
                put_str(buf, pattern);
            }
            AuditRequest::Counterfactual {
                value,
                pattern,
                remove,
            } => {
                buf.put_u8(AUDIT_COUNTERFACTUAL);
                put_value(buf, value);
                put_str(buf, pattern);
                put_event_filter(buf, remove);
            }
        }),
        WireRequest::IngestBatch(records) => {
            finish_message(REQ_INGEST, |buf| put_records(buf, records))
        }
        WireRequest::Flush => finish_message(REQ_FLUSH, |_| {}),
        WireRequest::Stats => finish_message(REQ_STATS, |_| {}),
        WireRequest::Metrics => finish_message(REQ_METRICS, |_| {}),
        WireRequest::Traces { min_total_ns } => finish_message(REQ_TRACES, |buf| {
            buf.put_u64(*min_total_ns);
        }),
        WireRequest::LoadPack(pack) => finish_message(REQ_LOAD_PACK, |buf| {
            put_str(buf, &pack.root);
            buf.put_u32(pack.files.len() as u32);
            for file in &pack.files {
                put_str(buf, &file.path);
                put_text(buf, &file.source);
            }
        }),
        WireRequest::ListPolicies => finish_message(REQ_LIST_POLICIES, |_| {}),
    }
}

/// Decodes one request body, dropping any trace field.
///
/// # Errors
///
/// [`WireError::UnsupportedVersion`] or [`WireError::Malformed`]; record
/// counts above [`WireLimits::max_records`] are rejected before any
/// per-record work.
pub fn decode_request(buf: Bytes, limits: &WireLimits) -> Result<WireRequest, WireError> {
    decode_request_traced(buf, limits).map(|(request, _)| request)
}

/// Decodes one request body together with its optional trace field (only
/// version-4 bodies can carry one) — the server's entry point.
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_request_traced(
    mut buf: Bytes,
    limits: &WireLimits,
) -> Result<(WireRequest, Option<RequestTrace>), WireError> {
    let (version, tag) = open_message(&mut buf)?;
    let request = match tag {
        REQ_AUDIT => {
            need(&buf, 1, "audit request tag")?;
            let audit = match buf.get_u8() {
                AUDIT_VET => AuditRequest::VetValue {
                    value: wire_value(&mut buf)?,
                    pattern: wire_str(&mut buf)?,
                },
                AUDIT_TRAIL => AuditRequest::AuditTrail {
                    value: wire_value(&mut buf)?,
                },
                AUDIT_TOUCHED => AuditRequest::WhoTouched {
                    principal: Principal::new(wire_str(&mut buf)?),
                },
                AUDIT_ORIGIN => AuditRequest::OriginOf {
                    value: wire_value(&mut buf)?,
                },
                // The causal-query tags are version-6 vocabulary: a pre-v6
                // body carrying one falls through to the unknown-tag error.
                AUDIT_WHY if version >= 6 => AuditRequest::Why {
                    value: wire_value(&mut buf)?,
                    pattern: wire_str(&mut buf)?,
                },
                AUDIT_COUNTERFACTUAL if version >= 6 => AuditRequest::Counterfactual {
                    value: wire_value(&mut buf)?,
                    pattern: wire_str(&mut buf)?,
                    remove: get_event_filter(&mut buf)?,
                },
                other => return Err(malformed(format!("unknown audit request tag {}", other))),
            };
            WireRequest::Audit(audit)
        }
        REQ_INGEST => WireRequest::IngestBatch(get_records(&mut buf, limits, "ingest batch")?),
        REQ_FLUSH => WireRequest::Flush,
        REQ_STATS => WireRequest::Stats,
        REQ_METRICS => WireRequest::Metrics,
        REQ_TRACES => {
            need(&buf, 8, "traces filter")?;
            WireRequest::Traces {
                min_total_ns: buf.get_u64(),
            }
        }
        // The policy-pack tags are version-5 vocabulary: a pre-v5 body
        // carrying one falls through to the unknown-tag error below.
        REQ_LOAD_PACK if version >= 5 => {
            let root = wire_str(&mut buf)?;
            need(&buf, 4, "pack file count")?;
            let count = buf.get_u32() as usize;
            // A pack file costs at least its 2 path-length + 4
            // source-length bytes.
            let mut files = Vec::with_capacity(count.min(buf.remaining() / 6 + 1));
            for _ in 0..count {
                let path = wire_str(&mut buf)?;
                let source = get_text(&mut buf)?;
                files.push(PackFile::new(path, source));
            }
            WireRequest::LoadPack(PackSource::new(root, files))
        }
        REQ_LIST_POLICIES if version >= 5 => WireRequest::ListPolicies,
        other => return Err(malformed(format!("unknown request tag {}", other))),
    };
    // Additive per-request fields after the payload (version 4+); the only
    // one defined is the trace field.  An unknown field tag — including
    // any trailing byte on a pre-v4 body — is malformed, not skipped: the
    // field space is versioned, so "garbage we tolerate" never becomes a
    // compatibility constraint by accident.
    let mut trace = None;
    while buf.has_remaining() {
        match buf.get_u8() {
            REQUEST_FIELD_TRACE if version >= 4 && trace.is_none() => {
                trace = Some(get_request_trace(&mut buf)?);
            }
            _ => return Err(malformed("trailing bytes after request")),
        }
    }
    Ok((request, trace))
}

fn put_request_stats(buf: &mut BytesMut, stats: &RequestStats) {
    buf.put_u64(stats.index_hits as u64);
    buf.put_u64(stats.memo_hits as u64);
    buf.put_u64(stats.dag_nodes_visited as u64);
    // Version 6 appended the counterfactual memo-reuse counter.
    buf.put_u64(stats.memo_reused as u64);
}

fn get_request_stats(buf: &mut Bytes, version: u8) -> Result<RequestStats, WireError> {
    need(buf, 24, "request stats")?;
    let mut stats = RequestStats {
        index_hits: buf.get_u64() as usize,
        memo_hits: buf.get_u64() as usize,
        dag_nodes_visited: buf.get_u64() as usize,
        ..RequestStats::default()
    };
    if version >= 6 {
        need(buf, 8, "request stats memo_reused")?;
        stats.memo_reused = buf.get_u64() as usize;
    }
    Ok(stats)
}

fn put_event_filter(buf: &mut BytesMut, filter: &EventFilter) {
    match filter {
        EventFilter::Principal(principal) => {
            buf.put_u8(FILTER_PRINCIPAL);
            put_str(buf, principal.as_str());
        }
        EventFilter::Kind(direction) => {
            buf.put_u8(FILTER_KIND);
            buf.put_u8(direction_tag(*direction));
        }
        EventFilter::ChannelVia(principal) => {
            buf.put_u8(FILTER_CHANNEL_VIA);
            put_str(buf, principal.as_str());
        }
    }
}

fn get_event_filter(buf: &mut Bytes) -> Result<EventFilter, WireError> {
    need(buf, 1, "event filter tag")?;
    Ok(match buf.get_u8() {
        FILTER_PRINCIPAL => EventFilter::Principal(Principal::new(wire_str(buf)?)),
        FILTER_KIND => {
            need(buf, 1, "event filter direction")?;
            let direction = direction_from_tag(buf.get_u8())
                .ok_or_else(|| malformed("unknown event filter direction"))?;
            EventFilter::Kind(direction)
        }
        FILTER_CHANNEL_VIA => EventFilter::ChannelVia(Principal::new(wire_str(buf)?)),
        other => return Err(malformed(format!("unknown event filter tag {}", other))),
    })
}

/// Writes one [`WhyEvent`]: the DAG node id, the event's principal and
/// direction, then the channel provenance as a flattened preorder
/// `(depth, direction, principal)` list — the same shape the store's
/// legacy record codec uses, expanded (sharing inside a single channel
/// history is rare and slices are operator-facing diagnostics).
fn put_why_event(buf: &mut BytesMut, event: &WhyEvent) {
    buf.put_u32(event.node);
    put_str(buf, event.event.principal.as_str());
    buf.put_u8(direction_tag(event.event.direction));
    let flat = flatten_provenance(&event.event.channel_provenance);
    buf.put_u32(flat.len() as u32);
    for (depth, nested) in &flat {
        buf.put_u32(*depth);
        buf.put_u8(direction_tag(nested.direction));
        put_str(buf, nested.principal.as_str());
    }
}

fn get_why_event(buf: &mut Bytes) -> Result<WhyEvent, WireError> {
    need(buf, 4, "why event node")?;
    let node = buf.get_u32();
    let principal = Principal::new(wire_str(buf)?);
    need(buf, 5, "why event direction")?;
    let direction =
        direction_from_tag(buf.get_u8()).ok_or_else(|| malformed("unknown why event direction"))?;
    let count = buf.get_u32() as usize;
    // A channel entry costs at least its 4 depth + 1 direction + 2
    // principal-length bytes; cap the pre-allocation accordingly.
    let mut flat = Vec::with_capacity(count.min(buf.remaining() / 7 + 1));
    for _ in 0..count {
        need(buf, 5, "why event channel entry")?;
        let depth = buf.get_u32();
        let nested_direction = direction_from_tag(buf.get_u8())
            .ok_or_else(|| malformed("unknown why event channel direction"))?;
        let nested = Principal::new(wire_str(buf)?);
        flat.push((
            depth,
            match nested_direction {
                Direction::Output => Event::output(nested, Provenance::empty()),
                Direction::Input => Event::input(nested, Provenance::empty()),
            },
        ));
    }
    let channel_provenance = unflatten_provenance(&flat);
    let event = match direction {
        Direction::Output => Event::output(principal, channel_provenance),
        Direction::Input => Event::input(principal, channel_provenance),
    };
    Ok(WhyEvent { node, event })
}

fn put_why_events(buf: &mut BytesMut, events: &[WhyEvent]) {
    buf.put_u32(events.len() as u32);
    for event in events {
        put_why_event(buf, event);
    }
}

fn get_why_events(buf: &mut Bytes) -> Result<Vec<WhyEvent>, WireError> {
    need(buf, 4, "why event count")?;
    let count = buf.get_u32() as usize;
    // A why event costs at least 4 node + 2 principal-length + 1
    // direction + 4 channel-count bytes.
    let mut events = Vec::with_capacity(count.min(buf.remaining() / 11 + 1));
    for _ in 0..count {
        events.push(get_why_event(buf)?);
    }
    Ok(events)
}

fn put_engine_stats(buf: &mut BytesMut, stats: &EngineStats) {
    // Exhaustive destructuring (no `..`): adding a field to `EngineStats`
    // without threading it through the wire is a compile error here —
    // this codec already forgot `snapshots_published`/`snapshot_lag` once.
    let EngineStats {
        requests,
        ingested,
        vets_passed,
        vets_failed,
        index_hits,
        memo_hits,
        ingest_batches,
        busy_rejections,
        queue_depth,
        snapshots_published,
        snapshot_lag,
        watermark,
    } = *stats;
    for field in [
        requests,
        ingested,
        vets_passed,
        vets_failed,
        index_hits,
        memo_hits,
        ingest_batches,
        busy_rejections,
        queue_depth,
        snapshots_published,
        snapshot_lag,
        watermark,
    ] {
        buf.put_u64(field);
    }
}

fn get_engine_stats(buf: &mut Bytes) -> Result<EngineStats, WireError> {
    need(buf, 96, "engine stats")?;
    Ok(EngineStats {
        requests: buf.get_u64(),
        ingested: buf.get_u64(),
        vets_passed: buf.get_u64(),
        vets_failed: buf.get_u64(),
        index_hits: buf.get_u64(),
        memo_hits: buf.get_u64(),
        ingest_batches: buf.get_u64(),
        busy_rejections: buf.get_u64(),
        queue_depth: buf.get_u64(),
        snapshots_published: buf.get_u64(),
        snapshot_lag: buf.get_u64(),
        watermark: buf.get_u64(),
    })
}

fn put_store_stats(buf: &mut BytesMut, stats: &StoreStats) {
    let StoreStats {
        records,
        segments,
        bytes,
    } = *stats;
    buf.put_u64(records as u64);
    buf.put_u64(segments as u64);
    buf.put_u64(bytes as u64);
}

fn get_store_stats(buf: &mut Bytes) -> Result<StoreStats, WireError> {
    need(buf, 24, "store stats")?;
    Ok(StoreStats {
        records: buf.get_u64() as usize,
        segments: buf.get_u64() as usize,
        bytes: buf.get_u64() as usize,
    })
}

fn put_interner_stats(buf: &mut BytesMut, stats: &InternerStats) {
    let InternerStats {
        interned_nodes,
        hits,
        misses,
        shards,
    } = *stats;
    buf.put_u64(interned_nodes as u64);
    buf.put_u64(hits);
    buf.put_u64(misses);
    buf.put_u64(shards as u64);
}

fn get_interner_stats(buf: &mut Bytes) -> Result<InternerStats, WireError> {
    need(buf, 32, "interner stats")?;
    Ok(InternerStats {
        interned_nodes: buf.get_u64() as usize,
        hits: buf.get_u64(),
        misses: buf.get_u64(),
        shards: buf.get_u64() as usize,
    })
}

fn put_shard_stats(buf: &mut BytesMut, stats: &ShardStats) {
    let ShardStats {
        shard,
        entries,
        hits,
        misses,
    } = *stats;
    buf.put_u64(shard as u64);
    buf.put_u64(entries as u64);
    buf.put_u64(hits);
    buf.put_u64(misses);
}

fn get_shard_stats(buf: &mut Bytes) -> Result<ShardStats, WireError> {
    need(buf, 32, "shard stats")?;
    Ok(ShardStats {
        shard: buf.get_u64() as usize,
        entries: buf.get_u64() as usize,
        hits: buf.get_u64(),
        misses: buf.get_u64(),
    })
}

fn put_memo_stats(buf: &mut BytesMut, stats: &MemoStats) {
    let MemoStats {
        entries,
        bound,
        epochs,
        hits,
        misses,
        retained,
    } = *stats;
    buf.put_u64(entries as u64);
    buf.put_u64(bound as u64);
    buf.put_u64(epochs);
    buf.put_u64(hits);
    buf.put_u64(misses);
    buf.put_u64(retained);
}

fn get_memo_stats(buf: &mut Bytes) -> Result<MemoStats, WireError> {
    need(buf, 48, "memo stats")?;
    Ok(MemoStats {
        entries: buf.get_u64() as usize,
        bound: buf.get_u64() as usize,
        epochs: buf.get_u64(),
        hits: buf.get_u64(),
        misses: buf.get_u64(),
        retained: buf.get_u64(),
    })
}

fn put_histogram(buf: &mut BytesMut, histogram: &HistogramSnapshot) {
    let HistogramSnapshot {
        counts,
        overflow,
        sum_ns,
        count,
        exemplars,
    } = histogram;
    buf.put_u32(counts.len() as u32);
    for bucket in counts {
        buf.put_u64(*bucket);
    }
    buf.put_u64(*overflow);
    buf.put_u64(*sum_ns);
    buf.put_u64(*count);
    // Version 4: per-bucket exemplar slots (empty vec encodes as zero).
    buf.put_u32(exemplars.len() as u32);
    for exemplar in exemplars {
        match exemplar {
            Some(Exemplar { trace_id, value_ns }) => {
                buf.put_u8(1);
                buf.put_u64((trace_id >> 64) as u64);
                buf.put_u64(*trace_id as u64);
                buf.put_u64(*value_ns);
            }
            None => buf.put_u8(0),
        }
    }
}

fn get_histogram(buf: &mut Bytes, version: u8) -> Result<HistogramSnapshot, WireError> {
    need(buf, 4, "histogram bucket count")?;
    let count = buf.get_u32() as usize;
    // A bucket costs 8 bytes: the pre-allocation is capped by the bytes
    // actually remaining, like every count read off the wire.
    let mut counts = Vec::with_capacity(count.min(buf.remaining() / 8 + 1));
    for _ in 0..count {
        need(buf, 8, "histogram bucket")?;
        counts.push(buf.get_u64());
    }
    need(buf, 24, "histogram tail")?;
    let overflow = buf.get_u64();
    let sum_ns = buf.get_u64();
    let count = buf.get_u64();
    // A version-3 peer sends no exemplar block at all.
    let mut exemplars = Vec::new();
    if version >= 4 {
        need(buf, 4, "exemplar count")?;
        let count = buf.get_u32() as usize;
        // An exemplar slot costs at least its presence byte.
        exemplars.reserve(count.min(buf.remaining() + 1));
        for _ in 0..count {
            need(buf, 1, "exemplar flag")?;
            exemplars.push(match buf.get_u8() {
                0 => None,
                1 => {
                    need(buf, 24, "exemplar")?;
                    let hi = buf.get_u64();
                    let lo = buf.get_u64();
                    Some(Exemplar {
                        trace_id: ((hi as u128) << 64) | lo as u128,
                        value_ns: buf.get_u64(),
                    })
                }
                other => return Err(malformed(format!("bad exemplar flag {}", other))),
            });
        }
    }
    Ok(HistogramSnapshot {
        counts,
        overflow,
        sum_ns,
        count,
        exemplars,
    })
}

fn put_policy_snapshot(buf: &mut BytesMut, policy: &PolicySnapshot) {
    let PolicySnapshot {
        policy: name,
        memo,
        vets_passed,
        vets_failed,
        vets_unknown_value,
        counterfactuals,
        counterfactual_flips,
        latency,
    } = policy;
    put_str(buf, name);
    put_memo_stats(buf, memo);
    buf.put_u64(*vets_passed);
    buf.put_u64(*vets_failed);
    buf.put_u64(*vets_unknown_value);
    // Version 6: the counterfactual counters.
    buf.put_u64(*counterfactuals);
    buf.put_u64(*counterfactual_flips);
    put_histogram(buf, latency);
}

fn get_policy_snapshot(buf: &mut Bytes, version: u8) -> Result<PolicySnapshot, WireError> {
    let name = wire_str(buf)?;
    let memo = get_memo_stats(buf)?;
    need(buf, 24, "policy verdict counters")?;
    let vets_passed = buf.get_u64();
    let vets_failed = buf.get_u64();
    let vets_unknown_value = buf.get_u64();
    // A pre-v6 peer omits the counterfactual counters: decode as 0.
    let (counterfactuals, counterfactual_flips) = if version >= 6 {
        need(buf, 16, "policy counterfactual counters")?;
        (buf.get_u64(), buf.get_u64())
    } else {
        (0, 0)
    };
    Ok(PolicySnapshot {
        policy: name,
        memo,
        vets_passed,
        vets_failed,
        vets_unknown_value,
        counterfactuals,
        counterfactual_flips,
        latency: get_histogram(buf, version)?,
    })
}

fn put_metrics_snapshot(buf: &mut BytesMut, metrics: &MetricsSnapshot) {
    let MetricsSnapshot {
        engine,
        store,
        interner,
        interner_shards,
        vets_unknown_pattern,
        frame_decode,
        request_service,
        ingest_queue_wait,
        uptime_seconds,
        connections_accepted,
        connections_closed,
        open_connections,
        policies,
    } = metrics;
    put_engine_stats(buf, engine);
    put_store_stats(buf, store);
    put_interner_stats(buf, interner);
    buf.put_u32(interner_shards.len() as u32);
    for shard in interner_shards {
        put_shard_stats(buf, shard);
    }
    buf.put_u64(*vets_unknown_pattern);
    put_histogram(buf, frame_decode);
    put_histogram(buf, request_service);
    put_histogram(buf, ingest_queue_wait);
    // Version 4: uptime + connection lifecycle.
    buf.put_u64(*uptime_seconds);
    buf.put_u64(*connections_accepted);
    buf.put_u64(*connections_closed);
    buf.put_u64(*open_connections);
    buf.put_u32(policies.len() as u32);
    for policy in policies {
        put_policy_snapshot(buf, policy);
    }
}

fn get_metrics_snapshot(buf: &mut Bytes, version: u8) -> Result<MetricsSnapshot, WireError> {
    let engine = get_engine_stats(buf)?;
    let store = get_store_stats(buf)?;
    let interner = get_interner_stats(buf)?;
    need(buf, 4, "shard count")?;
    let count = buf.get_u32() as usize;
    // A shard costs 32 bytes on the wire.
    let mut interner_shards = Vec::with_capacity(count.min(buf.remaining() / 32 + 1));
    for _ in 0..count {
        interner_shards.push(get_shard_stats(buf)?);
    }
    need(buf, 8, "unknown-pattern counter")?;
    let vets_unknown_pattern = buf.get_u64();
    let frame_decode = get_histogram(buf, version)?;
    let request_service = get_histogram(buf, version)?;
    let ingest_queue_wait = get_histogram(buf, version)?;
    // A version-3 peer sends no serving-lifecycle block: render as zeros.
    let (uptime_seconds, connections_accepted, connections_closed, open_connections) =
        if version >= 4 {
            need(buf, 32, "serving lifecycle counters")?;
            (buf.get_u64(), buf.get_u64(), buf.get_u64(), buf.get_u64())
        } else {
            (0, 0, 0, 0)
        };
    need(buf, 4, "policy count")?;
    let count = buf.get_u32() as usize;
    // A policy costs at least its 2 name-length bytes + 48 memo bytes.
    let mut policies = Vec::with_capacity(count.min(buf.remaining() / 50 + 1));
    for _ in 0..count {
        policies.push(get_policy_snapshot(buf, version)?);
    }
    Ok(MetricsSnapshot {
        engine,
        store,
        interner,
        interner_shards,
        vets_unknown_pattern,
        frame_decode,
        request_service,
        ingest_queue_wait,
        uptime_seconds,
        connections_accepted,
        connections_closed,
        open_connections,
        policies,
    })
}

fn put_trace_record(buf: &mut BytesMut, record: &TraceRecord) {
    let TraceRecord {
        trace_id,
        kind,
        total_ns,
        spans,
    } = record;
    buf.put_u64((trace_id >> 64) as u64);
    buf.put_u64(*trace_id as u64);
    buf.put_u8(*kind as u8);
    buf.put_u64(*total_ns);
    buf.put_u8(spans.len() as u8);
    for span in spans {
        let Span {
            kind,
            duration_ns,
            index_hits,
            memo_hits,
        } = span;
        buf.put_u8(*kind as u8);
        buf.put_u64(*duration_ns);
        buf.put_u64(*index_hits);
        buf.put_u64(*memo_hits);
    }
}

fn get_trace_record(buf: &mut Bytes) -> Result<TraceRecord, WireError> {
    need(buf, 26, "trace record head")?;
    let hi = buf.get_u64();
    let lo = buf.get_u64();
    let kind = buf.get_u8();
    let kind =
        RequestKind::from_u8(kind).ok_or_else(|| malformed(format!("bad trace kind {}", kind)))?;
    let total_ns = buf.get_u64();
    let span_count = buf.get_u8() as usize;
    let mut spans = Vec::with_capacity(span_count.min(buf.remaining() / 25 + 1));
    for _ in 0..span_count {
        need(buf, 25, "trace span")?;
        let kind = buf.get_u8();
        let kind =
            SpanKind::from_u8(kind).ok_or_else(|| malformed(format!("bad span kind {}", kind)))?;
        spans.push(Span {
            kind,
            duration_ns: buf.get_u64(),
            index_hits: buf.get_u64(),
            memo_hits: buf.get_u64(),
        });
    }
    Ok(TraceRecord {
        trace_id: ((hi as u128) << 64) | lo as u128,
        kind,
        total_ns,
        spans,
    })
}

/// Encodes one response body (to be framed by
/// [`crate::wire::write_frame`]).
pub fn encode_response(response: &WireResponse) -> Bytes {
    match response {
        WireResponse::Audit(audit) => finish_message(RESP_AUDIT, |buf| {
            match &audit.outcome {
                AuditOutcome::Vetted { verdict, sequence } => {
                    buf.put_u8(OUTCOME_VETTED);
                    buf.put_u8(*verdict as u8);
                    buf.put_u64(*sequence);
                }
                AuditOutcome::Trail(trail) => {
                    buf.put_u8(OUTCOME_TRAIL);
                    put_value(buf, &trail.value);
                    put_records(buf, &trail.records);
                    put_names(
                        buf,
                        &trail
                            .principals
                            .iter()
                            .map(|p| p.as_str())
                            .collect::<Vec<_>>(),
                    );
                    put_names(
                        buf,
                        &trail
                            .channels
                            .iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>(),
                    );
                }
                AuditOutcome::Touched { records, values } => {
                    buf.put_u8(OUTCOME_TOUCHED);
                    buf.put_u32(records.len() as u32);
                    for seq in records {
                        buf.put_u64(*seq);
                    }
                    buf.put_u32(values.len() as u32);
                    for value in values {
                        put_value(buf, value);
                    }
                }
                AuditOutcome::Origin { principal } => {
                    buf.put_u8(OUTCOME_ORIGIN);
                    match principal {
                        Some(p) => {
                            buf.put_u8(1);
                            put_str(buf, p.as_str());
                        }
                        None => buf.put_u8(0),
                    }
                }
                AuditOutcome::Why(slice) => {
                    buf.put_u8(OUTCOME_WHY);
                    // Version 6: the witness slice.
                    buf.put_u8(slice.verdict as u8);
                    buf.put_u64(slice.sequence);
                    match slice.blocked {
                        Some(index) => {
                            buf.put_u8(1);
                            buf.put_u32(index);
                        }
                        None => buf.put_u8(0),
                    }
                    put_why_events(buf, &slice.events);
                }
                AuditOutcome::Counterfactual(verdict) => {
                    buf.put_u8(OUTCOME_COUNTERFACTUAL);
                    // Version 6: both verdicts plus the delta slice.
                    buf.put_u8(verdict.original as u8);
                    buf.put_u8(verdict.counterfactual as u8);
                    buf.put_u64(verdict.sequence);
                    put_why_events(buf, &verdict.removed);
                }
                AuditOutcome::UnknownValue => buf.put_u8(OUTCOME_UNKNOWN_VALUE),
                AuditOutcome::UnknownPattern { known, nearest } => {
                    buf.put_u8(OUTCOME_UNKNOWN_PATTERN);
                    // Version 5: the registered names and the
                    // nearest-name hint (a v3/v4 decoder reads neither).
                    put_names(buf, known);
                    match nearest {
                        Some(name) => {
                            buf.put_u8(1);
                            put_str(buf, name);
                        }
                        None => buf.put_u8(0),
                    }
                }
            }
            put_request_stats(buf, &audit.stats);
            buf.put_u64(audit.watermark);
            // Version 5: the policy-set version that answered.
            buf.put_u64(audit.pack_version);
        }),
        WireResponse::IngestAck {
            accepted,
            queue_depth,
        } => finish_message(RESP_ACK, |buf| {
            buf.put_u32(*accepted);
            buf.put_u32(*queue_depth);
        }),
        WireResponse::Busy { queue_depth } => finish_message(RESP_BUSY, |buf| {
            buf.put_u32(*queue_depth);
        }),
        WireResponse::Flushed {
            ingested,
            watermark,
        } => finish_message(RESP_FLUSHED, |buf| {
            buf.put_u64(*ingested);
            buf.put_u64(*watermark);
        }),
        WireResponse::Stats(stats) => finish_message(RESP_STATS, |buf| {
            put_engine_stats(buf, stats);
        }),
        WireResponse::Metrics(metrics) => finish_message(RESP_METRICS, |buf| {
            put_metrics_snapshot(buf, metrics);
        }),
        WireResponse::Traces(records) => finish_message(RESP_TRACES, |buf| {
            buf.put_u32(records.len() as u32);
            for record in records {
                put_trace_record(buf, record);
            }
        }),
        WireResponse::PackLoaded {
            version,
            installed,
            reused,
        } => finish_message(RESP_PACK_LOADED, |buf| {
            buf.put_u64(*version);
            buf.put_u32(*installed);
            buf.put_u32(*reused);
        }),
        WireResponse::PackRejected { diagnostics } => finish_message(RESP_PACK_REJECTED, |buf| {
            buf.put_u32(diagnostics.len() as u32);
            for diag in diagnostics {
                put_str(buf, &diag.path);
                buf.put_u64(diag.line as u64);
                buf.put_u64(diag.column as u64);
                put_str(buf, &diag.message);
            }
        }),
        WireResponse::Policies(listing) => finish_message(RESP_POLICIES, |buf| {
            buf.put_u64(listing.version);
            buf.put_u32(listing.policies.len() as u32);
            for policy in &listing.policies {
                put_str(buf, &policy.name);
                put_str(buf, &policy.package);
                put_text(buf, &policy.source);
            }
        }),
        WireResponse::ServerError { message } => finish_message(RESP_ERROR, |buf| {
            put_str(buf, message);
        }),
    }
}

/// Decodes one response body.
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_response(mut buf: Bytes, limits: &WireLimits) -> Result<WireResponse, WireError> {
    let (version, tag) = open_message(&mut buf)?;
    let response = match tag {
        RESP_AUDIT => {
            need(&buf, 1, "audit outcome tag")?;
            let outcome = match buf.get_u8() {
                OUTCOME_VETTED => {
                    need(&buf, 9, "vet outcome")?;
                    let verdict = match buf.get_u8() {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(malformed(format!("bad verdict byte {}", other)));
                        }
                    };
                    AuditOutcome::Vetted {
                        verdict,
                        sequence: buf.get_u64(),
                    }
                }
                OUTCOME_TRAIL => {
                    let value = wire_value(&mut buf)?;
                    let records = get_records(&mut buf, limits, "audit trail")?;
                    let principals = get_names(&mut buf)?
                        .into_iter()
                        .map(Principal::new)
                        .collect();
                    let channels = get_names(&mut buf)?.into_iter().map(Channel::new).collect();
                    AuditOutcome::Trail(AuditTrail {
                        value,
                        records,
                        principals,
                        channels,
                    })
                }
                OUTCOME_TOUCHED => {
                    need(&buf, 4, "touched record count")?;
                    let count = buf.get_u32() as usize;
                    let mut records = Vec::with_capacity(count.min(buf.remaining() / 8 + 1));
                    for _ in 0..count {
                        need(&buf, 8, "touched sequence")?;
                        records.push(buf.get_u64());
                    }
                    need(&buf, 4, "touched value count")?;
                    let count = buf.get_u32() as usize;
                    let mut values = Vec::with_capacity(count.min(buf.remaining() / 3 + 1));
                    for _ in 0..count {
                        values.push(wire_value(&mut buf)?);
                    }
                    AuditOutcome::Touched { records, values }
                }
                OUTCOME_ORIGIN => {
                    need(&buf, 1, "origin flag")?;
                    let principal = match buf.get_u8() {
                        0 => None,
                        1 => Some(Principal::new(wire_str(&mut buf)?)),
                        other => return Err(malformed(format!("bad origin flag {}", other))),
                    };
                    AuditOutcome::Origin { principal }
                }
                OUTCOME_UNKNOWN_VALUE => AuditOutcome::UnknownValue,
                // The causal outcomes are version-6 vocabulary.
                OUTCOME_WHY if version >= 6 => {
                    need(&buf, 9, "why slice header")?;
                    let verdict = match buf.get_u8() {
                        0 => false,
                        1 => true,
                        other => return Err(malformed(format!("bad why verdict {}", other))),
                    };
                    let sequence = buf.get_u64();
                    need(&buf, 1, "why blocked flag")?;
                    let blocked = match buf.get_u8() {
                        0 => None,
                        1 => {
                            need(&buf, 4, "why blocked index")?;
                            Some(buf.get_u32())
                        }
                        other => return Err(malformed(format!("bad why blocked flag {}", other))),
                    };
                    let events = get_why_events(&mut buf)?;
                    if let Some(index) = blocked {
                        if index as usize >= events.len() {
                            return Err(malformed("why blocked index out of range"));
                        }
                    }
                    AuditOutcome::Why(WhySlice {
                        verdict,
                        sequence,
                        events,
                        blocked,
                    })
                }
                OUTCOME_COUNTERFACTUAL if version >= 6 => {
                    need(&buf, 10, "counterfactual header")?;
                    let flag = |byte: u8, what: &str| match byte {
                        0 => Ok(false),
                        1 => Ok(true),
                        other => Err(malformed(format!("bad {} flag {}", what, other))),
                    };
                    let original = flag(buf.get_u8(), "counterfactual original")?;
                    let counterfactual = flag(buf.get_u8(), "counterfactual filtered")?;
                    let sequence = buf.get_u64();
                    let removed = get_why_events(&mut buf)?;
                    AuditOutcome::Counterfactual(CounterfactualVerdict {
                        original,
                        counterfactual,
                        sequence,
                        removed,
                    })
                }
                OUTCOME_UNKNOWN_PATTERN => {
                    // A pre-v5 peer sends no payload: decode to empty.
                    if version >= 5 {
                        let known = get_names(&mut buf)?;
                        need(&buf, 1, "nearest-name flag")?;
                        let nearest = match buf.get_u8() {
                            0 => None,
                            1 => Some(wire_str(&mut buf)?),
                            other => {
                                return Err(malformed(format!("bad nearest-name flag {}", other)))
                            }
                        };
                        AuditOutcome::UnknownPattern { known, nearest }
                    } else {
                        AuditOutcome::UnknownPattern {
                            known: Vec::new(),
                            nearest: None,
                        }
                    }
                }
                other => return Err(malformed(format!("unknown audit outcome tag {}", other))),
            };
            let stats = get_request_stats(&mut buf, version)?;
            need(&buf, 8, "response watermark")?;
            let watermark = buf.get_u64();
            // A pre-v5 peer omits the pack version: decode as 0.
            let pack_version = if version >= 5 {
                need(&buf, 8, "response pack version")?;
                buf.get_u64()
            } else {
                0
            };
            WireResponse::Audit(AuditResponse {
                outcome,
                stats,
                watermark,
                pack_version,
            })
        }
        RESP_ACK => {
            need(&buf, 8, "ingest ack")?;
            WireResponse::IngestAck {
                accepted: buf.get_u32(),
                queue_depth: buf.get_u32(),
            }
        }
        RESP_BUSY => {
            need(&buf, 4, "busy response")?;
            WireResponse::Busy {
                queue_depth: buf.get_u32(),
            }
        }
        RESP_FLUSHED => {
            need(&buf, 16, "flushed response")?;
            WireResponse::Flushed {
                ingested: buf.get_u64(),
                watermark: buf.get_u64(),
            }
        }
        RESP_STATS => WireResponse::Stats(get_engine_stats(&mut buf)?),
        RESP_METRICS => WireResponse::Metrics(Box::new(get_metrics_snapshot(&mut buf, version)?)),
        RESP_TRACES => {
            need(&buf, 4, "trace count")?;
            let count = buf.get_u32() as usize;
            // A trace record costs at least its 26 header bytes.
            let mut records = Vec::with_capacity(count.min(buf.remaining() / 26 + 1));
            for _ in 0..count {
                records.push(get_trace_record(&mut buf)?);
            }
            WireResponse::Traces(records)
        }
        RESP_ERROR => WireResponse::ServerError {
            message: wire_str(&mut buf)?,
        },
        RESP_PACK_LOADED if version >= 5 => {
            need(&buf, 16, "pack loaded response")?;
            WireResponse::PackLoaded {
                version: buf.get_u64(),
                installed: buf.get_u32(),
                reused: buf.get_u32(),
            }
        }
        RESP_PACK_REJECTED if version >= 5 => {
            need(&buf, 4, "diagnostic count")?;
            let count = buf.get_u32() as usize;
            // A diagnostic costs at least its two 2-byte string lengths
            // plus 16 position bytes.
            let mut diagnostics = Vec::with_capacity(count.min(buf.remaining() / 20 + 1));
            for _ in 0..count {
                let path = wire_str(&mut buf)?;
                need(&buf, 16, "diagnostic position")?;
                let line = buf.get_u64() as usize;
                let column = buf.get_u64() as usize;
                let message = wire_str(&mut buf)?;
                diagnostics.push(PackDiagnostic::new(path, line, column, message));
            }
            WireResponse::PackRejected { diagnostics }
        }
        RESP_POLICIES if version >= 5 => {
            need(&buf, 12, "policy listing head")?;
            let pack_version = buf.get_u64();
            let count = buf.get_u32() as usize;
            // A policy costs at least its two 2-byte string lengths plus
            // a 4-byte source length.
            let mut policies = Vec::with_capacity(count.min(buf.remaining() / 8 + 1));
            for _ in 0..count {
                policies.push(PolicyInfo {
                    name: wire_str(&mut buf)?,
                    package: wire_str(&mut buf)?,
                    source: get_text(&mut buf)?,
                });
            }
            WireResponse::Policies(PolicyListing {
                version: pack_version,
                policies,
            })
        }
        other => return Err(malformed(format!("unknown response tag {}", other))),
    };
    if buf.has_remaining() {
        return Err(malformed("trailing bytes after response"));
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::provenance::{Event, Provenance};
    use piprov_core::value::Value;
    use piprov_store::Operation;

    fn record(i: u64) -> ProvenanceRecord {
        let who = Principal::new(format!("p{}", i));
        let k = Provenance::single(Event::output(who.clone(), Provenance::empty()));
        ProvenanceRecord::new(
            i,
            who,
            Operation::Send,
            "m",
            Value::Channel(Channel::new(format!("v{}", i))),
            k,
        )
    }

    #[test]
    fn requests_round_trip() {
        let limits = WireLimits::default();
        let requests = vec![
            WireRequest::Audit(AuditRequest::VetValue {
                value: Value::Channel(Channel::new("v")),
                pattern: "from-a".into(),
            }),
            WireRequest::Audit(AuditRequest::AuditTrail {
                value: Value::Principal(Principal::new("b")),
            }),
            WireRequest::Audit(AuditRequest::WhoTouched {
                principal: Principal::new("s"),
            }),
            WireRequest::Audit(AuditRequest::OriginOf {
                value: Value::Channel(Channel::new("x")),
            }),
            WireRequest::IngestBatch(vec![record(1), record(2)]),
            WireRequest::IngestBatch(Vec::new()),
            WireRequest::Flush,
            WireRequest::Stats,
            WireRequest::Metrics,
            WireRequest::LoadPack(PackSource::new(
                "supply_chain",
                vec![
                    PackFile::new("build.ppol", "policy vendor_only = v!Any; Any\n"),
                    PackFile::new(
                        "ship.ppol",
                        "use supply_chain::build::vendor_only\npolicy gate = @vendor_only | eps\n",
                    ),
                ],
            )),
            WireRequest::LoadPack(PackSource::new("empty", Vec::new())),
            WireRequest::ListPolicies,
        ];
        for request in requests {
            let decoded = decode_request(encode_request(&request), &limits).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn metrics_snapshots_round_trip() {
        let limits = WireLimits::default();
        let metrics = MetricsSnapshot {
            engine: EngineStats {
                requests: 7,
                ingested: 100,
                vets_passed: 5,
                vets_failed: 2,
                index_hits: 40,
                memo_hits: 3,
                ingest_batches: 9,
                busy_rejections: 1,
                queue_depth: 2,
                snapshots_published: 9,
                snapshot_lag: 3,
                watermark: 100,
            },
            store: StoreStats {
                records: 100,
                segments: 2,
                bytes: 12_345,
            },
            interner: InternerStats {
                interned_nodes: 50,
                hits: 200,
                misses: 50,
                shards: 2,
            },
            interner_shards: vec![
                ShardStats {
                    shard: 0,
                    entries: 30,
                    hits: 120,
                    misses: 30,
                },
                ShardStats {
                    shard: 1,
                    entries: 20,
                    hits: 80,
                    misses: 20,
                },
            ],
            vets_unknown_pattern: 4,
            frame_decode: HistogramSnapshot {
                counts: vec![2; piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len()],
                overflow: 1,
                sum_ns: 777,
                count: 33,
                exemplars: {
                    // One populated bucket exemplar plus an overflow
                    // exemplar, to exercise the flag-gated wire form.
                    let mut exemplars: Vec<Option<Exemplar>> =
                        vec![None; piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len() + 1];
                    exemplars[3] = Some(Exemplar {
                        trace_id: 0xfeed_beef_0123,
                        value_ns: 4_096,
                    });
                    exemplars[piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len()] = Some(Exemplar {
                        trace_id: u128::MAX,
                        value_ns: u64::MAX,
                    });
                    exemplars
                },
            },
            request_service: HistogramSnapshot {
                counts: vec![0; piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len()],
                overflow: 9,
                sum_ns: 888,
                count: 9,
                exemplars: Vec::new(),
            },
            ingest_queue_wait: HistogramSnapshot::default(),
            uptime_seconds: 3_601,
            connections_accepted: 12,
            connections_closed: 9,
            open_connections: 3,
            policies: vec![PolicySnapshot {
                policy: "chain-only".into(),
                memo: MemoStats {
                    entries: 10,
                    bound: 4096,
                    epochs: 0,
                    hits: 6,
                    misses: 10,
                    retained: 0,
                },
                vets_passed: 5,
                vets_failed: 2,
                vets_unknown_value: 1,
                counterfactuals: 7,
                counterfactual_flips: 3,
                latency: HistogramSnapshot {
                    counts: vec![1; piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len()],
                    overflow: 0,
                    sum_ns: 123_456,
                    count: 16,
                    exemplars: Vec::new(),
                },
            }],
        };
        let response = WireResponse::Metrics(Box::new(metrics));
        let decoded = decode_response(encode_response(&response), &limits).unwrap();
        assert_eq!(decoded, response);
        // An empty registry round-trips too.
        let empty = WireResponse::Metrics(Box::new(MetricsSnapshot {
            engine: EngineStats::default(),
            store: StoreStats::default(),
            interner: InternerStats {
                interned_nodes: 0,
                hits: 0,
                misses: 0,
                shards: 0,
            },
            interner_shards: Vec::new(),
            vets_unknown_pattern: 0,
            frame_decode: HistogramSnapshot::default(),
            request_service: HistogramSnapshot::default(),
            ingest_queue_wait: HistogramSnapshot::default(),
            uptime_seconds: 0,
            connections_accepted: 0,
            connections_closed: 0,
            open_connections: 0,
            policies: Vec::new(),
        }));
        let decoded = decode_response(encode_response(&empty), &limits).unwrap();
        assert_eq!(decoded, empty);
    }

    #[test]
    fn truncated_metrics_frames_are_typed_errors_not_panics() {
        let limits = WireLimits::default();
        let response = WireResponse::Metrics(Box::new(MetricsSnapshot {
            engine: EngineStats::default(),
            store: StoreStats::default(),
            interner: InternerStats {
                interned_nodes: 1,
                hits: 2,
                misses: 1,
                shards: 1,
            },
            interner_shards: vec![ShardStats {
                shard: 0,
                entries: 1,
                hits: 2,
                misses: 1,
            }],
            vets_unknown_pattern: 0,
            frame_decode: HistogramSnapshot::default(),
            request_service: HistogramSnapshot::default(),
            ingest_queue_wait: HistogramSnapshot::default(),
            uptime_seconds: 1,
            connections_accepted: 1,
            connections_closed: 0,
            open_connections: 1,
            policies: Vec::new(),
        }));
        let body = encode_response(&response).to_vec();
        for len in 0..body.len() {
            let err = decode_response(Bytes::from(body[..len].to_vec()), &limits);
            assert!(err.is_err(), "prefix of {} bytes decoded", len);
        }
    }

    #[test]
    fn over_cap_batches_are_rejected_before_decoding_records() {
        let limits = WireLimits {
            max_records: 2,
            ..WireLimits::default()
        };
        let request = WireRequest::IngestBatch(vec![record(1), record(2), record(3)]);
        let err = decode_request(encode_request(&request), &limits).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{:?}", err);
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn version_and_tag_errors_are_typed() {
        let limits = WireLimits::default();
        let mut body = encode_request(&WireRequest::Flush).to_vec();
        body[0] = 9;
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::UnsupportedVersion(9))
        ));
        let mut body = encode_request(&WireRequest::Flush).to_vec();
        body[1] = 99;
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_response(Bytes::from(vec![WIRE_VERSION]), &limits),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let limits = WireLimits::default();
        let mut body = encode_request(&WireRequest::Stats).to_vec();
        body.push(0);
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn traced_requests_round_trip_with_their_context() {
        let limits = WireLimits::default();
        let requests = vec![
            WireRequest::Audit(AuditRequest::VetValue {
                value: Value::Channel(Channel::new("v")),
                pattern: "from-a".into(),
            }),
            WireRequest::IngestBatch(vec![record(1)]),
            WireRequest::Flush,
            WireRequest::Stats,
            WireRequest::Metrics,
            WireRequest::Traces { min_total_ns: 0 },
        ];
        for sampled in [true, false] {
            let trace = RequestTrace {
                context: TraceContext {
                    trace_id: 0xdead_beef_cafe_0042_u128 << 32 | 7,
                    sampled,
                },
                client_encode_ns: 1_234,
            };
            for request in &requests {
                let body = encode_request_traced(request, Some(&trace));
                let (decoded, decoded_trace) = decode_request_traced(body, &limits).unwrap();
                assert_eq!(&decoded, request);
                assert_eq!(decoded_trace, Some(trace));
            }
        }
        // Untraced bodies decode with no context at all.
        let (_, none) =
            decode_request_traced(encode_request(&WireRequest::Stats), &limits).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn the_traces_request_and_response_round_trip() {
        let limits = WireLimits::default();
        let request = WireRequest::Traces {
            min_total_ns: 5_000,
        };
        assert_eq!(
            decode_request(encode_request(&request), &limits).unwrap(),
            request
        );
        let response = WireResponse::Traces(vec![
            TraceRecord {
                trace_id: u128::MAX,
                kind: RequestKind::Vet,
                total_ns: 98_765,
                spans: vec![
                    Span::new(SpanKind::ClientEncode, 120),
                    Span::new(SpanKind::Decode, 340),
                    Span {
                        kind: SpanKind::Handle,
                        duration_ns: 56_000,
                        index_hits: 12,
                        memo_hits: 3,
                    },
                    Span::new(SpanKind::Write, 89),
                ],
            },
            TraceRecord {
                trace_id: 1,
                kind: RequestKind::Ingest,
                total_ns: 0,
                spans: vec![Span::new(SpanKind::QueueWait, 77)],
            },
        ]);
        let decoded = decode_response(encode_response(&response), &limits).unwrap();
        assert_eq!(decoded, response);
        let empty = WireResponse::Traces(Vec::new());
        let decoded = decode_response(encode_response(&empty), &limits).unwrap();
        assert_eq!(decoded, empty);
    }

    #[test]
    fn bad_trace_bytes_are_typed_errors_not_panics() {
        let limits = WireLimits::default();
        // A sampled flag that is neither 0 nor 1.
        let trace = RequestTrace {
            context: TraceContext {
                trace_id: 9,
                sampled: true,
            },
            client_encode_ns: 5,
        };
        let body = encode_request_traced(&WireRequest::Stats, Some(&trace)).to_vec();
        let flag_at = body.len() - 9; // u64 encode-ns follows the flag
        let mut bad = body.clone();
        bad[flag_at] = 7;
        assert!(matches!(
            decode_request_traced(Bytes::from(bad), &limits),
            Err(WireError::Malformed(_))
        ));
        // Every truncation inside the trace field is an error; the cut
        // exactly at the untraced payload boundary decodes as untraced.
        let base_len = encode_request(&WireRequest::Stats).len();
        for len in (base_len + 1)..body.len() {
            assert!(
                decode_request_traced(Bytes::from(body[..len].to_vec()), &limits).is_err(),
                "prefix of {} bytes decoded",
                len
            );
        }
        // A traces response with an unknown record or span kind.
        let response = WireResponse::Traces(vec![TraceRecord {
            trace_id: 2,
            kind: RequestKind::Vet,
            total_ns: 10,
            spans: vec![Span::new(SpanKind::Decode, 4)],
        }]);
        let encoded = encode_response(&response).to_vec();
        // version u8 | tag u8 | count u32 | id hi+lo u64s | kind ...
        let record_kind_at = 2 + 4 + 16;
        let mut bad = encoded.clone();
        bad[record_kind_at] = 99;
        assert!(matches!(
            decode_response(Bytes::from(bad), &limits),
            Err(WireError::Malformed(_))
        ));
        let span_kind_at = record_kind_at + 1 + 8 + 1;
        let mut bad = encoded.clone();
        bad[span_kind_at] = 99;
        assert!(matches!(
            decode_response(Bytes::from(bad), &limits),
            Err(WireError::Malformed(_))
        ));
        // And truncations never panic.
        for len in 0..encoded.len() {
            assert!(decode_response(Bytes::from(encoded[..len].to_vec()), &limits).is_err());
        }
    }

    #[test]
    fn policy_plane_responses_round_trip() {
        let limits = WireLimits::default();
        let responses = vec![
            WireResponse::PackLoaded {
                version: 7,
                installed: 12,
                reused: 9,
            },
            WireResponse::PackRejected {
                diagnostics: vec![
                    PackDiagnostic::new("build.ppol", 3, 14, "expected `=` after the policy name"),
                    PackDiagnostic::new(
                        "ship.ppol",
                        1,
                        5,
                        "unknown policy `@vendor_onyl` (did you mean `vendor_only`?)",
                    ),
                ],
            },
            WireResponse::PackRejected {
                diagnostics: Vec::new(),
            },
            WireResponse::Policies(PolicyListing {
                version: 7,
                policies: vec![
                    PolicyInfo {
                        name: "supply_chain::build::vendor_only".into(),
                        package: "supply_chain::build".into(),
                        source: "v!Any; Any".into(),
                    },
                    PolicyInfo {
                        name: "supply_chain::ship::gate".into(),
                        package: "supply_chain::ship".into(),
                        source: "(v!Any; Any) | eps".into(),
                    },
                ],
            }),
            WireResponse::Policies(PolicyListing::default()),
        ];
        for response in responses {
            let decoded = decode_response(encode_response(&response), &limits).unwrap();
            assert_eq!(decoded, response);
            // And every truncation is a typed error, never a panic.
            let body = encode_response(&response).to_vec();
            for len in 0..body.len() {
                assert!(
                    decode_response(Bytes::from(body[..len].to_vec()), &limits).is_err(),
                    "prefix of {} bytes decoded",
                    len
                );
            }
        }
    }

    #[test]
    fn audit_responses_carry_pack_version_and_unknown_pattern_payload() {
        let limits = WireLimits::default();
        let response = WireResponse::Audit(AuditResponse {
            outcome: AuditOutcome::UnknownPattern {
                known: vec!["a".into(), "b".into()],
                nearest: Some("b".into()),
            },
            stats: RequestStats::default(),
            watermark: 41,
            pack_version: 6,
        });
        let decoded = decode_response(encode_response(&response), &limits).unwrap();
        assert_eq!(decoded, response);
        let no_hint = WireResponse::Audit(AuditResponse {
            outcome: AuditOutcome::UnknownPattern {
                known: Vec::new(),
                nearest: None,
            },
            stats: RequestStats::default(),
            watermark: 41,
            pack_version: 6,
        });
        let decoded = decode_response(encode_response(&no_hint), &limits).unwrap();
        assert_eq!(decoded, no_hint);
    }

    #[test]
    fn version_4_bodies_still_decode_without_the_v5_extensions() {
        let limits = WireLimits::default();
        // A v4 peer's audit response: no pack version after the
        // watermark, no payload on an unknown-pattern outcome.  Build the
        // body by hand — our encoder always speaks v5.
        let mut body = BytesMut::new();
        body.put_u8(4);
        body.put_u8(RESP_AUDIT);
        body.put_u8(OUTCOME_UNKNOWN_PATTERN);
        // Pre-v6 stats: three u64 counters, no memo_reused.
        body.put_u64(0);
        body.put_u64(0);
        body.put_u64(0);
        body.put_u64(17); // watermark
        let decoded = decode_response(body.freeze(), &limits).unwrap();
        assert_eq!(
            decoded,
            WireResponse::Audit(AuditResponse {
                outcome: AuditOutcome::UnknownPattern {
                    known: Vec::new(),
                    nearest: None,
                },
                stats: RequestStats::default(),
                watermark: 17,
                pack_version: 0,
            })
        );
        // A v5 body re-marked v4 has trailing bytes (the pack version):
        // rejected, not misread.
        let mut remarked = encode_response(&WireResponse::Audit(AuditResponse {
            outcome: AuditOutcome::UnknownValue,
            stats: RequestStats::default(),
            watermark: 1,
            pack_version: 3,
        }))
        .to_vec();
        remarked[0] = 4;
        assert!(matches!(
            decode_response(Bytes::from(remarked), &limits),
            Err(WireError::Malformed(_))
        ));
        // The policy-plane tags are v5 vocabulary: a v4 body carrying one
        // is an unknown tag, and so are the requests.
        let mut remarked = encode_response(&WireResponse::PackLoaded {
            version: 1,
            installed: 1,
            reused: 0,
        })
        .to_vec();
        remarked[0] = 4;
        assert!(matches!(
            decode_response(Bytes::from(remarked), &limits),
            Err(WireError::Malformed(_))
        ));
        let mut remarked = encode_request(&WireRequest::ListPolicies).to_vec();
        remarked[0] = 4;
        assert!(matches!(
            decode_request(Bytes::from(remarked), &limits),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn version_5_bodies_still_decode_without_the_v6_extensions() {
        let limits = WireLimits::default();
        // A v5 peer's audit response: three stats counters (no
        // memo_reused), watermark, pack version.  Build the body by hand
        // — our encoder always speaks v6.
        let mut body = BytesMut::new();
        body.put_u8(5);
        body.put_u8(RESP_AUDIT);
        body.put_u8(OUTCOME_VETTED);
        body.put_u8(1); // verdict
        body.put_u64(9); // sequence
        body.put_u64(2); // index_hits
        body.put_u64(3); // memo_hits
        body.put_u64(4); // dag_nodes_visited
        body.put_u64(17); // watermark
        body.put_u64(1); // pack version
        let decoded = decode_response(body.freeze(), &limits).unwrap();
        assert_eq!(
            decoded,
            WireResponse::Audit(AuditResponse {
                outcome: AuditOutcome::Vetted {
                    verdict: true,
                    sequence: 9,
                },
                stats: RequestStats {
                    index_hits: 2,
                    memo_hits: 3,
                    dag_nodes_visited: 4,
                    memo_reused: 0,
                },
                watermark: 17,
                pack_version: 1,
            })
        );
        // A v6 body re-marked v5 has trailing bytes (memo_reused):
        // rejected, not misread.
        let mut remarked = encode_response(&WireResponse::Audit(AuditResponse {
            outcome: AuditOutcome::UnknownValue,
            stats: RequestStats::default(),
            watermark: 1,
            pack_version: 3,
        }))
        .to_vec();
        remarked[0] = 5;
        assert!(matches!(
            decode_response(Bytes::from(remarked), &limits),
            Err(WireError::Malformed(_))
        ));
        // The causal-query tags are v6 vocabulary: a v5 body carrying one
        // is an unknown tag, on both sides of the wire.
        let mut remarked = encode_response(&WireResponse::Audit(AuditResponse {
            outcome: AuditOutcome::Why(WhySlice {
                verdict: true,
                sequence: 1,
                events: Vec::new(),
                blocked: None,
            }),
            stats: RequestStats::default(),
            watermark: 1,
            pack_version: 1,
        }))
        .to_vec();
        remarked[0] = 5;
        assert!(matches!(
            decode_response(Bytes::from(remarked), &limits),
            Err(WireError::Malformed(_))
        ));
        let mut remarked = encode_request(&WireRequest::Audit(AuditRequest::Counterfactual {
            value: Value::Channel(Channel::new("v")),
            pattern: "p".into(),
            remove: EventFilter::Kind(Direction::Input),
        }))
        .to_vec();
        remarked[0] = 5;
        assert!(matches!(
            decode_request(Bytes::from(remarked), &limits),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn version_3_bodies_still_decode_without_the_v4_extensions() {
        let limits = WireLimits::default();
        // A v3 peer's request: same payload, older version byte, no trace
        // field.
        for request in [
            WireRequest::Flush,
            WireRequest::Stats,
            WireRequest::Audit(AuditRequest::WhoTouched {
                principal: Principal::new("s"),
            }),
        ] {
            let mut body = encode_request(&request).to_vec();
            body[0] = 3;
            let (decoded, trace) = decode_request_traced(Bytes::from(body), &limits).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(trace, None);
        }
        // The trace field is a v4 extension: a v3 body carrying one is
        // trailing garbage, not a context.
        let trace = RequestTrace {
            context: TraceContext {
                trace_id: 3,
                sampled: true,
            },
            client_encode_ns: 1,
        };
        let mut body = encode_request_traced(&WireRequest::Stats, Some(&trace)).to_vec();
        body[0] = 3;
        assert!(matches!(
            decode_request_traced(Bytes::from(body), &limits),
            Err(WireError::Malformed(_))
        ));
        // A v3 response body (no serving-lifecycle block, no exemplars).
        let response = WireResponse::Flushed {
            ingested: 4,
            watermark: 9,
        };
        let mut body = encode_response(&response).to_vec();
        body[0] = 3;
        assert_eq!(
            decode_response(Bytes::from(body), &limits).unwrap(),
            response
        );
    }
}
