//! Binary codec for the wire vocabulary: the audit crate's typed
//! [`AuditRequest`]/[`AuditResponse`] plus the ingest and control messages
//! the cross-process service adds.
//!
//! Every message body is `version u8 | tag u8 | payload`.  The payload
//! reuses the store codec's primitive vocabulary
//! ([`piprov_store::codec::put_str`] and friends) and embeds whole
//! [`ProvenanceRecord`]s in the store's DAG body format — a record crosses
//! the socket in exactly the bytes it would occupy in a segment file, so
//! sharing-heavy provenance stays O(DAG) on the wire too, and the decoder
//! rebuilds it through the interner on the receiving side.
//!
//! Decode-side discipline: every count read off the wire is either capped
//! by [`WireLimits`] (record lists) or its pre-allocation is capped by the
//! bytes actually remaining, so no hostile count can request unbounded
//! memory before the per-element bounds checks reject it.

use crate::wire::{WireError, WireLimits, WIRE_VERSION};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use piprov_audit::{
    AuditOutcome, AuditRequest, AuditResponse, EngineStats, HistogramSnapshot, MetricsSnapshot,
    PolicySnapshot, RequestStats,
};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{InternerStats, ShardStats};
use piprov_patterns::MemoStats;
use piprov_store::codec::{decode_body, encode_body, get_str, get_value, put_str, put_value};
use piprov_store::{AuditTrail, ProvenanceRecord, StoreStats};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// One typed audit question.
    Audit(AuditRequest),
    /// A batch of records for the bounded ingest queue.
    IngestBatch(Vec<ProvenanceRecord>),
    /// Barrier: drain the ingest queue and sync the store, so everything
    /// submitted before this request is queryable and durable after it.
    /// The server's wait is bounded ([`crate::ServeConfig::flush_timeout`])
    /// and never touches the queue's pause hook; a timeout answers
    /// [`WireResponse::ServerError`].
    Flush,
    /// Snapshot of the engine's lifetime counters.
    Stats,
    /// The full metrics plane: engine/store/interner counters plus every
    /// registered policy's verdict counters and latency histogram (see
    /// [`piprov_audit::MetricsSnapshot`]).
    Metrics,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Audit`].
    Audit(AuditResponse),
    /// The batch was queued.
    IngestAck {
        /// Records accepted (the whole batch; acceptance is atomic).
        accepted: u32,
        /// Ingest-queue depth after queuing, in batches.
        queue_depth: u32,
    },
    /// The bounded ingest queue was full: nothing was buffered, back off
    /// and retry.
    Busy {
        /// Queue depth at the moment of rejection.
        queue_depth: u32,
    },
    /// Answer to [`WireRequest::Flush`].
    Flushed {
        /// Records ingested over the engine's lifetime, after the drain.
        ingested: u64,
        /// The snapshot watermark published by the drain: every record
        /// submitted before the flush is visible at (or below) this
        /// sequence number, so a client can read its own writes by
        /// polling for it.
        watermark: u64,
    },
    /// Answer to [`WireRequest::Stats`].
    Stats(EngineStats),
    /// Answer to [`WireRequest::Metrics`]: the typed snapshot; the client
    /// renders the Prometheus exposition locally from it
    /// ([`piprov_audit::MetricsSnapshot::exposition`] is deterministic, so
    /// client and server render identical text).  Boxed: the snapshot is
    /// by far the largest payload, and boxing it keeps every other
    /// response variant small on the stack.
    Metrics(Box<MetricsSnapshot>),
    /// The server failed to serve an otherwise well-formed request (store
    /// error on flush, for example), or reports why it is closing the
    /// connection.
    ServerError {
        /// Human-readable cause.
        message: String,
    },
}

const REQ_AUDIT: u8 = 1;
const REQ_INGEST: u8 = 2;
const REQ_FLUSH: u8 = 3;
const REQ_STATS: u8 = 4;
// Added after version 2 shipped as an additive tag; version 3 then grew
// its response payload (the wire-level histograms), which is why the
// version byte moved — a v2 peer would misparse the larger snapshot.
const REQ_METRICS: u8 = 5;

const AUDIT_VET: u8 = 1;
const AUDIT_TRAIL: u8 = 2;
const AUDIT_TOUCHED: u8 = 3;
const AUDIT_ORIGIN: u8 = 4;

const RESP_AUDIT: u8 = 1;
const RESP_ACK: u8 = 2;
const RESP_BUSY: u8 = 3;
const RESP_FLUSHED: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_METRICS: u8 = 7;

const OUTCOME_VETTED: u8 = 1;
const OUTCOME_TRAIL: u8 = 2;
const OUTCOME_TOUCHED: u8 = 3;
const OUTCOME_ORIGIN: u8 = 4;
const OUTCOME_UNKNOWN_VALUE: u8 = 5;
const OUTCOME_UNKNOWN_PATTERN: u8 = 6;

fn malformed(what: impl Into<String>) -> WireError {
    WireError::Malformed(what.into())
}

/// Maps a store decode error (the embedded record codec) onto the wire
/// error vocabulary.
fn store_err(e: piprov_store::StoreError) -> WireError {
    malformed(format!("embedded record: {}", e))
}

fn need(buf: &Bytes, bytes: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < bytes {
        return Err(malformed(format!("truncated {}", what)));
    }
    Ok(())
}

fn wire_str(buf: &mut Bytes) -> Result<String, WireError> {
    get_str(buf).map_err(store_err)
}

fn wire_value(buf: &mut Bytes) -> Result<piprov_core::value::Value, WireError> {
    get_value(buf).map_err(store_err)
}

fn put_record(buf: &mut BytesMut, record: &ProvenanceRecord) {
    let body = encode_body(record);
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
}

fn get_record(buf: &mut Bytes) -> Result<ProvenanceRecord, WireError> {
    need(buf, 4, "record length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "record body")?;
    decode_body(buf.copy_to_bytes(len)).map_err(store_err)
}

fn put_records(buf: &mut BytesMut, records: &[ProvenanceRecord]) {
    buf.put_u32(records.len() as u32);
    for record in records {
        put_record(buf, record);
    }
}

fn get_records(
    buf: &mut Bytes,
    limits: &WireLimits,
    what: &str,
) -> Result<Vec<ProvenanceRecord>, WireError> {
    need(buf, 4, "record count")?;
    let count = buf.get_u32();
    if count > limits.max_records {
        return Err(malformed(format!(
            "{} of {} records exceeds the {} record cap",
            what, count, limits.max_records
        )));
    }
    let count = count as usize;
    // Each record costs at least 4 length bytes + the 18-byte minimum body.
    let mut records = Vec::with_capacity(count.min(buf.remaining() / 22 + 1));
    for _ in 0..count {
        records.push(get_record(buf)?);
    }
    Ok(records)
}

fn put_names<S: AsRef<str>>(buf: &mut BytesMut, names: &[S]) {
    buf.put_u32(names.len() as u32);
    for name in names {
        put_str(buf, name.as_ref());
    }
}

fn get_names(buf: &mut Bytes) -> Result<Vec<String>, WireError> {
    need(buf, 4, "name count")?;
    let count = buf.get_u32() as usize;
    // A name costs at least its 2 length bytes.
    let mut names = Vec::with_capacity(count.min(buf.remaining() / 2 + 1));
    for _ in 0..count {
        names.push(wire_str(buf)?);
    }
    Ok(names)
}

fn finish_message(tag: u8, payload: impl FnOnce(&mut BytesMut)) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(tag);
    payload(&mut buf);
    buf.freeze()
}

/// Strips and checks the version byte, returning the message tag.
fn open_message(buf: &mut Bytes) -> Result<u8, WireError> {
    if buf.remaining() < 2 {
        return Err(malformed("message shorter than version + tag"));
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    Ok(buf.get_u8())
}

/// Encodes an `IngestBatch` request body from a borrowed slice — what the
/// client's batching/splitting path uses to encode once (or re-encode a
/// half) without cloning the records.  Byte-identical to
/// `encode_request(&WireRequest::IngestBatch(..))`.
pub fn encode_ingest_batch(records: &[ProvenanceRecord]) -> Bytes {
    finish_message(REQ_INGEST, |buf| put_records(buf, records))
}

/// Encodes one request body (to be framed by [`crate::wire::write_frame`]).
pub fn encode_request(request: &WireRequest) -> Bytes {
    match request {
        WireRequest::Audit(audit) => finish_message(REQ_AUDIT, |buf| match audit {
            AuditRequest::VetValue { value, pattern } => {
                buf.put_u8(AUDIT_VET);
                put_value(buf, value);
                put_str(buf, pattern);
            }
            AuditRequest::AuditTrail { value } => {
                buf.put_u8(AUDIT_TRAIL);
                put_value(buf, value);
            }
            AuditRequest::WhoTouched { principal } => {
                buf.put_u8(AUDIT_TOUCHED);
                put_str(buf, principal.as_str());
            }
            AuditRequest::OriginOf { value } => {
                buf.put_u8(AUDIT_ORIGIN);
                put_value(buf, value);
            }
        }),
        WireRequest::IngestBatch(records) => {
            finish_message(REQ_INGEST, |buf| put_records(buf, records))
        }
        WireRequest::Flush => finish_message(REQ_FLUSH, |_| {}),
        WireRequest::Stats => finish_message(REQ_STATS, |_| {}),
        WireRequest::Metrics => finish_message(REQ_METRICS, |_| {}),
    }
}

/// Decodes one request body.
///
/// # Errors
///
/// [`WireError::UnsupportedVersion`] or [`WireError::Malformed`]; record
/// counts above [`WireLimits::max_records`] are rejected before any
/// per-record work.
pub fn decode_request(mut buf: Bytes, limits: &WireLimits) -> Result<WireRequest, WireError> {
    let request = match open_message(&mut buf)? {
        REQ_AUDIT => {
            need(&buf, 1, "audit request tag")?;
            let audit = match buf.get_u8() {
                AUDIT_VET => AuditRequest::VetValue {
                    value: wire_value(&mut buf)?,
                    pattern: wire_str(&mut buf)?,
                },
                AUDIT_TRAIL => AuditRequest::AuditTrail {
                    value: wire_value(&mut buf)?,
                },
                AUDIT_TOUCHED => AuditRequest::WhoTouched {
                    principal: Principal::new(wire_str(&mut buf)?),
                },
                AUDIT_ORIGIN => AuditRequest::OriginOf {
                    value: wire_value(&mut buf)?,
                },
                other => return Err(malformed(format!("unknown audit request tag {}", other))),
            };
            WireRequest::Audit(audit)
        }
        REQ_INGEST => WireRequest::IngestBatch(get_records(&mut buf, limits, "ingest batch")?),
        REQ_FLUSH => WireRequest::Flush,
        REQ_STATS => WireRequest::Stats,
        REQ_METRICS => WireRequest::Metrics,
        other => return Err(malformed(format!("unknown request tag {}", other))),
    };
    if buf.has_remaining() {
        return Err(malformed("trailing bytes after request"));
    }
    Ok(request)
}

fn put_request_stats(buf: &mut BytesMut, stats: &RequestStats) {
    buf.put_u64(stats.index_hits as u64);
    buf.put_u64(stats.memo_hits as u64);
    buf.put_u64(stats.dag_nodes_visited as u64);
}

fn get_request_stats(buf: &mut Bytes) -> Result<RequestStats, WireError> {
    need(buf, 24, "request stats")?;
    Ok(RequestStats {
        index_hits: buf.get_u64() as usize,
        memo_hits: buf.get_u64() as usize,
        dag_nodes_visited: buf.get_u64() as usize,
    })
}

fn put_engine_stats(buf: &mut BytesMut, stats: &EngineStats) {
    // Exhaustive destructuring (no `..`): adding a field to `EngineStats`
    // without threading it through the wire is a compile error here —
    // this codec already forgot `snapshots_published`/`snapshot_lag` once.
    let EngineStats {
        requests,
        ingested,
        vets_passed,
        vets_failed,
        index_hits,
        memo_hits,
        ingest_batches,
        busy_rejections,
        queue_depth,
        snapshots_published,
        snapshot_lag,
        watermark,
    } = *stats;
    for field in [
        requests,
        ingested,
        vets_passed,
        vets_failed,
        index_hits,
        memo_hits,
        ingest_batches,
        busy_rejections,
        queue_depth,
        snapshots_published,
        snapshot_lag,
        watermark,
    ] {
        buf.put_u64(field);
    }
}

fn get_engine_stats(buf: &mut Bytes) -> Result<EngineStats, WireError> {
    need(buf, 96, "engine stats")?;
    Ok(EngineStats {
        requests: buf.get_u64(),
        ingested: buf.get_u64(),
        vets_passed: buf.get_u64(),
        vets_failed: buf.get_u64(),
        index_hits: buf.get_u64(),
        memo_hits: buf.get_u64(),
        ingest_batches: buf.get_u64(),
        busy_rejections: buf.get_u64(),
        queue_depth: buf.get_u64(),
        snapshots_published: buf.get_u64(),
        snapshot_lag: buf.get_u64(),
        watermark: buf.get_u64(),
    })
}

fn put_store_stats(buf: &mut BytesMut, stats: &StoreStats) {
    let StoreStats {
        records,
        segments,
        bytes,
    } = *stats;
    buf.put_u64(records as u64);
    buf.put_u64(segments as u64);
    buf.put_u64(bytes as u64);
}

fn get_store_stats(buf: &mut Bytes) -> Result<StoreStats, WireError> {
    need(buf, 24, "store stats")?;
    Ok(StoreStats {
        records: buf.get_u64() as usize,
        segments: buf.get_u64() as usize,
        bytes: buf.get_u64() as usize,
    })
}

fn put_interner_stats(buf: &mut BytesMut, stats: &InternerStats) {
    let InternerStats {
        interned_nodes,
        hits,
        misses,
        shards,
    } = *stats;
    buf.put_u64(interned_nodes as u64);
    buf.put_u64(hits);
    buf.put_u64(misses);
    buf.put_u64(shards as u64);
}

fn get_interner_stats(buf: &mut Bytes) -> Result<InternerStats, WireError> {
    need(buf, 32, "interner stats")?;
    Ok(InternerStats {
        interned_nodes: buf.get_u64() as usize,
        hits: buf.get_u64(),
        misses: buf.get_u64(),
        shards: buf.get_u64() as usize,
    })
}

fn put_shard_stats(buf: &mut BytesMut, stats: &ShardStats) {
    let ShardStats {
        shard,
        entries,
        hits,
        misses,
    } = *stats;
    buf.put_u64(shard as u64);
    buf.put_u64(entries as u64);
    buf.put_u64(hits);
    buf.put_u64(misses);
}

fn get_shard_stats(buf: &mut Bytes) -> Result<ShardStats, WireError> {
    need(buf, 32, "shard stats")?;
    Ok(ShardStats {
        shard: buf.get_u64() as usize,
        entries: buf.get_u64() as usize,
        hits: buf.get_u64(),
        misses: buf.get_u64(),
    })
}

fn put_memo_stats(buf: &mut BytesMut, stats: &MemoStats) {
    let MemoStats {
        entries,
        bound,
        epochs,
        hits,
        misses,
        retained,
    } = *stats;
    buf.put_u64(entries as u64);
    buf.put_u64(bound as u64);
    buf.put_u64(epochs);
    buf.put_u64(hits);
    buf.put_u64(misses);
    buf.put_u64(retained);
}

fn get_memo_stats(buf: &mut Bytes) -> Result<MemoStats, WireError> {
    need(buf, 48, "memo stats")?;
    Ok(MemoStats {
        entries: buf.get_u64() as usize,
        bound: buf.get_u64() as usize,
        epochs: buf.get_u64(),
        hits: buf.get_u64(),
        misses: buf.get_u64(),
        retained: buf.get_u64(),
    })
}

fn put_histogram(buf: &mut BytesMut, histogram: &HistogramSnapshot) {
    let HistogramSnapshot {
        counts,
        overflow,
        sum_ns,
        count,
    } = histogram;
    buf.put_u32(counts.len() as u32);
    for bucket in counts {
        buf.put_u64(*bucket);
    }
    buf.put_u64(*overflow);
    buf.put_u64(*sum_ns);
    buf.put_u64(*count);
}

fn get_histogram(buf: &mut Bytes) -> Result<HistogramSnapshot, WireError> {
    need(buf, 4, "histogram bucket count")?;
    let count = buf.get_u32() as usize;
    // A bucket costs 8 bytes: the pre-allocation is capped by the bytes
    // actually remaining, like every count read off the wire.
    let mut counts = Vec::with_capacity(count.min(buf.remaining() / 8 + 1));
    for _ in 0..count {
        need(buf, 8, "histogram bucket")?;
        counts.push(buf.get_u64());
    }
    need(buf, 24, "histogram tail")?;
    Ok(HistogramSnapshot {
        counts,
        overflow: buf.get_u64(),
        sum_ns: buf.get_u64(),
        count: buf.get_u64(),
    })
}

fn put_policy_snapshot(buf: &mut BytesMut, policy: &PolicySnapshot) {
    let PolicySnapshot {
        policy: name,
        memo,
        vets_passed,
        vets_failed,
        vets_unknown_value,
        latency,
    } = policy;
    put_str(buf, name);
    put_memo_stats(buf, memo);
    buf.put_u64(*vets_passed);
    buf.put_u64(*vets_failed);
    buf.put_u64(*vets_unknown_value);
    put_histogram(buf, latency);
}

fn get_policy_snapshot(buf: &mut Bytes) -> Result<PolicySnapshot, WireError> {
    let name = wire_str(buf)?;
    let memo = get_memo_stats(buf)?;
    need(buf, 24, "policy verdict counters")?;
    Ok(PolicySnapshot {
        policy: name,
        memo,
        vets_passed: buf.get_u64(),
        vets_failed: buf.get_u64(),
        vets_unknown_value: buf.get_u64(),
        latency: get_histogram(buf)?,
    })
}

fn put_metrics_snapshot(buf: &mut BytesMut, metrics: &MetricsSnapshot) {
    let MetricsSnapshot {
        engine,
        store,
        interner,
        interner_shards,
        vets_unknown_pattern,
        frame_decode,
        request_service,
        ingest_queue_wait,
        policies,
    } = metrics;
    put_engine_stats(buf, engine);
    put_store_stats(buf, store);
    put_interner_stats(buf, interner);
    buf.put_u32(interner_shards.len() as u32);
    for shard in interner_shards {
        put_shard_stats(buf, shard);
    }
    buf.put_u64(*vets_unknown_pattern);
    put_histogram(buf, frame_decode);
    put_histogram(buf, request_service);
    put_histogram(buf, ingest_queue_wait);
    buf.put_u32(policies.len() as u32);
    for policy in policies {
        put_policy_snapshot(buf, policy);
    }
}

fn get_metrics_snapshot(buf: &mut Bytes) -> Result<MetricsSnapshot, WireError> {
    let engine = get_engine_stats(buf)?;
    let store = get_store_stats(buf)?;
    let interner = get_interner_stats(buf)?;
    need(buf, 4, "shard count")?;
    let count = buf.get_u32() as usize;
    // A shard costs 32 bytes on the wire.
    let mut interner_shards = Vec::with_capacity(count.min(buf.remaining() / 32 + 1));
    for _ in 0..count {
        interner_shards.push(get_shard_stats(buf)?);
    }
    need(buf, 8, "unknown-pattern counter")?;
    let vets_unknown_pattern = buf.get_u64();
    let frame_decode = get_histogram(buf)?;
    let request_service = get_histogram(buf)?;
    let ingest_queue_wait = get_histogram(buf)?;
    need(buf, 4, "policy count")?;
    let count = buf.get_u32() as usize;
    // A policy costs at least its 2 name-length bytes + 48 memo bytes.
    let mut policies = Vec::with_capacity(count.min(buf.remaining() / 50 + 1));
    for _ in 0..count {
        policies.push(get_policy_snapshot(buf)?);
    }
    Ok(MetricsSnapshot {
        engine,
        store,
        interner,
        interner_shards,
        vets_unknown_pattern,
        frame_decode,
        request_service,
        ingest_queue_wait,
        policies,
    })
}

/// Encodes one response body (to be framed by
/// [`crate::wire::write_frame`]).
pub fn encode_response(response: &WireResponse) -> Bytes {
    match response {
        WireResponse::Audit(audit) => finish_message(RESP_AUDIT, |buf| {
            match &audit.outcome {
                AuditOutcome::Vetted { verdict, sequence } => {
                    buf.put_u8(OUTCOME_VETTED);
                    buf.put_u8(*verdict as u8);
                    buf.put_u64(*sequence);
                }
                AuditOutcome::Trail(trail) => {
                    buf.put_u8(OUTCOME_TRAIL);
                    put_value(buf, &trail.value);
                    put_records(buf, &trail.records);
                    put_names(
                        buf,
                        &trail
                            .principals
                            .iter()
                            .map(|p| p.as_str())
                            .collect::<Vec<_>>(),
                    );
                    put_names(
                        buf,
                        &trail
                            .channels
                            .iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>(),
                    );
                }
                AuditOutcome::Touched { records, values } => {
                    buf.put_u8(OUTCOME_TOUCHED);
                    buf.put_u32(records.len() as u32);
                    for seq in records {
                        buf.put_u64(*seq);
                    }
                    buf.put_u32(values.len() as u32);
                    for value in values {
                        put_value(buf, value);
                    }
                }
                AuditOutcome::Origin { principal } => {
                    buf.put_u8(OUTCOME_ORIGIN);
                    match principal {
                        Some(p) => {
                            buf.put_u8(1);
                            put_str(buf, p.as_str());
                        }
                        None => buf.put_u8(0),
                    }
                }
                AuditOutcome::UnknownValue => buf.put_u8(OUTCOME_UNKNOWN_VALUE),
                AuditOutcome::UnknownPattern => buf.put_u8(OUTCOME_UNKNOWN_PATTERN),
            }
            put_request_stats(buf, &audit.stats);
            buf.put_u64(audit.watermark);
        }),
        WireResponse::IngestAck {
            accepted,
            queue_depth,
        } => finish_message(RESP_ACK, |buf| {
            buf.put_u32(*accepted);
            buf.put_u32(*queue_depth);
        }),
        WireResponse::Busy { queue_depth } => finish_message(RESP_BUSY, |buf| {
            buf.put_u32(*queue_depth);
        }),
        WireResponse::Flushed {
            ingested,
            watermark,
        } => finish_message(RESP_FLUSHED, |buf| {
            buf.put_u64(*ingested);
            buf.put_u64(*watermark);
        }),
        WireResponse::Stats(stats) => finish_message(RESP_STATS, |buf| {
            put_engine_stats(buf, stats);
        }),
        WireResponse::Metrics(metrics) => finish_message(RESP_METRICS, |buf| {
            put_metrics_snapshot(buf, metrics);
        }),
        WireResponse::ServerError { message } => finish_message(RESP_ERROR, |buf| {
            put_str(buf, message);
        }),
    }
}

/// Decodes one response body.
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_response(mut buf: Bytes, limits: &WireLimits) -> Result<WireResponse, WireError> {
    let response = match open_message(&mut buf)? {
        RESP_AUDIT => {
            need(&buf, 1, "audit outcome tag")?;
            let outcome = match buf.get_u8() {
                OUTCOME_VETTED => {
                    need(&buf, 9, "vet outcome")?;
                    let verdict = match buf.get_u8() {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(malformed(format!("bad verdict byte {}", other)));
                        }
                    };
                    AuditOutcome::Vetted {
                        verdict,
                        sequence: buf.get_u64(),
                    }
                }
                OUTCOME_TRAIL => {
                    let value = wire_value(&mut buf)?;
                    let records = get_records(&mut buf, limits, "audit trail")?;
                    let principals = get_names(&mut buf)?
                        .into_iter()
                        .map(Principal::new)
                        .collect();
                    let channels = get_names(&mut buf)?.into_iter().map(Channel::new).collect();
                    AuditOutcome::Trail(AuditTrail {
                        value,
                        records,
                        principals,
                        channels,
                    })
                }
                OUTCOME_TOUCHED => {
                    need(&buf, 4, "touched record count")?;
                    let count = buf.get_u32() as usize;
                    let mut records = Vec::with_capacity(count.min(buf.remaining() / 8 + 1));
                    for _ in 0..count {
                        need(&buf, 8, "touched sequence")?;
                        records.push(buf.get_u64());
                    }
                    need(&buf, 4, "touched value count")?;
                    let count = buf.get_u32() as usize;
                    let mut values = Vec::with_capacity(count.min(buf.remaining() / 3 + 1));
                    for _ in 0..count {
                        values.push(wire_value(&mut buf)?);
                    }
                    AuditOutcome::Touched { records, values }
                }
                OUTCOME_ORIGIN => {
                    need(&buf, 1, "origin flag")?;
                    let principal = match buf.get_u8() {
                        0 => None,
                        1 => Some(Principal::new(wire_str(&mut buf)?)),
                        other => return Err(malformed(format!("bad origin flag {}", other))),
                    };
                    AuditOutcome::Origin { principal }
                }
                OUTCOME_UNKNOWN_VALUE => AuditOutcome::UnknownValue,
                OUTCOME_UNKNOWN_PATTERN => AuditOutcome::UnknownPattern,
                other => return Err(malformed(format!("unknown audit outcome tag {}", other))),
            };
            let stats = get_request_stats(&mut buf)?;
            need(&buf, 8, "response watermark")?;
            let watermark = buf.get_u64();
            WireResponse::Audit(AuditResponse {
                outcome,
                stats,
                watermark,
            })
        }
        RESP_ACK => {
            need(&buf, 8, "ingest ack")?;
            WireResponse::IngestAck {
                accepted: buf.get_u32(),
                queue_depth: buf.get_u32(),
            }
        }
        RESP_BUSY => {
            need(&buf, 4, "busy response")?;
            WireResponse::Busy {
                queue_depth: buf.get_u32(),
            }
        }
        RESP_FLUSHED => {
            need(&buf, 16, "flushed response")?;
            WireResponse::Flushed {
                ingested: buf.get_u64(),
                watermark: buf.get_u64(),
            }
        }
        RESP_STATS => WireResponse::Stats(get_engine_stats(&mut buf)?),
        RESP_METRICS => WireResponse::Metrics(Box::new(get_metrics_snapshot(&mut buf)?)),
        RESP_ERROR => WireResponse::ServerError {
            message: wire_str(&mut buf)?,
        },
        other => return Err(malformed(format!("unknown response tag {}", other))),
    };
    if buf.has_remaining() {
        return Err(malformed("trailing bytes after response"));
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::provenance::{Event, Provenance};
    use piprov_core::value::Value;
    use piprov_store::Operation;

    fn record(i: u64) -> ProvenanceRecord {
        let who = Principal::new(format!("p{}", i));
        let k = Provenance::single(Event::output(who.clone(), Provenance::empty()));
        ProvenanceRecord::new(
            i,
            who,
            Operation::Send,
            "m",
            Value::Channel(Channel::new(format!("v{}", i))),
            k,
        )
    }

    #[test]
    fn requests_round_trip() {
        let limits = WireLimits::default();
        let requests = vec![
            WireRequest::Audit(AuditRequest::VetValue {
                value: Value::Channel(Channel::new("v")),
                pattern: "from-a".into(),
            }),
            WireRequest::Audit(AuditRequest::AuditTrail {
                value: Value::Principal(Principal::new("b")),
            }),
            WireRequest::Audit(AuditRequest::WhoTouched {
                principal: Principal::new("s"),
            }),
            WireRequest::Audit(AuditRequest::OriginOf {
                value: Value::Channel(Channel::new("x")),
            }),
            WireRequest::IngestBatch(vec![record(1), record(2)]),
            WireRequest::IngestBatch(Vec::new()),
            WireRequest::Flush,
            WireRequest::Stats,
            WireRequest::Metrics,
        ];
        for request in requests {
            let decoded = decode_request(encode_request(&request), &limits).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn metrics_snapshots_round_trip() {
        let limits = WireLimits::default();
        let metrics = MetricsSnapshot {
            engine: EngineStats {
                requests: 7,
                ingested: 100,
                vets_passed: 5,
                vets_failed: 2,
                index_hits: 40,
                memo_hits: 3,
                ingest_batches: 9,
                busy_rejections: 1,
                queue_depth: 2,
                snapshots_published: 9,
                snapshot_lag: 3,
                watermark: 100,
            },
            store: StoreStats {
                records: 100,
                segments: 2,
                bytes: 12_345,
            },
            interner: InternerStats {
                interned_nodes: 50,
                hits: 200,
                misses: 50,
                shards: 2,
            },
            interner_shards: vec![
                ShardStats {
                    shard: 0,
                    entries: 30,
                    hits: 120,
                    misses: 30,
                },
                ShardStats {
                    shard: 1,
                    entries: 20,
                    hits: 80,
                    misses: 20,
                },
            ],
            vets_unknown_pattern: 4,
            frame_decode: HistogramSnapshot {
                counts: vec![2; piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len()],
                overflow: 1,
                sum_ns: 777,
                count: 33,
            },
            request_service: HistogramSnapshot {
                counts: vec![0; piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len()],
                overflow: 9,
                sum_ns: 888,
                count: 9,
            },
            ingest_queue_wait: HistogramSnapshot::default(),
            policies: vec![PolicySnapshot {
                policy: "chain-only".into(),
                memo: MemoStats {
                    entries: 10,
                    bound: 4096,
                    epochs: 0,
                    hits: 6,
                    misses: 10,
                    retained: 0,
                },
                vets_passed: 5,
                vets_failed: 2,
                vets_unknown_value: 1,
                latency: HistogramSnapshot {
                    counts: vec![1; piprov_audit::LATENCY_BUCKET_BOUNDS_NS.len()],
                    overflow: 0,
                    sum_ns: 123_456,
                    count: 16,
                },
            }],
        };
        let response = WireResponse::Metrics(Box::new(metrics));
        let decoded = decode_response(encode_response(&response), &limits).unwrap();
        assert_eq!(decoded, response);
        // An empty registry round-trips too.
        let empty = WireResponse::Metrics(Box::new(MetricsSnapshot {
            engine: EngineStats::default(),
            store: StoreStats::default(),
            interner: InternerStats {
                interned_nodes: 0,
                hits: 0,
                misses: 0,
                shards: 0,
            },
            interner_shards: Vec::new(),
            vets_unknown_pattern: 0,
            frame_decode: HistogramSnapshot::default(),
            request_service: HistogramSnapshot::default(),
            ingest_queue_wait: HistogramSnapshot::default(),
            policies: Vec::new(),
        }));
        let decoded = decode_response(encode_response(&empty), &limits).unwrap();
        assert_eq!(decoded, empty);
    }

    #[test]
    fn truncated_metrics_frames_are_typed_errors_not_panics() {
        let limits = WireLimits::default();
        let response = WireResponse::Metrics(Box::new(MetricsSnapshot {
            engine: EngineStats::default(),
            store: StoreStats::default(),
            interner: InternerStats {
                interned_nodes: 1,
                hits: 2,
                misses: 1,
                shards: 1,
            },
            interner_shards: vec![ShardStats {
                shard: 0,
                entries: 1,
                hits: 2,
                misses: 1,
            }],
            vets_unknown_pattern: 0,
            frame_decode: HistogramSnapshot::default(),
            request_service: HistogramSnapshot::default(),
            ingest_queue_wait: HistogramSnapshot::default(),
            policies: Vec::new(),
        }));
        let body = encode_response(&response).to_vec();
        for len in 0..body.len() {
            let err = decode_response(Bytes::from(body[..len].to_vec()), &limits);
            assert!(err.is_err(), "prefix of {} bytes decoded", len);
        }
    }

    #[test]
    fn over_cap_batches_are_rejected_before_decoding_records() {
        let limits = WireLimits {
            max_records: 2,
            ..WireLimits::default()
        };
        let request = WireRequest::IngestBatch(vec![record(1), record(2), record(3)]);
        let err = decode_request(encode_request(&request), &limits).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{:?}", err);
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn version_and_tag_errors_are_typed() {
        let limits = WireLimits::default();
        let mut body = encode_request(&WireRequest::Flush).to_vec();
        body[0] = 9;
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::UnsupportedVersion(9))
        ));
        let mut body = encode_request(&WireRequest::Flush).to_vec();
        body[1] = 99;
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_response(Bytes::from(vec![WIRE_VERSION]), &limits),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let limits = WireLimits::default();
        let mut body = encode_request(&WireRequest::Stats).to_vec();
        body.push(0);
        assert!(matches!(
            decode_request(Bytes::from(body), &limits),
            Err(WireError::Malformed(_))
        ));
    }
}
