//! The readiness-based server core ([`crate::ServerCore::EventLoop`]).
//!
//! One **event-loop thread** owns the listener, an epoll instance (see
//! [`crate::poll`]), and every connection's state machine:
//!
//! ```text
//! read-accumulate ──► decode ──► handle ──► write-drain
//!       ▲   (loop)      (worker pool)          │
//!       └──────────────────────────────────────┘
//! ```
//!
//! The loop thread only moves bytes: it accepts, reads whatever readiness
//! delivers into a per-connection buffer, carves complete frames out of
//! it with [`crate::wire::try_parse_frame`], and drains each connection's
//! outbound buffer (partial writes re-arm `EPOLLOUT`).  Complete frames
//! are handed to a small **dispatch worker pool** that does the CPU work
//! — decode, [`crate::server::handle_request`] against the engine's
//! lock-free MVCC read path, encode — and appends the encoded responses
//! to the connection's outbound buffer.  At most one dispatch job per
//! connection is in flight and a job answers its frames in order, so
//! pipelining keeps the wire contract: responses strictly in request
//! order per connection.
//!
//! An idle connection therefore costs exactly one registered fd and its
//! (empty) buffers — no thread, no timer.  Shutdown is an `eventfd` wake,
//! not a poll: the loop thread sleeps in `epoll_wait` indefinitely until
//! the listener, a connection, a finished dispatch job, or the stop flag
//! (via [`crate::poll::WakeFd`]) rouses it.
//!
//! Protocol behavior is identical to the thread-pool core: typed error
//! frames then close on malformed input, `GET /metrics` answered with one
//! HTTP exposition response, [`crate::ServeConfig::idle_timeout`]
//! enforced with a best-effort `ServerError{"idle timeout"}` frame.

#![cfg(target_os = "linux")]

use crate::codec::{decode_request_traced, encode_response, request_kind, WireResponse};
use crate::poll::{Epoll, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::server::{
    contains_blank_line, elapsed_ns, handle_request, http_response_for, IDLE_TIMEOUT_MESSAGE,
    MAX_HTTP_HEAD,
};
use crate::wire::{try_parse_frame, write_frame, WireError, HTTP_GET_PREFIX};
use crate::ServeConfig;
use bytes::Bytes;
use piprov_audit::{
    AuditEngine, IngestQueue, RequestKind, Span, SpanKind, TraceCollector, TraceContext,
};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long shutdown waits for in-flight requests to finish and their
/// responses to drain before closing connections anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// The running threads of the event-loop core.  Owned by
/// [`crate::AuditServer`]; [`EventLoopHandle::stop`] is idempotent.
#[derive(Debug)]
pub(crate) struct EventLoopHandle {
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    dispatch: Arc<Dispatch>,
}

impl EventLoopHandle {
    /// Registers `listener` with a fresh epoll instance and starts the
    /// loop thread plus `config.workers` dispatch workers.
    pub(crate) fn start(
        listener: TcpListener,
        engine: Arc<AuditEngine>,
        queue: Arc<IngestQueue>,
        collector: Arc<TraceCollector>,
        stop: Arc<AtomicBool>,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wake = Arc::new(WakeFd::new()?);
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.raw(), EPOLLIN, TOKEN_WAKE)?;
        let dispatch = Arc::new(Dispatch {
            jobs: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            done: Mutex::new(Vec::new()),
            wake: Arc::clone(&wake),
            stop: Arc::clone(&stop),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let dispatch = Arc::clone(&dispatch);
                let engine = Arc::clone(&engine);
                let queue = Arc::clone(&queue);
                let collector = Arc::clone(&collector);
                std::thread::Builder::new()
                    .name(format!("piprov-dispatch-{}", i))
                    .spawn(move || dispatch_loop(&dispatch, &engine, &queue, &collector, &config))
                    .expect("spawn dispatch worker")
            })
            .collect();
        let loop_thread = {
            let dispatch = Arc::clone(&dispatch);
            std::thread::Builder::new()
                .name("piprov-event-loop".into())
                .spawn(move || {
                    Loop {
                        epoll,
                        listener,
                        wake,
                        dispatch,
                        stop,
                        engine,
                        collector,
                        config,
                        conns: HashMap::new(),
                        next_token: FIRST_CONN_TOKEN,
                    }
                    .run()
                })
                .expect("spawn event loop")
        };
        Ok(EventLoopHandle {
            loop_thread: Some(loop_thread),
            workers,
            dispatch,
        })
    }

    /// Wakes the loop thread (the caller has already raised the stop
    /// flag), lets it drain in-flight work, then joins every thread.
    pub(crate) fn stop(&mut self) {
        self.dispatch.wake.wake();
        if let Some(thread) = self.loop_thread.take() {
            let _ = thread.join();
        }
        // The loop thread has stopped producing jobs; rouse any worker
        // parked on an empty queue so it observes the stop flag.
        self.dispatch.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The loop-thread ⇄ worker-pool boundary.
#[derive(Debug)]
struct Dispatch {
    jobs: Mutex<VecDeque<Job>>,
    work: Condvar,
    /// Tokens whose job finished; the loop thread drains this after a
    /// [`WakeFd`] wake and re-examines those connections.
    done: Mutex<Vec<u64>>,
    wake: Arc<WakeFd>,
    stop: Arc<AtomicBool>,
}

/// One unit of CPU work for a dispatch worker.  The worker appends its
/// encoded output to `out` and reports `token` done — it never touches
/// the socket.
#[derive(Debug)]
enum Job {
    /// Complete frames from one connection, answered strictly in order.
    Frames {
        token: u64,
        frames: Vec<Bytes>,
        out: Arc<Mutex<Outbound>>,
    },
    /// A sniffed plaintext HTTP request head (the `/metrics` scrape).
    Http {
        token: u64,
        head: Vec<u8>,
        out: Arc<Mutex<Outbound>>,
    },
}

/// A connection's outbound buffer, shared between the loop thread (which
/// drains it to the socket) and the worker currently encoding into it.
#[derive(Debug, Default)]
struct Outbound {
    buf: Vec<u8>,
    /// Bytes before this offset are already written to the socket.
    start: usize,
    /// Close the connection once the buffer drains (error sent, HTTP
    /// response sent, or idle expiry).
    closing: bool,
    /// Total bytes ever appended to `buf` — the absolute stream position
    /// `pending_traces` anchor their completion against (never reset by
    /// the compaction `flush_outbound` does).
    total_enqueued: u64,
    /// Total bytes ever written to the socket.
    total_flushed: u64,
    /// Requests whose response sits in `buf`, waiting for the write-drain
    /// to pass `end_abs` — at which point the write span closes and the
    /// trace is finished.  Appended in stream order, so always sorted.
    pending_traces: Vec<PendingTrace>,
}

impl Outbound {
    fn is_drained(&self) -> bool {
        self.start >= self.buf.len()
    }
}

/// A request waiting for its response bytes to reach the socket; the
/// final `write` span covers enqueue → drained-past-`end_abs`.
#[derive(Debug)]
struct PendingTrace {
    /// `Outbound::total_flushed` value at which this response is fully on
    /// the wire.
    end_abs: u64,
    /// When the dispatch worker started decoding — the trace's total
    /// starts here.
    started: Instant,
    /// When the encoded response entered the outbound buffer.
    enqueued: Instant,
    ctx: Option<TraceContext>,
    kind: RequestKind,
    client_encode_ns: u64,
    decode_ns: u64,
    handle: Span,
}

/// Per-connection state machine on the loop thread.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// read-accumulate: bytes readiness delivered, not yet a full frame.
    read_buf: Vec<u8>,
    /// Complete frames waiting for the connection's next dispatch slot.
    pending: VecDeque<Bytes>,
    /// A dispatch job for this connection is at the workers; at most one,
    /// which is what keeps pipelined responses in request order.
    in_flight: bool,
    /// A frame-layer error to emit (typed frame, then close) once the
    /// frames that arrived before it have been answered.
    pending_error: Option<WireError>,
    /// `Some` once the first bytes read `GET ` — accumulating the HTTP
    /// request head instead of frames.
    http_head: Option<Vec<u8>>,
    peer_eof: bool,
    last_activity: Instant,
    /// The epoll interest currently registered for this fd.
    interest: u32,
}

impl Conn {
    /// No request in any stage — the state an idle-timeout may expire.
    fn is_idle(&self, out: &Outbound) -> bool {
        !self.in_flight
            && self.pending.is_empty()
            && self.pending_error.is_none()
            && self.read_buf.is_empty()
            && self.http_head.is_none()
            && out.is_drained()
    }
}

struct Loop {
    epoll: Epoll,
    listener: TcpListener,
    wake: Arc<WakeFd>,
    dispatch: Arc<Dispatch>,
    stop: Arc<AtomicBool>,
    engine: Arc<AuditEngine>,
    collector: Arc<TraceCollector>,
    config: ServeConfig,
    conns: HashMap<u64, (Conn, Arc<Mutex<Outbound>>)>,
    next_token: u64,
}

impl Loop {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            let timeout = self
                .config
                .idle_timeout
                .map(|t| t.min(Duration::from_millis(200)));
            if self.epoll.wait(&mut events, timeout).is_err() {
                // epoll itself failing is unrecoverable for this core;
                // fall through to the drain path and stop serving.
                self.stop.store(true, Ordering::SeqCst);
            }
            for &(token, revents) in events.iter() {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake.drain(),
                    _ => self.conn_ready(token, revents),
                }
            }
            self.reap_done();
            if self.stop.load(Ordering::SeqCst) {
                self.drain_and_close();
                return;
            }
            self.sweep_idle();
        }
    }

    /// Accepts until the backlog is empty.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient failures (fd exhaustion, aborted handshakes):
                // leave the rest of the backlog for the next readiness.
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let token = self.next_token;
            self.next_token += 1;
            let interest = EPOLLIN | EPOLLRDHUP;
            if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                continue;
            }
            let conn = Conn {
                stream,
                read_buf: Vec::new(),
                pending: VecDeque::new(),
                in_flight: false,
                pending_error: None,
                http_head: None,
                peer_eof: false,
                last_activity: Instant::now(),
                interest,
            };
            self.conns
                .insert(token, (conn, Arc::new(Mutex::new(Outbound::default()))));
            self.engine.metrics_registry().note_connection_accepted();
        }
    }

    /// Handles readiness on a connection: reads whatever is available,
    /// parses frames (or an HTTP head), flushes the outbound buffer, and
    /// advances the state machine.
    fn conn_ready(&mut self, token: u64, revents: u32) {
        let Some((conn, out)) = self.conns.get_mut(&token) else {
            return;
        };
        if revents & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 && !read_available(conn) {
            self.close(token);
            return;
        }
        if revents & EPOLLOUT != 0 && !flush_outbound(conn, out, &self.collector) {
            self.close(token);
            return;
        }
        self.advance(token);
    }

    /// Drains finished-job notifications from the workers and re-examines
    /// those connections (their outbound buffers just grew).
    fn reap_done(&mut self) {
        let done = std::mem::take(&mut *self.dispatch.done.lock().expect("done lock"));
        for token in done {
            if let Some((conn, _)) = self.conns.get_mut(&token) {
                conn.in_flight = false;
                self.advance(token);
            }
        }
    }

    /// The connection state machine: parse → dispatch → error/EOF → flush
    /// → close, in a fixed order so every path converges.
    fn advance(&mut self, token: u64) {
        let Some((conn, out)) = self.conns.get_mut(&token) else {
            return;
        };
        let closing = out.lock().expect("outbound lock").closing;
        if !closing {
            parse_available(conn, &self.config);
            // Dispatch the next batch of complete frames (or a complete
            // HTTP head) if the connection's single job slot is free.
            if !conn.in_flight {
                if let Some(head) = take_complete_http_head(conn) {
                    conn.in_flight = true;
                    self.dispatch.push(Job::Http {
                        token,
                        head,
                        out: Arc::clone(out),
                    });
                } else if !conn.pending.is_empty() {
                    let frames = conn.pending.drain(..).collect();
                    conn.in_flight = true;
                    self.dispatch.push(Job::Frames {
                        token,
                        frames,
                        out: Arc::clone(out),
                    });
                } else if let Some(error) = conn.pending_error.take() {
                    // Everything before the bad bytes has been answered:
                    // name the cause, then close.
                    let mut out = out.lock().expect("outbound lock");
                    append_error_frame(&mut out, &error.to_string());
                }
            }
        }
        let Some((conn, out)) = self.conns.get_mut(&token) else {
            return;
        };
        if !flush_outbound(conn, out, &self.collector) {
            self.close(token);
            return;
        }
        let (conn, out) = self.conns.get_mut(&token).expect("conn");
        let guard = out.lock().expect("outbound lock");
        let finished = conn.peer_eof
            && !conn.in_flight
            && conn.pending.is_empty()
            && conn.pending_error.is_none()
            && guard.is_drained();
        let wants_write = !guard.is_drained();
        drop(guard);
        if finished {
            self.close(token);
            return;
        }
        // Re-arm interest: always readable (readiness is how EOF and new
        // frames arrive), writable only while the outbound buffer holds
        // unsent bytes.
        let desired = EPOLLIN | EPOLLRDHUP | if wants_write { EPOLLOUT } else { 0 };
        if desired != conn.interest {
            conn.interest = desired;
            let fd = conn.stream.as_raw_fd();
            if self.epoll.modify(fd, desired, token).is_err() {
                self.close(token);
            }
        }
    }

    /// Expires connections idle past [`ServeConfig::idle_timeout`] with a
    /// best-effort typed frame.
    fn sweep_idle(&mut self) {
        let Some(bound) = self.config.idle_timeout else {
            return;
        };
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, (conn, out))| {
                conn.last_activity.elapsed() >= bound
                    && conn.is_idle(&out.lock().expect("outbound lock"))
            })
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            let (_, out) = self.conns.get_mut(&token).expect("conn");
            append_error_frame(
                &mut out.lock().expect("outbound lock"),
                IDLE_TIMEOUT_MESSAGE,
            );
            self.advance(token);
        }
    }

    /// Shutdown: wait (bounded) for in-flight jobs to finish and their
    /// responses to drain, notify the survivors, close everything.
    fn drain_and_close(&mut self) {
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let mut events = Vec::new();
        while Instant::now() < deadline {
            let busy = self.conns.iter().any(|(_, (conn, out))| {
                conn.in_flight || !out.lock().expect("outbound lock").is_drained()
            });
            if !busy {
                break;
            }
            if self
                .epoll
                .wait(&mut events, Some(Duration::from_millis(50)))
                .is_err()
            {
                break;
            }
            for &(token, revents) in events.iter() {
                if token == TOKEN_WAKE {
                    self.wake.drain();
                } else if token >= FIRST_CONN_TOKEN && revents & EPOLLOUT != 0 {
                    if let Some((conn, out)) = self.conns.get_mut(&token) {
                        if !flush_outbound(conn, out, &self.collector) {
                            self.close(token);
                        }
                    }
                }
            }
            let done = std::mem::take(&mut *self.dispatch.done.lock().expect("done lock"));
            for token in done {
                if let Some((conn, out)) = self.conns.get_mut(&token) {
                    conn.in_flight = false;
                    if !flush_outbound(conn, out, &self.collector) {
                        self.close(token);
                    }
                }
            }
        }
        // Anyone still connected gets told why, best effort, then closed.
        let mut notice = Vec::new();
        let response = WireResponse::ServerError {
            message: "server shutting down".into(),
        };
        write_frame(&mut notice, &encode_response(&response)).expect("vec write");
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some((conn, _)) = self.conns.get_mut(&token) {
                let _ = conn.stream.write(&notice);
            }
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some((conn, _)) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.engine.metrics_registry().note_connection_closed();
        }
    }
}

impl Dispatch {
    fn push(&self, job: Job) {
        self.jobs.lock().expect("jobs lock").push_back(job);
        self.work.notify_one();
    }
}

/// Per-readiness cap on bytes read into a connection's buffer.  Without
/// it a peer that writes faster than frames are parsed — e.g. a hostile
/// multi-megabyte `GET` request line with no newline — balloons
/// `read_buf` without bound before the parser ever sees it.  Epoll here
/// is level-triggered, so leftover bytes simply re-report readiness on
/// the next `epoll_wait`.
const READ_BUDGET: usize = 256 * 1024;

/// Reads until `WouldBlock`, EOF, or [`READ_BUDGET`] is consumed.
/// Returns `false` only on a fatal socket error (close immediately,
/// nothing to say to the peer).
fn read_available(conn: &mut Conn) -> bool {
    let mut scratch = [0u8; 16 * 1024];
    let mut taken = 0usize;
    loop {
        if taken >= READ_BUDGET {
            return true;
        }
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.peer_eof = true;
                return true;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                taken += n;
                match &mut conn.http_head {
                    Some(head) => {
                        let room = MAX_HTTP_HEAD.saturating_sub(head.len());
                        head.extend_from_slice(&scratch[..n.min(room)]);
                    }
                    None => conn.read_buf.extend_from_slice(&scratch[..n]),
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(_) => return false,
        }
    }
}

/// Carves complete frames out of the read buffer (or routes the bytes to
/// the HTTP head once `GET ` is sniffed where a length prefix belongs).
/// Frame-layer errors park in `pending_error` so already-queued frames
/// are still answered first.
fn parse_available(conn: &mut Conn, config: &ServeConfig) {
    if conn.pending_error.is_some() {
        return;
    }
    if conn.http_head.is_none() {
        if conn.read_buf.len() >= HTTP_GET_PREFIX.len()
            && conn.read_buf[..HTTP_GET_PREFIX.len()] == HTTP_GET_PREFIX
        {
            // The pre-sniff buffer may exceed the head cap (one readiness
            // burst can deliver up to READ_BUDGET bytes); the response only
            // needs the request line, so cap it like every later read.
            let mut head = std::mem::take(&mut conn.read_buf);
            head.truncate(MAX_HTTP_HEAD);
            conn.http_head = Some(head);
        } else {
            loop {
                match try_parse_frame(&conn.read_buf, config.limits.max_frame_len) {
                    Ok(None) => break,
                    Ok(Some((consumed, body))) => {
                        conn.read_buf.drain(..consumed);
                        conn.pending.push_back(body);
                    }
                    Err(e) => {
                        // The rest of the buffer is garbage relative to
                        // the framing; drop it and stop reading more.
                        conn.read_buf.clear();
                        conn.pending_error = Some(e);
                        return;
                    }
                }
            }
        }
    }
    if conn.peer_eof && conn.http_head.is_none() && !conn.read_buf.is_empty() {
        // EOF mid-frame: the peer walked away with a frame half-sent.
        conn.read_buf.clear();
        conn.pending_error = Some(WireError::Malformed("truncated frame header".into()));
    }
}

/// Takes the HTTP head for dispatch once it is complete (blank line seen,
/// cap reached, or the peer finished sending).
fn take_complete_http_head(conn: &mut Conn) -> Option<Vec<u8>> {
    let head = conn.http_head.as_ref()?;
    if contains_blank_line(head) || head.len() >= MAX_HTTP_HEAD || conn.peer_eof {
        conn.http_head.take()
    } else {
        None
    }
}

/// Appends one typed `ServerError` frame and marks the connection for
/// close-after-drain.
fn append_error_frame(out: &mut Outbound, message: &str) {
    let response = WireResponse::ServerError {
        message: message.into(),
    };
    let before = out.buf.len();
    write_frame(&mut out.buf, &encode_response(&response)).expect("vec write");
    out.total_enqueued += (out.buf.len() - before) as u64;
    out.closing = true;
}

/// Writes as much outbound data as the socket accepts, finishing the
/// trace of every request whose response just reached the wire.  Returns
/// `false` when the connection should close (fatal write error, or
/// drained with `closing` set).
fn flush_outbound(conn: &mut Conn, out: &Arc<Mutex<Outbound>>, collector: &TraceCollector) -> bool {
    let mut out = out.lock().expect("outbound lock");
    while out.start < out.buf.len() {
        let start = out.start;
        match conn.stream.write(&out.buf[start..]) {
            Ok(0) => return false,
            Ok(n) => {
                out.start += n;
                out.total_flushed += n as u64;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => return false,
        }
    }
    finish_flushed_traces(&mut out, collector);
    if out.is_drained() {
        out.buf.clear();
        out.start = 0;
        !out.closing
    } else {
        // Partial write: compact occasionally so a slow reader cannot pin
        // already-sent bytes forever.
        if out.start > 64 * 1024 {
            let start = out.start;
            out.buf.drain(..start);
            out.start = 0;
        }
        true
    }
}

/// Closes the write span of every pending trace whose response bytes are
/// fully on the wire, and hands the completed trace to the collector —
/// the event-loop analogue of the thread-pool core's post-flush stamp.
fn finish_flushed_traces(out: &mut Outbound, collector: &TraceCollector) {
    let flushed = out.total_flushed;
    let done = out
        .pending_traces
        .iter()
        .take_while(|t| t.end_abs <= flushed)
        .count();
    for trace in out.pending_traces.drain(..done) {
        // A stack array, not a Vec: finish is on the per-request path.
        let mut spans = [Span::new(SpanKind::Write, 0); 4];
        let mut count = 0;
        if trace.client_encode_ns > 0 {
            spans[count] = Span::new(SpanKind::ClientEncode, trace.client_encode_ns);
            count += 1;
        }
        spans[count] = Span::new(SpanKind::Decode, trace.decode_ns);
        spans[count + 1] = trace.handle;
        spans[count + 2] = Span::new(SpanKind::Write, elapsed_ns(trace.enqueued));
        count += 3;
        collector.finish(
            trace.ctx,
            trace.kind,
            elapsed_ns(trace.started),
            &spans[..count],
        );
    }
}

/// A dispatch worker: all CPU work (decode → handle → encode) for one job
/// at a time, never touching a socket.  Wire-level histograms are
/// recorded here — the loop thread stays out of the measurement.
fn dispatch_loop(
    dispatch: &Dispatch,
    engine: &Arc<AuditEngine>,
    queue: &Arc<IngestQueue>,
    collector: &Arc<TraceCollector>,
    config: &ServeConfig,
) {
    loop {
        let job = {
            let mut jobs = dispatch.jobs.lock().expect("jobs lock");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if dispatch.stop.load(Ordering::SeqCst) {
                    return;
                }
                jobs = dispatch
                    .work
                    .wait_timeout(jobs, Duration::from_millis(200))
                    .expect("jobs lock")
                    .0;
            }
        };
        let registry = engine.metrics_registry();
        match job {
            Job::Frames { token, frames, out } => {
                let mut encoded = Vec::new();
                // Per-request trace state, keyed by the response's end
                // offset within `encoded`; anchored to the outbound
                // stream position when the batch is appended below.
                let mut traces = Vec::new();
                let mut closing = false;
                for frame in frames {
                    let request_started = Instant::now();
                    let decoded = decode_request_traced(frame, &config.limits);
                    let decode_ns = elapsed_ns(request_started);
                    registry.record_frame_decode(decode_ns);
                    match decoded {
                        Ok((request, wire_trace)) => {
                            let ctx = collector.admit(wire_trace.map(|t| t.context));
                            let kind = request_kind(&request);
                            let service_started = Instant::now();
                            let (response, index_hits, memo_hits) =
                                handle_request(request, engine, queue, config, collector, ctx);
                            let service_ns = elapsed_ns(service_started);
                            registry
                                .record_request_service_traced(service_ns, ctx.map(|c| c.trace_id));
                            write_frame(&mut encoded, &encode_response(&response))
                                .expect("vec write");
                            traces.push(PendingTrace {
                                end_abs: encoded.len() as u64,
                                started: request_started,
                                enqueued: request_started,
                                ctx,
                                kind,
                                client_encode_ns: wire_trace
                                    .map(|t| t.client_encode_ns)
                                    .unwrap_or(0),
                                decode_ns,
                                handle: Span {
                                    kind: SpanKind::Handle,
                                    duration_ns: service_ns,
                                    index_hits,
                                    memo_hits,
                                },
                            });
                        }
                        Err(e) => {
                            // Same contract as the thread-pool core: a
                            // typed error frame, then close; frames after
                            // the bad one are not answered.
                            let response = WireResponse::ServerError {
                                message: e.to_string(),
                            };
                            write_frame(&mut encoded, &encode_response(&response))
                                .expect("vec write");
                            closing = true;
                            break;
                        }
                    }
                }
                {
                    let mut out = out.lock().expect("outbound lock");
                    let base = out.total_enqueued;
                    let now = Instant::now();
                    out.buf.extend_from_slice(&encoded);
                    out.total_enqueued += encoded.len() as u64;
                    for mut trace in traces {
                        trace.end_abs += base;
                        trace.enqueued = now;
                        out.pending_traces.push(trace);
                    }
                    if closing {
                        out.closing = true;
                    }
                }
                dispatch.report_done(token);
            }
            Job::Http { token, head, out } => {
                let response = http_response_for(&head, engine, collector);
                {
                    let mut out = out.lock().expect("outbound lock");
                    out.buf.extend_from_slice(&response);
                    out.total_enqueued += response.len() as u64;
                    out.closing = true;
                }
                dispatch.report_done(token);
            }
        }
    }
}

impl Dispatch {
    fn report_done(&self, token: u64) {
        self.done.lock().expect("done lock").push(token);
        self.wake.wake();
    }
}
