//! # piprov-serve
//!
//! The **cross-process audit service**: the wire boundary that lets an
//! auditor (or a provenance-producing deployment) talk to an
//! [`piprov_audit::AuditEngine`] without sharing its address space.
//!
//! The paper's central claim is that recorded provenance lets a *remote*
//! principal audit where a value came from; until this crate, "remote"
//! stopped at a thread boundary.  Here the typed
//! `AuditRequest`/`AuditResponse` vocabulary — plus `IngestBatch` ingest
//! and `Flush`/`Stats`/`Metrics` control messages (`Metrics` ships the
//! whole observability plane: every counter surface plus per-policy
//! latency histograms, rendered to Prometheus text by
//! [`AuditClient::metrics`]) and the policy-pack plane
//! (`LoadPack` ships a whole pack for one atomic, versioned swap —
//! [`AuditClient::load_pack`] — and `ListPolicies` reads back the
//! published set, also served as plaintext on `GET /policies`) —
//! travels a hardened, versioned binary protocol over TCP:
//!
//! * [`wire`] — length-prefixed, CRC-guarded, versioned framing with
//!   decode-side caps: a hostile length prefix or record count is a typed
//!   error before any allocation, never memory exhaustion;
//! * [`codec`] — the binary message codec; embedded records reuse the
//!   store's DAG body format, so sharing-heavy provenance stays O(DAG) on
//!   the wire and re-interns on arrival;
//! * [`server`] — the [`AuditServer`] with two interchangeable cores
//!   ([`ServerCore`]): a readiness-based **epoll event loop** (Linux
//!   default — one loop thread owning accept and every connection's
//!   read-accumulate → decode → handle → write-drain state machine, CPU
//!   work on a small dispatch pool, so thousands of idle connections cost
//!   only a registered fd) and a portable bounded **accept/worker pool**;
//!   both share per-connection request pipelining, a plaintext
//!   `GET /metrics` scrape answer, [`ServeConfig::idle_timeout`]
//!   enforcement, and **back-pressure on ingest** through the engine's
//!   bounded [`piprov_audit::IngestQueue`] (overflow answers a typed
//!   `Busy`, each accepted batch applies under one write-lock
//!   acquisition);
//! * [`poll`] (Linux) — the zero-dependency `epoll`/`eventfd` FFI shim
//!   the event loop stands on;
//! * [`client`] — the blocking [`AuditClient`] with pipelined queries and
//!   two ingest modes (blocking, fire-and-batch); by default every
//!   request carries a wire-propagated sampled trace context, and
//!   [`AuditClient::traces`] reads back the server's per-stage span
//!   records (`GET /trace` serves the same ring as lintable text);
//! * [`recorder`] — the [`RemoteRecorder`]
//!   [`piprov_runtime::DeliverySink`], so a simulation streams deliveries
//!   into a server in another process.
//!
//! ```
//! use piprov_audit::{AuditEngine, AuditOutcome, AuditRequest};
//! use piprov_core::name::{Channel, Principal};
//! use piprov_core::provenance::{Event, Provenance};
//! use piprov_core::value::Value;
//! use piprov_serve::{AuditClient, AuditServer, ServeConfig};
//! use piprov_store::{Operation, ProvenanceRecord};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("piprov-serve-doc-{}", std::process::id()));
//! let engine = Arc::new(AuditEngine::open(&dir)?);
//! engine.register_pattern("from-a", piprov_patterns::Pattern::originated_at(
//!     piprov_patterns::GroupExpr::single("a"),
//! ));
//! let server = AuditServer::bind(engine, "127.0.0.1:0", ServeConfig::default())?;
//!
//! // Another process would connect to the same address.
//! let mut client = AuditClient::connect(server.local_addr())?;
//! let k = Provenance::single(Event::output(Principal::new("a"), Provenance::empty()));
//! client.ingest_blocking(vec![ProvenanceRecord::new(
//!     1, "a", Operation::Send, "m", Value::Channel(Channel::new("v")), k,
//! )])?;
//! client.flush()?;
//! let response = client.request(&AuditRequest::VetValue {
//!     value: Value::Channel(Channel::new("v")),
//!     pattern: "from-a".into(),
//! })?;
//! assert!(matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. }));
//! server.shutdown()?;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the `poll` module opts back in for the epoll FFI
// declarations (a `forbid` could not be overridden there).  Everything
// outside `poll` remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod codec;
#[cfg(target_os = "linux")]
mod event_loop;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod recorder;
pub mod server;
pub mod wire;

pub use client::{
    AuditClient, ClientConfig, ClientError, FlushAck, IngestOutcome, MetricsReport, PackLoadOutcome,
};
pub use codec::{request_kind, RequestTrace, WireRequest, WireResponse};
pub use recorder::RemoteRecorder;
pub use server::{AuditServer, ServeConfig, ServerCore};
pub use wire::{
    WireError, WireLimits, DEFAULT_MAX_FRAME_LEN, DEFAULT_MAX_RECORDS, MIN_WIRE_VERSION,
    WIRE_VERSION,
};
