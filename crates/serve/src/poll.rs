//! Readiness polling for the event-loop server core: a minimal, safe
//! wrapper over Linux `epoll(7)` and `eventfd(2)`, bound by raw
//! `extern "C"` declarations against the system libc (the build
//! environment has no crates.io access, so there is no `libc` crate to
//! lean on — these five syscall wrappers are the entire unsafe surface of
//! the workspace, and this module is the only one that may use `unsafe`).
//!
//! The wrapper keeps the kernel API's shape — edge cases and all — but
//! owns every file descriptor it creates ([`Epoll`] and [`WakeFd`] close
//! on drop) and never hands out raw pointers: callers see
//! [`Epoll::wait`] filling a `Vec<(u64, u32)>` of `(token, readiness)`
//! pairs and nothing lower-level.
//!
//! Only compiled on Linux (`#[cfg(target_os = "linux")]` at the module
//! declaration); the thread-pool core remains the portable fallback.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readiness: data to read (or a pending `accept`).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the socket's send buffer has room again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, never subscribed).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: the peer closed the connection.
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down its writing half (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const RLIMIT_NOFILE: i32 = 7;

/// The kernel's `struct epoll_event`.  Packed on x86-64 (the kernel UAPI
/// declares it `__attribute__((packed))` there, and only there).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// The soft `RLIMIT_NOFILE` bound: how many file descriptors this process
/// may hold open.  Connection-scaling tiers (the `e16_connscale` bench,
/// the CI smoke) consult this to degrade to a documented skip instead of
/// failing spuriously when `ulimit -n` is low.
pub fn max_open_files() -> Option<u64> {
    let mut limit = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `limit` is a valid, writable RLimit matching the kernel's
    // layout for this (resource, arch); getrlimit writes it or fails.
    let ret = unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) };
    (ret == 0).then_some(limit.rlim_cur)
}

/// An owned `epoll` instance.  Closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The OS error from `epoll_create1`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers; the flag value is the kernel's EPOLL_CLOEXEC.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `event` is a valid EpollEvent for the duration of the
        // call; the kernel copies it before returning.  For DEL the
        // pointer is ignored on every kernel ≥ 2.6.9 but passing a valid
        // one is harmless.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` for `interest`, delivering `token` with its events.
    ///
    /// # Errors
    ///
    /// The OS error from `epoll_ctl`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest set of a registered `fd`.
    ///
    /// # Errors
    ///
    /// The OS error from `epoll_ctl`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The OS error from `epoll_ctl` (already-closed fds surface `EBADF`;
    /// callers deregister before closing).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events` with `(token, readiness)`
    /// pairs.  `timeout` of `None` blocks until an event arrives; an
    /// `EINTR`-interrupted wait reports zero events rather than an error.
    ///
    /// # Errors
    ///
    /// The OS error from `epoll_wait` (never `EINTR`).
    pub fn wait(&self, events: &mut Vec<(u64, u32)>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
        let timeout_ms = match timeout {
            None => -1i32,
            // Round up so a 0 < t < 1 ms timeout still sleeps.
            Some(t) => {
                i32::try_from(t.as_millis().max(u128::from(!t.is_zero() as u8))).unwrap_or(i32::MAX)
            }
        };
        // SAFETY: `buf` is a valid array of 128 EpollEvents; the kernel
        // writes at most `maxevents` entries and returns how many.
        let n = match cvt(unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), 128, timeout_ms) }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for event in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let (token, readiness) = (event.data, event.events);
            events.push((token, readiness));
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the epoll fd this struct owns.
        unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed wake-up: any thread may [`WakeFd::wake`] the
/// event loop out of `epoll_wait`; the loop [`WakeFd::drain`]s the
/// counter and checks its queues.  Replaces the thread-pool core's
/// per-connection 200 ms read-timeout poll.
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Creates a non-blocking, close-on-exec eventfd.
    ///
    /// # Errors
    ///
    /// The OS error from `eventfd`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers; flags are the kernel's EFD_* values.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    /// The fd to register with [`Epoll::add`] (interest [`EPOLLIN`]).
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Signals the event loop.  Never blocks: an eventfd counter at
    /// `u64::MAX - 1` would make `write` spuriously fail, but that takes
    /// ~2^64 unconsumed wakes; the error is ignored by design because the
    /// loop is then already awash in wake-ups.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        // SAFETY: `one` is 8 valid bytes, the size eventfd writes expect.
        unsafe { write(self.fd, one.as_ptr(), one.len()) };
    }

    /// Consumes all pending wake-ups (the level-triggered registration
    /// stops firing once the counter is back to zero).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 valid, writable bytes.  EFD_NONBLOCK makes
        // this return EAGAIN instead of blocking when already drained.
        unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the eventfd this struct owns.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_fd_rouses_an_idle_epoll_wait() {
        let epoll = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        epoll.add(wake.raw(), EPOLLIN, 7).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a bounded wait times out empty.
        epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        wake.wake();
        epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 7, "the registered token comes back");
        assert_ne!(events[0].1 & EPOLLIN, 0);

        // Drained, the level-triggered fd goes quiet again.
        wake.drain();
        epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_reports_the_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(server_side.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|&(t, r)| t == 42 && r & EPOLLIN != 0));
        let mut buf = [0u8; 4];
        (&server_side).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Peer close surfaces as RDHUP (with IN for the pending EOF).
        drop(client);
        epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|&(t, r)| t == 42 && r & (EPOLLRDHUP | EPOLLHUP | EPOLLIN) != 0));

        epoll.delete(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest_to_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(server_side.as_raw_fd(), EPOLLIN, 1).unwrap();

        // An idle, writable socket with IN-only interest stays silent...
        let mut events = Vec::new();
        epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // ...until interest includes OUT.
        epoll
            .modify(server_side.as_raw_fd(), EPOLLIN | EPOLLOUT, 1)
            .unwrap();
        epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|&(t, r)| t == 1 && r & EPOLLOUT != 0));
        drop(client);
    }

    #[test]
    fn fd_limit_is_reported() {
        let limit = max_open_files().expect("getrlimit works on Linux");
        assert!(limit >= 64, "even constrained CI grants a few fds");
    }
}
