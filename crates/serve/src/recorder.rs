//! Streams a simulation's deliveries into a *remote* audit server.
//!
//! The [`RemoteRecorder`] is the cross-process sibling of
//! [`piprov_audit::AuditRecorder`]: it implements
//! [`piprov_runtime::DeliverySink`], but instead of appending into a
//! shared in-process engine it buffers records into an [`AuditClient`]'s
//! fire-and-batch path, so a simulation in one process streams its
//! supply-chain deliveries into an [`crate::AuditServer`] in another —
//! one round trip per batch, back-pressure absorbed by the client's
//! blocking retry.
//!
//! [`piprov_runtime::Simulation::run_with_sink`] calls the sink's `flush`
//! hook when the run ends, which ships the partial tail batch and issues
//! the server-side flush barrier — after `run_with_sink` returns, every
//! delivered record is queryable (and durable) server-side.

use crate::client::{AuditClient, ClientError};
use piprov_core::name::Principal;
use piprov_core::system::Message;
use piprov_runtime::{DeliverySink, VirtualTime};
use piprov_store::{Operation, ProvenanceRecord};

/// A [`DeliverySink`] that streams every delivered value to an audit
/// server through a batching [`AuditClient`].
#[derive(Debug)]
pub struct RemoteRecorder {
    client: AuditClient,
    recorded: usize,
    /// Records buffered since the last successful flush barrier —
    /// [`RemoteRecorder::finish`] skips the barrier when the run's
    /// end-of-run `flush` already ran it.
    dirty: bool,
    /// Watermark reported by the last successful flush barrier: every
    /// record streamed before it is visible server-side at (or below)
    /// this sequence number.
    last_watermark: Option<u64>,
    /// The first client error encountered (the sink interface cannot
    /// propagate it mid-run).
    error: Option<ClientError>,
}

impl RemoteRecorder {
    /// Wraps a connected client.  [`crate::ClientConfig::batch_size`]
    /// controls the fire-and-batch granularity.
    pub fn new(client: AuditClient) -> Self {
        RemoteRecorder {
            client,
            recorded: 0,
            dirty: false,
            last_watermark: None,
            error: None,
        }
    }

    /// Records handed to the client so far (buffered or shipped).
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// The snapshot watermark of the last completed flush barrier, if one
    /// ran — the sequence number a downstream auditor can poll the
    /// server's `Flushed`/`Stats` watermark against to read this
    /// producer's writes.
    pub fn last_watermark(&self) -> Option<u64> {
        self.last_watermark
    }

    /// Consumes the recorder: ships the buffered tail, issues the
    /// server-side flush barrier, and surfaces the first error of the
    /// run.  Returns the number of records recorded and the client (for
    /// follow-up queries on the same connection).
    ///
    /// # Errors
    ///
    /// The first error any delivery hit, or a flush failure.
    pub fn finish(mut self) -> Result<(usize, AuditClient), ClientError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        // `run_with_sink` already flushed at run end; only repeat the
        // barrier if deliveries arrived since (or no run flushed at all).
        if self.dirty {
            self.client.flush()?;
        }
        Ok((self.recorded, self.client))
    }

    /// Consumes the recorder like [`RemoteRecorder::finish`], also
    /// returning the final flush watermark (running the barrier if
    /// deliveries arrived since the last one).
    ///
    /// # Errors
    ///
    /// As [`RemoteRecorder::finish`].
    pub fn finish_with_watermark(mut self) -> Result<(usize, u64, AuditClient), ClientError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        let watermark = match (self.dirty, self.last_watermark) {
            (false, Some(watermark)) => watermark,
            _ => self.client.flush()?.watermark,
        };
        Ok((self.recorded, watermark, self.client))
    }
}

impl DeliverySink for RemoteRecorder {
    fn delivered(&mut self, sender: &Principal, message: &Message, at: VirtualTime) {
        if self.error.is_some() {
            return;
        }
        for value in &message.payload {
            let record = ProvenanceRecord::new(
                at,
                sender.clone(),
                Operation::Send,
                message.channel.clone(),
                value.value.clone(),
                value.provenance.clone(),
            );
            match self.client.buffer(record) {
                Ok(()) => {
                    self.recorded += 1;
                    self.dirty = true;
                }
                Err(error) => {
                    self.error = Some(error);
                    return;
                }
            }
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        match self.client.flush() {
            Ok(ack) => {
                self.dirty = false;
                self.last_watermark = Some(ack.watermark);
            }
            Err(error) => self.error = Some(error),
        }
    }
}
