//! The blocking audit client.
//!
//! An [`AuditClient`] speaks the framed wire protocol over one TCP
//! connection.  Queries are simple round trips ([`AuditClient::request`]),
//! or many-at-once via [`AuditClient::pipeline`] (all requests written
//! before any response is read — the server answers strictly in order).
//!
//! Ingest has two modes:
//!
//! * **blocking** — [`AuditClient::ingest_batch`] sends one batch and
//!   returns the server's typed answer ([`IngestOutcome::Acked`] or
//!   [`IngestOutcome::Busy`]); [`AuditClient::ingest_blocking`] layers a
//!   bounded busy-retry loop on top, turning the server's back-pressure
//!   into client-side blocking;
//! * **fire-and-batch** — [`AuditClient::buffer`] accumulates records
//!   locally and ships a batch only when [`ClientConfig::batch_size`] is
//!   reached (or on [`AuditClient::flush`]), so a streaming producer pays
//!   one round trip per batch, not per record.

use crate::codec::{
    append_request_trace, decode_response, encode_ingest_batch, encode_request, RequestTrace,
    WireRequest, WireResponse,
};
use crate::server::elapsed_ns;
use crate::wire::{read_frame, write_frame, WireError, WireLimits};
use bytes::Bytes;
use piprov_audit::{
    AuditRequest, AuditResponse, EngineStats, EventFilter, MetricsSnapshot, PolicyListing,
    TraceContext, TraceRecord,
};
use piprov_core::value::Value;
use piprov_policy::{PackDiagnostic, PackSource};
use piprov_store::ProvenanceRecord;
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Configuration of an [`AuditClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Records accumulated by [`AuditClient::buffer`] before a batch is
    /// shipped.
    pub batch_size: usize,
    /// How long [`AuditClient::ingest_blocking`] sleeps after a `Busy`
    /// answer before retrying.
    pub busy_backoff: Duration,
    /// How many `Busy` answers [`AuditClient::ingest_blocking`] tolerates
    /// before giving up with [`ClientError::Rejected`].
    pub busy_retries: usize,
    /// Decode-side caps applied to server responses.
    pub limits: WireLimits,
    /// When set (the default), every request carries a fresh sampled
    /// [`TraceContext`] plus the client-side encode duration, so the
    /// server's trace ring shows this client's requests end to end
    /// (including a `client_encode` span).  Clear it to defer to the
    /// server's own head-based sampling.
    pub trace: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            batch_size: 32,
            busy_backoff: Duration::from_millis(1),
            busy_retries: 10_000,
            limits: WireLimits::default(),
            trace: true,
        }
    }
}

/// Everything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// A framing/codec/transport failure.
    Wire(WireError),
    /// The server answered with a response kind the request cannot have.
    UnexpectedResponse(String),
    /// The server reported a serving failure ([`WireResponse::ServerError`]).
    Server(String),
    /// The server stayed `Busy` through every configured retry.
    Rejected {
        /// Queue depth reported by the final rejection.
        queue_depth: u32,
    },
    /// The stream closed where a response was due.
    ConnectionClosed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {}", e),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "protocol violation: unexpected {}", what)
            }
            ClientError::Server(message) => write!(f, "server error: {}", message),
            ClientError::Rejected { queue_depth } => write!(
                f,
                "ingest rejected: server stayed busy (queue depth {})",
                queue_depth
            ),
            ClientError::ConnectionClosed => write!(f, "connection closed mid-conversation"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// The server's answer to a flush barrier: what is durable and — via the
/// snapshot watermark — what is visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushAck {
    /// Records ingested over the server engine's lifetime, after the
    /// drain.
    pub ingested: u64,
    /// The published snapshot watermark after the drain.  Every record
    /// this client submitted before the flush is visible at (or below)
    /// this sequence number: any later query's response watermark is `>=`
    /// it, which is the wire protocol's read-your-writes guarantee.
    pub watermark: u64,
}

/// The server's metrics plane, as [`AuditClient::metrics`] returns it:
/// the typed snapshot plus its Prometheus-style text rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Every counter surface of the server's engine, typed (see
    /// [`piprov_audit::MetricsSnapshot`]).
    pub snapshot: MetricsSnapshot,
    /// The snapshot rendered in the Prometheus text exposition format —
    /// rendered client-side from the decoded snapshot, which is
    /// byte-identical to what the server would render
    /// ([`MetricsSnapshot::exposition`] is deterministic), so the wire
    /// carries the compact typed form only.
    pub exposition: String,
}

/// The server's typed answer to one [`AuditClient::load_pack`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackLoadOutcome {
    /// The pack compiled and was published atomically.
    Loaded {
        /// The registry version the pack was published at.
        version: u64,
        /// Policies in the installed set.
        installed: u32,
        /// Of those, how many kept their compiled automaton (same name,
        /// source, and package as before the swap).
        reused: u32,
    },
    /// The pack had at least one error; the server changed **nothing**
    /// (all-or-nothing), and every diagnostic carries its file path,
    /// line, and column.
    Rejected {
        /// Per-file, line/column-addressed compile diagnostics.
        diagnostics: Vec<PackDiagnostic>,
    },
}

/// The server's typed answer to one ingest batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The batch was queued server-side.
    Acked {
        /// Records accepted.
        accepted: u32,
        /// Server queue depth after queuing.
        queue_depth: u32,
    },
    /// The server's bounded queue was full; nothing was buffered.
    Busy {
        /// Server queue depth at rejection.
        queue_depth: u32,
    },
}

/// A blocking client for one [`crate::AuditServer`] connection.
#[derive(Debug)]
pub struct AuditClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    config: ClientConfig,
    batch: Vec<ProvenanceRecord>,
    /// `Busy` answers observed (including those retried through).
    busy_observed: u64,
}

impl AuditClient {
    /// Connects with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        AuditClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(AuditClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            config,
            batch: Vec::new(),
            busy_observed: 0,
        })
    }

    /// Wraps an already-connected stream with the default configuration —
    /// for callers that dial (or hold) their sockets themselves, like a
    /// connection-scaling harness.
    ///
    /// # Errors
    ///
    /// Propagates the stream-clone failure.
    pub fn from_stream(stream: TcpStream) -> Result<Self, ClientError> {
        stream.set_nodelay(true).ok();
        Ok(AuditClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            config: ClientConfig::default(),
            batch: Vec::new(),
            busy_observed: 0,
        })
    }

    /// `Busy` answers this client has observed so far.
    pub fn busy_observed(&self) -> u64 {
        self.busy_observed
    }

    /// Encodes one request body, appending the wire trace field when
    /// [`ClientConfig::trace`] is set.
    fn encode_traced(&self, request: &WireRequest) -> Bytes {
        let started = Instant::now();
        let body = encode_request(request);
        self.append_trace(body, started)
    }

    /// Appends a fresh sampled trace context (and the encode duration
    /// measured from `encode_started`) to an already-encoded body.
    fn append_trace(&self, body: Bytes, encode_started: Instant) -> Bytes {
        if !self.config.trace {
            return body;
        }
        append_request_trace(
            &body,
            &RequestTrace {
                context: TraceContext::generate(),
                client_encode_ns: elapsed_ns(encode_started).max(1),
            },
        )
    }

    fn send(&mut self, request: &WireRequest) -> Result<(), ClientError> {
        let body = self.encode_traced(request);
        write_frame(&mut self.writer, &body)?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<WireResponse, ClientError> {
        let Some(frame) = read_frame(&mut self.reader, self.config.limits.max_frame_len)? else {
            return Err(ClientError::ConnectionClosed);
        };
        let response = decode_response(frame, &self.config.limits)?;
        if let WireResponse::Busy { .. } = &response {
            self.busy_observed += 1;
        }
        Ok(response)
    }

    fn round_trip(&mut self, request: &WireRequest) -> Result<WireResponse, ClientError> {
        self.send(request)?;
        self.receive()
    }

    /// Poses one audit question and returns the typed answer.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Server`] /
    /// [`ClientError::UnexpectedResponse`] protocol violations.
    pub fn request(&mut self, request: &AuditRequest) -> Result<AuditResponse, ClientError> {
        match self.round_trip(&WireRequest::Audit(request.clone()))? {
            WireResponse::Audit(response) => Ok(response),
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    /// Asks *why* `value` passes or fails `policy`: the answer's outcome is
    /// an `AuditOutcome::Why` carrying the witness slice (or
    /// `UnknownValue`/`UnknownPattern`).  Wire version 6.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn why(
        &mut self,
        value: Value,
        policy: impl Into<String>,
    ) -> Result<AuditResponse, ClientError> {
        self.request(&AuditRequest::Why {
            value,
            pattern: policy.into(),
        })
    }

    /// Asks whether `value` would still satisfy `policy` with the events
    /// named by `remove` taken out of its history: the answer's outcome is
    /// an `AuditOutcome::Counterfactual` carrying both verdicts and the
    /// removed events (or `UnknownValue`/`UnknownPattern`).  Wire
    /// version 6.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn counterfactual(
        &mut self,
        value: Value,
        policy: impl Into<String>,
        remove: EventFilter,
    ) -> Result<AuditResponse, ClientError> {
        self.request(&AuditRequest::Counterfactual {
            value,
            pattern: policy.into(),
            remove,
        })
    }

    /// Writes every request, *then* reads every response — pipelining that
    /// amortizes the round-trip latency over the whole slice.  Responses
    /// are returned in request order (the order the server guarantees).
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn pipeline(
        &mut self,
        requests: &[AuditRequest],
    ) -> Result<Vec<AuditResponse>, ClientError> {
        for request in requests {
            let body = self.encode_traced(&WireRequest::Audit(request.clone()));
            write_frame(&mut self.writer, &body)?;
        }
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            match self.receive()? {
                WireResponse::Audit(response) => responses.push(response),
                WireResponse::ServerError { message } => return Err(ClientError::Server(message)),
                other => {
                    return Err(ClientError::UnexpectedResponse(format!("{:?}", other)));
                }
            }
        }
        Ok(responses)
    }

    /// Sends one already-encoded ingest body and reads the typed answer.
    fn ingest_encoded(&mut self, body: &[u8]) -> Result<IngestOutcome, ClientError> {
        write_frame(&mut self.writer, body)?;
        self.writer.flush()?;
        match self.receive()? {
            WireResponse::IngestAck {
                accepted,
                queue_depth,
            } => Ok(IngestOutcome::Acked {
                accepted,
                queue_depth,
            }),
            WireResponse::Busy { queue_depth } => Ok(IngestOutcome::Busy { queue_depth }),
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    fn frame_too_large(&self, body_len: usize) -> ClientError {
        ClientError::Wire(WireError::FrameTooLarge {
            len: body_len.min(u32::MAX as usize) as u32,
            max: self.config.limits.max_frame_len,
        })
    }

    /// Ships one batch and returns the server's typed answer without
    /// retrying.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`IngestOutcome::Busy`] is an `Ok`
    /// answer, not an error); a batch that encodes past
    /// [`crate::WireLimits::max_frame_len`] is a client-side
    /// [`WireError::FrameTooLarge`] — nothing is sent.
    pub fn ingest_batch(
        &mut self,
        records: Vec<ProvenanceRecord>,
    ) -> Result<IngestOutcome, ClientError> {
        let started = Instant::now();
        let body = self.append_trace(encode_ingest_batch(&records), started);
        if body.len() as u64 > self.config.limits.max_frame_len as u64 {
            return Err(self.frame_too_large(body.len()));
        }
        self.ingest_encoded(&body)
    }

    /// Ships one batch, blocking through the server's back-pressure:
    /// every `Busy` answer sleeps [`ClientConfig::busy_backoff`] and
    /// retries (the batch is encoded **once** and the same frame resent —
    /// no per-attempt clone), up to [`ClientConfig::busy_retries`] times.
    /// A multi-record batch that encodes past
    /// [`crate::WireLimits::max_frame_len`] is split in half and shipped
    /// as two batches, recursively, so record-count batching can never
    /// produce a frame the server would kill the connection over.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the retries are exhausted,
    /// [`WireError::FrameTooLarge`] for a *single* record too big for any
    /// frame, or any transport/protocol failure.
    pub fn ingest_blocking(&mut self, records: Vec<ProvenanceRecord>) -> Result<(), ClientError> {
        self.ingest_blocking_slice(&records)
    }

    fn ingest_blocking_slice(&mut self, records: &[ProvenanceRecord]) -> Result<(), ClientError> {
        let started = Instant::now();
        let body = self.append_trace(encode_ingest_batch(records), started);
        if body.len() as u64 > self.config.limits.max_frame_len as u64 {
            if records.len() <= 1 {
                return Err(self.frame_too_large(body.len()));
            }
            let mid = records.len() / 2;
            self.ingest_blocking_slice(&records[..mid])?;
            return self.ingest_blocking_slice(&records[mid..]);
        }
        let mut attempt = 0usize;
        loop {
            match self.ingest_encoded(&body)? {
                IngestOutcome::Acked { .. } => return Ok(()),
                IngestOutcome::Busy { queue_depth } => {
                    if attempt >= self.config.busy_retries {
                        return Err(ClientError::Rejected { queue_depth });
                    }
                    attempt += 1;
                    std::thread::sleep(self.config.busy_backoff);
                }
            }
        }
    }

    /// Fire-and-batch ingest: buffers `record` locally and ships a batch
    /// (via [`AuditClient::ingest_blocking`]) once
    /// [`ClientConfig::batch_size`] records have accumulated.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::ingest_blocking`] (only when a batch ships).
    pub fn buffer(&mut self, record: ProvenanceRecord) -> Result<(), ClientError> {
        self.batch.push(record);
        if self.batch.len() >= self.config.batch_size.max(1) {
            let batch = std::mem::take(&mut self.batch);
            self.ingest_blocking(batch)?;
        }
        Ok(())
    }

    /// Records currently buffered locally (not yet shipped).
    pub fn buffered(&self) -> usize {
        self.batch.len()
    }

    /// Ships any buffered tail, then asks the server to drain its ingest
    /// queue and sync its store.  After this returns, everything buffered
    /// or acked before the call is queryable and durable server-side; the
    /// returned [`FlushAck::watermark`] names the snapshot that makes it
    /// so (any later query answers at or above it).
    ///
    /// # Errors
    ///
    /// As [`AuditClient::ingest_blocking`], plus flush-side server errors.
    pub fn flush(&mut self) -> Result<FlushAck, ClientError> {
        if !self.batch.is_empty() {
            let batch = std::mem::take(&mut self.batch);
            self.ingest_blocking(batch)?;
        }
        match self.round_trip(&WireRequest::Flush)? {
            WireResponse::Flushed {
                ingested,
                watermark,
            } => Ok(FlushAck {
                ingested,
                watermark,
            }),
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    /// Snapshot of the server engine's lifetime counters.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn stats(&mut self) -> Result<EngineStats, ClientError> {
        match self.round_trip(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    /// The server's full metrics plane: engine/store/interner counters
    /// plus every registered policy's verdict counters and vet-latency
    /// histogram, both as the typed [`MetricsSnapshot`] and as Prometheus
    /// exposition text ready to hand to a scrape endpoint.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.round_trip(&WireRequest::Metrics)? {
            WireResponse::Metrics(snapshot) => {
                let exposition = snapshot.exposition();
                Ok(MetricsReport {
                    snapshot: *snapshot,
                    exposition,
                })
            }
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    /// Ships a whole policy pack (every `.ppol` file, inline) and asks
    /// the server to compile and publish it as one atomic swap.  On
    /// success the server's registry moves to a new version with exactly
    /// the pack's policies; on any compile error the server changes
    /// nothing and the per-file diagnostics come back typed
    /// ([`PackLoadOutcome::Rejected`] — an `Ok` answer, not an error).
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn load_pack(&mut self, source: &PackSource) -> Result<PackLoadOutcome, ClientError> {
        match self.round_trip(&WireRequest::LoadPack(source.clone()))? {
            WireResponse::PackLoaded {
                version,
                installed,
                reused,
            } => Ok(PackLoadOutcome::Loaded {
                version,
                installed,
                reused,
            }),
            WireResponse::PackRejected { diagnostics } => {
                Ok(PackLoadOutcome::Rejected { diagnostics })
            }
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    /// The server's current policy listing: the registry version plus
    /// every registered policy's name, package, and canonical source,
    /// sorted by name.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn list_policies(&mut self) -> Result<PolicyListing, ClientError> {
        match self.round_trip(&WireRequest::ListPolicies)? {
            WireResponse::Policies(listing) => Ok(listing),
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    /// Every trace the server's collector currently holds: requests this
    /// client (or any peer) ran, each broken into per-stage spans.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn traces(&mut self) -> Result<Vec<TraceRecord>, ClientError> {
        self.traces_min(0)
    }

    /// As [`AuditClient::traces`], keeping only traces whose end-to-end
    /// duration is at least `min_total_ns`.
    ///
    /// # Errors
    ///
    /// As [`AuditClient::request`].
    pub fn traces_min(&mut self, min_total_ns: u64) -> Result<Vec<TraceRecord>, ClientError> {
        match self.round_trip(&WireRequest::Traces { min_total_ns })? {
            WireResponse::Traces(records) => Ok(records),
            WireResponse::ServerError { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::UnexpectedResponse(format!("{:?}", other))),
        }
    }

    /// Sends raw bytes as one frame — a test hook for malformed-input
    /// handling (hostile length prefixes, bad CRCs).
    #[doc(hidden)]
    pub fn send_raw(&mut self, frame: &[u8]) -> Result<(), ClientError> {
        let writer = self.writer.get_mut();
        writer.write_all(frame)?;
        writer.flush()?;
        Ok(())
    }

    /// Reads one raw response — companion to [`AuditClient::send_raw`].
    #[doc(hidden)]
    pub fn receive_response(&mut self) -> Result<WireResponse, ClientError> {
        self.receive()
    }
}
