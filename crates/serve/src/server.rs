//! The TCP front-end of the audit engine, with two interchangeable
//! **server cores** selected by [`ServeConfig::core`]:
//!
//! * [`ServerCore::EventLoop`] (the default on Linux) — readiness-based
//!   I/O: one event-loop thread owns `accept` and an `epoll` registration
//!   per connection (the `event_loop` module); complete frames are
//!   dispatched to a small worker pool, so thousands of idle connections
//!   cost only their registered fd while active ones saturate the
//!   engine's lock-free MVCC read path;
//! * [`ServerCore::ThreadPool`] — the portable fallback in this module: a
//!   bounded **accept/worker pool** where `workers` threads share one
//!   `TcpListener`, each accepting a connection and serving it to
//!   completion, so at most `workers` connections are live at once and
//!   the rest wait in the OS backlog.
//!
//! Both cores share every protocol behavior.  Within a connection,
//! requests are **pipelined**: frames are answered strictly in arrival
//! order, so a client may write many requests before reading the first
//! response.  Ingest takes the bounded path: an `IngestBatch` frame is
//! submitted to the engine's [`IngestQueue`]; a full queue answers a
//! typed [`WireResponse::Busy`] immediately — the server never buffers a
//! writer's backlog in its own memory — and accepted batches are applied
//! under one write-lock acquisition each by the queue's drain worker.
//!
//! Malformed input (bad CRC, hostile length prefix, unknown tag) is a
//! typed error, never a panic: the server sends a best-effort
//! [`WireResponse::ServerError`] frame naming the cause and closes that
//! connection; everyone else keeps being served.  A plaintext
//! `GET /metrics` where a frame header would be is answered with one
//! HTTP/1.1 response carrying the Prometheus exposition (see
//! [`ServeConfig`]), and [`ServeConfig::idle_timeout`] bounds how long an
//! idle connection may hold its resources in either core.

use crate::codec::{
    decode_request_traced, encode_response, request_kind, WireRequest, WireResponse,
};
use crate::wire::{read_frame_or_http, write_frame, FrameOrHttp, WireError, WireLimits};
use piprov_audit::{
    render_traces, AuditEngine, AuditOutcome, AuditRequest, BarrierError, ExpositionOptions,
    IngestQueue, PolicyListing, Span, SpanKind, SubmitOutcome, TraceCollector, TraceConfig,
    TraceContext,
};
use piprov_core::name::Channel;
use piprov_core::value::Value;
use piprov_store::StoreError;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which serving core an [`AuditServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// Readiness-based I/O: one epoll event-loop thread owning accept and
    /// per-connection state machines, dispatching complete frames to a
    /// worker pool.  Linux-only; on other platforms [`AuditServer::bind`]
    /// silently falls back to [`ServerCore::ThreadPool`].
    EventLoop,
    /// The portable accept/worker pool: at most `workers` live
    /// connections, the rest in the OS backlog.
    ThreadPool,
}

impl ServerCore {
    /// Both cores, event loop first — what the parameterized integration
    /// suites iterate to pin identical protocol behavior across cores.
    pub fn all() -> [ServerCore; 2] {
        [ServerCore::EventLoop, ServerCore::ThreadPool]
    }

    /// A short, stable name (`"event_loop"` / `"thread_pool"`) for test
    /// labels and temp-dir suffixes.
    pub fn name(&self) -> &'static str {
        match self {
            ServerCore::EventLoop => "event_loop",
            ServerCore::ThreadPool => "thread_pool",
        }
    }
}

impl Default for ServerCore {
    /// The event loop where it exists (Linux), the thread pool elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            ServerCore::EventLoop
        } else {
            ServerCore::ThreadPool
        }
    }
}

/// Configuration of an [`AuditServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Which serving core to run (see [`ServerCore`]).
    pub core: ServerCore,
    /// For [`ServerCore::ThreadPool`]: the size of the accept/worker pool
    /// — the maximum number of concurrently served connections (further
    /// connections wait in the OS backlog).  For
    /// [`ServerCore::EventLoop`]: the size of the dispatch worker pool —
    /// the number of frames handled concurrently (connections themselves
    /// are unbounded by threads; an idle one costs only its fd).
    pub workers: usize,
    /// Capacity of the bounded ingest queue, in batches; overflow answers
    /// [`WireResponse::Busy`].
    pub queue_capacity: usize,
    /// Decode-side caps applied to every frame and record count.
    pub limits: WireLimits,
    /// Bound on how long a remote `Flush` may park its worker thread
    /// waiting for the ingest queue to drain (the wait goes through
    /// [`IngestQueue::barrier`], which never touches the queue's pause
    /// hook).  On expiry the client gets a typed
    /// [`WireResponse::ServerError`] and the worker returns to its
    /// connection — a slow or hostile flusher cannot occupy the pool
    /// forever.
    pub flush_timeout: Duration,
    /// When set, a connection idle (no frame started) past this bound is
    /// closed with a best-effort typed `ServerError{"idle timeout"}`
    /// frame — enforced in **both** cores, so an idle client can neither
    /// pin a thread-pool worker slot nor hold an event-loop fd forever.
    /// `None` (the default) never expires idle connections.
    pub idle_timeout: Option<Duration>,
    /// The request-tracing plane: sampling rate, slow threshold, ring
    /// capacity and whether the `/metrics` exposition carries histogram
    /// exemplars.  Both cores stamp the same span set per request.
    pub trace: TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            core: ServerCore::default(),
            workers: 4,
            queue_capacity: 64,
            limits: WireLimits::default(),
            flush_timeout: Duration::from_secs(10),
            idle_timeout: None,
            trace: TraceConfig::default(),
        }
    }
}

/// The message an idle-expired connection is closed with, in both cores.
pub(crate) const IDLE_TIMEOUT_MESSAGE: &str = "idle timeout";

/// A running cross-process audit server.
///
/// Dropping the server (or calling [`AuditServer::shutdown`]) stops the
/// accept loop, waits for in-flight connections to finish, drains the
/// ingest queue and syncs the store.
#[derive(Debug)]
pub struct AuditServer {
    engine: Arc<AuditEngine>,
    queue: Arc<IngestQueue>,
    collector: Arc<TraceCollector>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    core: CoreHandle,
    stopped: bool,
}

/// The running threads of whichever core [`AuditServer::bind`] started.
#[derive(Debug)]
enum CoreHandle {
    ThreadPool {
        workers: Vec<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    EventLoop(crate::event_loop::EventLoopHandle),
}

impl AuditServer {
    /// Binds `addr` and starts the core selected by [`ServeConfig::core`].
    /// Use port 0 to let the OS pick a free port
    /// ([`AuditServer::local_addr`] reports it).
    ///
    /// # Errors
    ///
    /// Propagates bind/listen failures (and, for the event-loop core,
    /// epoll/eventfd setup failures).
    pub fn bind(
        engine: Arc<AuditEngine>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let collector = Arc::new(TraceCollector::new(config.trace));
        let queue = Arc::new(IngestQueue::start_with_trace(
            Arc::clone(&engine),
            config.queue_capacity,
            Some(Arc::clone(&collector)),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let core = match config.core {
            #[cfg(target_os = "linux")]
            ServerCore::EventLoop => {
                CoreHandle::EventLoop(crate::event_loop::EventLoopHandle::start(
                    listener,
                    Arc::clone(&engine),
                    Arc::clone(&queue),
                    Arc::clone(&collector),
                    Arc::clone(&stop),
                    config,
                )?)
            }
            // Off Linux there is no epoll: the event-loop request falls
            // back to the portable core, keeping `ServeConfig::default()`
            // usable everywhere.
            _ => {
                let listener = Arc::new(listener);
                let workers = (0..config.workers.max(1))
                    .map(|i| {
                        let listener = Arc::clone(&listener);
                        let engine = Arc::clone(&engine);
                        let queue = Arc::clone(&queue);
                        let collector = Arc::clone(&collector);
                        let stop = Arc::clone(&stop);
                        std::thread::Builder::new()
                            .name(format!("piprov-serve-{}", i))
                            .spawn(move || {
                                worker_loop(&listener, &engine, &queue, &collector, &stop, &config)
                            })
                            .expect("spawn serve worker")
                    })
                    .collect();
                CoreHandle::ThreadPool { workers }
            }
        };
        Ok(AuditServer {
            engine,
            queue,
            collector,
            local_addr,
            stop,
            core,
            stopped: false,
        })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<AuditEngine> {
        &self.engine
    }

    /// The bounded ingest queue (exposed for tests and instrumentation —
    /// pausing it makes back-pressure deterministic to observe).
    pub fn ingest_queue(&self) -> &Arc<IngestQueue> {
        &self.queue
    }

    /// The trace collector both cores deposit per-request span records
    /// into — the store behind `GET /trace` and the `Traces` wire request.
    pub fn trace_collector(&self) -> &Arc<TraceCollector> {
        &self.collector
    }

    /// Which core this server is actually running (the configured core,
    /// after any platform fallback).
    pub fn core(&self) -> ServerCore {
        match self.core {
            CoreHandle::ThreadPool { .. } => ServerCore::ThreadPool,
            #[cfg(target_os = "linux")]
            CoreHandle::EventLoop(_) => ServerCore::EventLoop,
        }
    }

    /// Stops accepting, joins the core's threads, drains the ingest queue
    /// and syncs the store.
    ///
    /// # Errors
    ///
    /// Surfaces the first deferred ingest error or a sync failure.
    pub fn shutdown(mut self) -> Result<(), StoreError> {
        self.stop_core();
        self.stopped = true;
        self.queue.flush()
    }

    fn stop_core(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &mut self.core {
            CoreHandle::ThreadPool { workers } => {
                // Unblock workers parked in accept(): one wake-up
                // connection each.  The listener may be bound to a
                // wildcard address (`0.0.0.0:0`), which is not connectable
                // on every platform — rewrite it to the matching loopback,
                // where the listener is reachable.
                let wake = wake_addr(self.local_addr);
                for _ in 0..workers.len() {
                    let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
            }
            #[cfg(target_os = "linux")]
            CoreHandle::EventLoop(handle) => handle.stop(),
        }
    }
}

/// The address `stop_workers` connects to, to wake an accept-parked
/// worker: the bound address, with an unspecified IP (a wildcard bind)
/// rewritten to the same family's loopback.  Connecting to `0.0.0.0` is
/// non-portable (some platforms refuse it outright), and a refused wake-up
/// would leave a worker parked in `accept()` forever.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let mut addr = bound;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

impl Drop for AuditServer {
    fn drop(&mut self) {
        if !self.stopped {
            self.stop_core();
            let _ = self.queue.flush();
        }
    }
}

fn worker_loop(
    listener: &TcpListener,
    engine: &Arc<AuditEngine>,
    queue: &Arc<IngestQueue>,
    collector: &Arc<TraceCollector>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            // Transient accept failures (fd exhaustion, aborted
            // connections) must not busy-spin the pool; back off briefly
            // and re-check the stop flag.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // A client that raced shutdown must not hang until its own
            // timeout: tell it why the connection is closing.  Best
            // effort — the racing connection may be our own wake-up.
            send_shutdown_notice(stream);
            return;
        }
        // Per-connection errors close that connection only; the worker
        // goes back to accepting.  The lifecycle gauge brackets the serve:
        // shutdown wake-ups above are never counted.
        let registry = engine.metrics_registry();
        registry.note_connection_accepted();
        let _ = serve_connection(stream, engine, queue, collector, stop, config);
        registry.note_connection_closed();
    }
}

/// Tells a connection accepted after shutdown began why it is being
/// closed, instead of dropping it silently.  Entirely best-effort: the
/// peer may be the shutdown wake-up connection, already gone.
fn send_shutdown_notice(stream: TcpStream) {
    stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut writer = BufWriter::new(stream);
    let response = WireResponse::ServerError {
        message: "server shutting down".into(),
    };
    let _ = write_frame(&mut writer, &encode_response(&response));
    let _ = writer.flush();
}

/// Serves one connection until clean close, error, idle expiry, or server
/// shutdown.
fn serve_connection(
    stream: TcpStream,
    engine: &Arc<AuditEngine>,
    queue: &Arc<IngestQueue>,
    collector: &Arc<TraceCollector>,
    stop: &AtomicBool,
    config: &ServeConfig,
) -> Result<(), WireError> {
    let limits = config.limits;
    stream.set_nodelay(true).ok();
    // The idle tick: a read timeout between frames lets the worker notice
    // a shutdown (or an expired idle bound) without dropping a connected
    // client's bytes.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut idle_since = Instant::now();
    loop {
        let frame = match read_frame_or_http(&mut reader, limits.max_frame_len) {
            Ok(FrameOrHttp::Eof) => return Ok(()),
            Ok(FrameOrHttp::Frame(frame)) => frame,
            Ok(FrameOrHttp::HttpGet(head)) => {
                return serve_http_get(&head, &mut reader, &mut writer, engine, collector);
            }
            Err(e) if e.is_timeout() => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                if let Some(bound) = config.idle_timeout {
                    if idle_since.elapsed() >= bound {
                        let notice = WireResponse::ServerError {
                            message: IDLE_TIMEOUT_MESSAGE.into(),
                        };
                        let _ = write_frame(&mut writer, &encode_response(&notice));
                        let _ = writer.flush();
                        return Ok(());
                    }
                }
                continue;
            }
            Err(e) => {
                // Best effort: name the cause, then close.  The client sees
                // either the typed error frame or the close — never a hang.
                send_error(&mut writer, &e);
                return Err(e);
            }
        };
        idle_since = Instant::now();
        let registry = engine.metrics_registry();
        // Decode time covers bytes → typed request (the header/body read
        // is readiness-bound, not decode work).
        let request_started = Instant::now();
        let decoded = decode_request_traced(frame, &limits);
        let decode_ns = elapsed_ns(request_started);
        registry.record_frame_decode(decode_ns);
        let (response, trace) = match decoded {
            Ok((request, wire_trace)) => {
                let ctx = collector.admit(wire_trace.map(|t| t.context));
                let kind = request_kind(&request);
                let service_started = Instant::now();
                let (response, index_hits, memo_hits) =
                    handle_request(request, engine, queue, config, collector, ctx);
                let service_ns = elapsed_ns(service_started);
                registry.record_request_service_traced(service_ns, ctx.map(|c| c.trace_id));
                let handle = Span {
                    kind: SpanKind::Handle,
                    duration_ns: service_ns,
                    index_hits,
                    memo_hits,
                };
                let client_encode_ns = wire_trace.map(|t| t.client_encode_ns).unwrap_or(0);
                (
                    response,
                    Some((ctx, kind, client_encode_ns, decode_ns, handle)),
                )
            }
            Err(e) => {
                send_error(&mut writer, &e);
                return Err(e);
            }
        };
        let write_started = Instant::now();
        write_frame(&mut writer, &encode_response(&response))?;
        writer.flush()?;
        if let Some((ctx, kind, client_encode_ns, decode_ns, handle)) = trace {
            // A stack array, not a Vec: finish is on the per-request path.
            let mut spans = [Span::new(SpanKind::Write, 0); 4];
            let mut count = 0;
            if client_encode_ns > 0 {
                spans[count] = Span::new(SpanKind::ClientEncode, client_encode_ns);
                count += 1;
            }
            spans[count] = Span::new(SpanKind::Decode, decode_ns);
            spans[count + 1] = handle;
            spans[count + 2] = Span::new(SpanKind::Write, elapsed_ns(write_started));
            count += 3;
            collector.finish(ctx, kind, elapsed_ns(request_started), &spans[..count]);
        }
    }
}

/// Nanoseconds since `start`, saturating into the histogram's `u64`.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Answers a plaintext HTTP `GET` detected at a frame boundary: reads the
/// rest of the request head (bounded in size and time — a scraper, not a
/// peer, is on the other side), writes one `Connection: close` response,
/// and ends the connection.
fn serve_http_get(
    head: &[u8],
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    engine: &AuditEngine,
    collector: &TraceCollector,
) -> Result<(), WireError> {
    let mut request = head.to_vec();
    read_http_head(reader, &mut request);
    writer.write_all(&http_response_for(&request, engine, collector))?;
    writer.flush()?;
    Ok(())
}

/// Upper bound on a buffered HTTP request head — far beyond any scrape
/// request, small enough that a hostile peer cannot balloon the buffer.
pub(crate) const MAX_HTTP_HEAD: usize = 8 * 1024;

/// Accumulates request bytes until the blank line ending the head, EOF,
/// the size cap, or a two-second deadline — whichever first.  Best
/// effort: the response is served from whatever arrived (only the request
/// line matters); draining the full head just lets the scraper read the
/// response before the close.
fn read_http_head(reader: &mut impl BufRead, request: &mut Vec<u8>) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !contains_blank_line(request) && request.len() < MAX_HTTP_HEAD {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if Instant::now() >= deadline {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if chunk.is_empty() {
            return;
        }
        let take = chunk.len().min(MAX_HTTP_HEAD - request.len());
        request.extend_from_slice(&chunk[..take]);
        reader.consume(take);
    }
}

/// Whether `head` already contains the `\r\n\r\n` ending an HTTP request
/// head (a bare `\n\n` is tolerated for hand-typed requests).
pub(crate) fn contains_blank_line(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

/// Renders the complete HTTP/1.1 response for a sniffed `GET` request:
/// the Prometheus exposition for `/metrics` (`text/plain; version=0.0.4`,
/// the content type Prometheus scrapers negotiate, with exemplar suffixes
/// when [`TraceConfig::exemplars`] is set), the trace ring for `/trace`
/// (filterable with `?min_us=N`), the policy listing for `/policies`
/// (filterable with `?package=NAME`; an unknown package 404s), the
/// why-provenance debug endpoint `/why?value=V&policy=P`, a liveness
/// probe for `/healthz`, 404 for any other path.  Always
/// `Connection: close` — the scrape path is one-shot, never a persistent
/// peer.
pub(crate) fn http_response_for(
    head: &[u8],
    engine: &AuditEngine,
    collector: &TraceCollector,
) -> Vec<u8> {
    let path = http_request_path(head);
    let (path, query) = match path {
        Some(path) => match path.split_once('?') {
            Some((path, query)) => (Some(path), Some(query)),
            None => (Some(path), None),
        },
        None => (None, None),
    };
    let (status, content_type, body) = match path {
        Some("/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            piprov_audit::render_exposition_with(
                &engine.metrics(),
                &ExpositionOptions {
                    exemplars: collector.config().exemplars,
                },
            ),
        ),
        Some("/trace") => (
            "200 OK",
            "text/plain; charset=utf-8",
            render_traces(&collector.snapshot(trace_min_total_ns(query))),
        ),
        Some("/policies") => {
            let (status, body) = policies_response(query, engine);
            (status, "text/plain; charset=utf-8", body)
        }
        Some("/why") => {
            let (status, body) = why_response(query, engine);
            (status, "text/plain; charset=utf-8", body)
        }
        Some("/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let mut response = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        content_type,
        body.len()
    )
    .into_bytes();
    response.extend_from_slice(body.as_bytes());
    response
}

/// The value of `key=` in an HTTP query string (`a=1&b=2`), if present.
/// Shared by every filterable endpoint (`/trace?min_us=`,
/// `/policies?package=`, `/why?value=&policy=`); the first occurrence
/// wins.  No percent-decoding — the names this surface filters on are
/// plain identifiers.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query
        .into_iter()
        .flat_map(|q| q.split('&'))
        .find_map(|pair| pair.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
}

/// The `min_us=N` filter of a `/trace` query string, in nanoseconds.
/// Anything absent or unparsable means "no filter".
fn trace_min_total_ns(query: Option<&str>) -> u64 {
    query_param(query, "min_us")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|us| us.saturating_mul(1_000))
        .unwrap_or(0)
}

/// The `/policies` body: the full listing, or — with `?package=NAME` —
/// only that package's policies, 404ing when the package matches nothing
/// (an empty listing would be indistinguishable from "no policies loaded
/// yet" to a dashboard).
fn policies_response(query: Option<&str>, engine: &AuditEngine) -> (&'static str, String) {
    let listing = engine.policies();
    match query_param(query, "package") {
        None => ("200 OK", listing.to_string()),
        Some(package) => {
            let PolicyListing { version, policies } = listing;
            let filtered: Vec<_> = policies
                .into_iter()
                .filter(|p| p.package == package)
                .collect();
            if filtered.is_empty() {
                return ("404 Not Found", format!("unknown package {}\n", package));
            }
            (
                "200 OK",
                PolicyListing {
                    version,
                    policies: filtered,
                }
                .to_string(),
            )
        }
    }
}

/// The `/why?value=V&policy=P` body: the rendered witness slice for the
/// named channel value against the named policy.  Missing parameters are
/// a 400; an unknown value or policy is a 404 carrying the engine's
/// diagnostic outcome.
fn why_response(query: Option<&str>, engine: &AuditEngine) -> (&'static str, String) {
    let Some(value) = query_param(query, "value") else {
        return ("400 Bad Request", "missing value= parameter\n".to_string());
    };
    let Some(policy) = query_param(query, "policy") else {
        return ("400 Bad Request", "missing policy= parameter\n".to_string());
    };
    let response = engine.handle(&AuditRequest::Why {
        value: Value::Channel(Channel::new(value)),
        pattern: policy.to_string(),
    });
    match response.outcome {
        AuditOutcome::Why(slice) => ("200 OK", slice.to_string()),
        AuditOutcome::UnknownValue => ("404 Not Found", format!("unknown value {}\n", value)),
        AuditOutcome::UnknownPattern { nearest, .. } => (
            "404 Not Found",
            match nearest {
                Some(nearest) => format!("unknown policy {} (nearest: {})\n", policy, nearest),
                None => format!("unknown policy {}\n", policy),
            },
        ),
        other => ("500 Internal Server Error", format!("{:?}\n", other)),
    }
}

/// The request path of a `GET` request line, if `head` starts with one.
fn http_request_path(head: &[u8]) -> Option<&str> {
    let line_end = head
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .unwrap_or(head.len());
    let line = std::str::from_utf8(&head[..line_end]).ok()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    parts.next()
}

fn send_error(writer: &mut impl Write, error: &WireError) {
    let response = WireResponse::ServerError {
        message: error.to_string(),
    };
    let _ = write_frame(writer, &encode_response(&response));
    let _ = writer.flush();
}

/// Maps one decoded request onto the engine/queue.  Never panics; store
/// failures become [`WireResponse::ServerError`].  Shared by both cores —
/// the event loop's dispatch workers call it per frame.
///
/// Returns the response plus the `(index_hits, memo_hits)` the engine
/// reported, so the caller can stamp them onto the request's `handle`
/// span (zero for everything but audit requests).
pub(crate) fn handle_request(
    request: WireRequest,
    engine: &Arc<AuditEngine>,
    queue: &Arc<IngestQueue>,
    config: &ServeConfig,
    collector: &TraceCollector,
    ctx: Option<TraceContext>,
) -> (WireResponse, u64, u64) {
    let response = match request {
        WireRequest::Audit(audit) => {
            let response = engine.handle_with_trace(&audit, ctx.map(|c| c.trace_id));
            let index_hits = response.stats.index_hits as u64;
            let memo_hits = response.stats.memo_hits as u64;
            return (WireResponse::Audit(response), index_hits, memo_hits);
        }
        WireRequest::IngestBatch(records) => {
            let accepted = records.len() as u32;
            // The queue-wait span for this batch is deposited later by the
            // drain worker, under the same trace id.
            match queue.try_submit_traced(records, ctx) {
                SubmitOutcome::Accepted { queue_depth } => WireResponse::IngestAck {
                    accepted,
                    queue_depth: queue_depth as u32,
                },
                SubmitOutcome::Busy { queue_depth } => WireResponse::Busy {
                    queue_depth: queue_depth as u32,
                },
            }
        }
        // The wire-facing barrier, NOT the owner-facing `flush()`: a remote
        // peer must be able to neither un-pause a deliberately paused
        // queue nor park one of the pool's workers without bound.
        WireRequest::Flush => match queue.barrier(config.flush_timeout) {
            // The watermark is read after the drain: everything submitted
            // before the flush is visible at (or below) it — the anchor a
            // client's read-your-writes polls against.
            Ok(()) => WireResponse::Flushed {
                ingested: engine.stats().ingested,
                watermark: engine.watermark(),
            },
            Err(e @ BarrierError::TimedOut { .. }) => WireResponse::ServerError {
                message: format!("flush failed: {}", e),
            },
            Err(BarrierError::Store(e)) => WireResponse::ServerError {
                message: format!("flush failed: {}", e),
            },
        },
        WireRequest::Stats => WireResponse::Stats(engine.stats()),
        WireRequest::Metrics => WireResponse::Metrics(Box::new(engine.metrics())),
        WireRequest::Traces { min_total_ns } => {
            WireResponse::Traces(collector.snapshot(min_total_ns))
        }
        // All-or-nothing: compilation happens entirely off to the side,
        // and only a clean pack reaches the engine's atomic publish — a
        // pack with any error changes nothing and reports every problem's
        // file, line, and column.
        WireRequest::LoadPack(source) => match piprov_policy::PolicyPack::compile(&source) {
            Ok(pack) => {
                let install = engine.install_pack(&pack);
                WireResponse::PackLoaded {
                    version: install.version,
                    installed: install.installed as u32,
                    reused: install.reused as u32,
                }
            }
            Err(error) => WireResponse::PackRejected {
                diagnostics: error.diagnostics,
            },
        },
        WireRequest::ListPolicies => WireResponse::Policies(engine.policies()),
    };
    (response, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_addr_rewrites_wildcards_to_the_matching_loopback() {
        let v4: SocketAddr = "0.0.0.0:7141".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:7141".parse().unwrap());
        let v6: SocketAddr = "[::]:7141".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:7141".parse().unwrap());
        // Concrete addresses pass through untouched.
        let concrete: SocketAddr = "192.0.2.7:9".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
        let loopback: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert_eq!(wake_addr(loopback), loopback);
    }
}
