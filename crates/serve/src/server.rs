//! The TCP front-end of the audit engine.
//!
//! An [`AuditServer`] owns a bounded **accept/worker pool**: `workers`
//! threads share one `TcpListener`, each accepting a connection and
//! serving it to completion, so at most `workers` connections are live at
//! once and the rest wait in the OS backlog — the pool is the concurrency
//! bound, not an unbounded thread-per-connection spawn.  Within a
//! connection, requests are **pipelined**: the worker answers frames
//! strictly in arrival order, so a client may write many requests before
//! reading the first response.
//!
//! Ingest takes the bounded path: an `IngestBatch` frame is submitted to
//! the engine's [`IngestQueue`]; a full queue answers a typed
//! [`WireResponse::Busy`] immediately — the server never buffers a
//! writer's backlog in its own memory — and accepted batches are applied
//! under one write-lock acquisition each by the queue's drain worker.
//!
//! Malformed input (bad CRC, hostile length prefix, unknown tag) is a
//! typed error, never a panic: the worker sends a best-effort
//! [`WireResponse::ServerError`] frame naming the cause and closes that
//! connection; the pool keeps serving everyone else.

use crate::codec::{decode_request, encode_response, WireRequest, WireResponse};
use crate::wire::{read_frame, write_frame, WireError, WireLimits};
use piprov_audit::{AuditEngine, BarrierError, IngestQueue, SubmitOutcome};
use piprov_store::StoreError;
use std::io::{BufReader, BufWriter, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of an [`AuditServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Size of the accept/worker pool — the maximum number of concurrently
    /// served connections (further connections wait in the OS backlog).
    pub workers: usize,
    /// Capacity of the bounded ingest queue, in batches; overflow answers
    /// [`WireResponse::Busy`].
    pub queue_capacity: usize,
    /// Decode-side caps applied to every frame and record count.
    pub limits: WireLimits,
    /// Bound on how long a remote `Flush` may park its worker thread
    /// waiting for the ingest queue to drain (the wait goes through
    /// [`IngestQueue::barrier`], which never touches the queue's pause
    /// hook).  On expiry the client gets a typed
    /// [`WireResponse::ServerError`] and the worker returns to its
    /// connection — a slow or hostile flusher cannot occupy the pool
    /// forever.
    pub flush_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            limits: WireLimits::default(),
            flush_timeout: Duration::from_secs(10),
        }
    }
}

/// A running cross-process audit server.
///
/// Dropping the server (or calling [`AuditServer::shutdown`]) stops the
/// accept loop, waits for in-flight connections to finish, drains the
/// ingest queue and syncs the store.
#[derive(Debug)]
pub struct AuditServer {
    engine: Arc<AuditEngine>,
    queue: Arc<IngestQueue>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl AuditServer {
    /// Binds `addr` and starts the worker pool.  Use port 0 to let the OS
    /// pick a free port ([`AuditServer::local_addr`] reports it).
    ///
    /// # Errors
    ///
    /// Propagates bind/listen failures.
    pub fn bind(
        engine: Arc<AuditEngine>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let queue = Arc::new(IngestQueue::start(
            Arc::clone(&engine),
            config.queue_capacity,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let engine = Arc::clone(&engine);
                let queue = Arc::clone(&queue);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("piprov-serve-{}", i))
                    .spawn(move || worker_loop(&listener, &engine, &queue, &stop, &config))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(AuditServer {
            engine,
            queue,
            local_addr,
            stop,
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<AuditEngine> {
        &self.engine
    }

    /// The bounded ingest queue (exposed for tests and instrumentation —
    /// pausing it makes back-pressure deterministic to observe).
    pub fn ingest_queue(&self) -> &Arc<IngestQueue> {
        &self.queue
    }

    /// Stops accepting, joins the workers, drains the ingest queue and
    /// syncs the store.
    ///
    /// # Errors
    ///
    /// Surfaces the first deferred ingest error or a sync failure.
    pub fn shutdown(mut self) -> Result<(), StoreError> {
        self.stop_workers();
        self.queue.flush()
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock workers parked in accept(): one wake-up connection each.
        // The listener may be bound to a wildcard address (`0.0.0.0:0`),
        // which is not connectable on every platform — rewrite it to the
        // matching loopback, where the listener is reachable.
        let wake = wake_addr(self.local_addr);
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The address `stop_workers` connects to, to wake an accept-parked
/// worker: the bound address, with an unspecified IP (a wildcard bind)
/// rewritten to the same family's loopback.  Connecting to `0.0.0.0` is
/// non-portable (some platforms refuse it outright), and a refused wake-up
/// would leave a worker parked in `accept()` forever.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let mut addr = bound;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

impl Drop for AuditServer {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_workers();
            let _ = self.queue.flush();
        }
    }
}

fn worker_loop(
    listener: &TcpListener,
    engine: &Arc<AuditEngine>,
    queue: &Arc<IngestQueue>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            // Transient accept failures (fd exhaustion, aborted
            // connections) must not busy-spin the pool; back off briefly
            // and re-check the stop flag.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // A client that raced shutdown must not hang until its own
            // timeout: tell it why the connection is closing.  Best
            // effort — the racing connection may be our own wake-up.
            send_shutdown_notice(stream);
            return;
        }
        // Per-connection errors close that connection only; the worker
        // goes back to accepting.
        let _ = serve_connection(stream, engine, queue, stop, config);
    }
}

/// Tells a connection accepted after shutdown began why it is being
/// closed, instead of dropping it silently.  Entirely best-effort: the
/// peer may be the shutdown wake-up connection, already gone.
fn send_shutdown_notice(stream: TcpStream) {
    stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut writer = BufWriter::new(stream);
    let response = WireResponse::ServerError {
        message: "server shutting down".into(),
    };
    let _ = write_frame(&mut writer, &encode_response(&response));
    let _ = writer.flush();
}

/// Serves one connection until clean close, error, or server shutdown.
fn serve_connection(
    stream: TcpStream,
    engine: &Arc<AuditEngine>,
    queue: &Arc<IngestQueue>,
    stop: &AtomicBool,
    config: &ServeConfig,
) -> Result<(), WireError> {
    let limits = config.limits;
    stream.set_nodelay(true).ok();
    // The idle tick: a read timeout between frames lets the worker notice
    // a shutdown without dropping a connected client's bytes.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_frame(&mut reader, limits.max_frame_len) {
            Ok(None) => return Ok(()),
            Ok(Some(frame)) => frame,
            Err(e) if e.is_timeout() => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => {
                // Best effort: name the cause, then close.  The client sees
                // either the typed error frame or the close — never a hang.
                send_error(&mut writer, &e);
                return Err(e);
            }
        };
        let response = match decode_request(frame, &limits) {
            Ok(request) => handle_request(request, engine, queue, config),
            Err(e) => {
                send_error(&mut writer, &e);
                return Err(e);
            }
        };
        write_frame(&mut writer, &encode_response(&response))?;
        writer.flush()?;
    }
}

fn send_error(writer: &mut impl Write, error: &WireError) {
    let response = WireResponse::ServerError {
        message: error.to_string(),
    };
    let _ = write_frame(writer, &encode_response(&response));
    let _ = writer.flush();
}

/// Maps one decoded request onto the engine/queue.  Never panics; store
/// failures become [`WireResponse::ServerError`].
fn handle_request(
    request: WireRequest,
    engine: &Arc<AuditEngine>,
    queue: &Arc<IngestQueue>,
    config: &ServeConfig,
) -> WireResponse {
    match request {
        WireRequest::Audit(audit) => WireResponse::Audit(engine.handle(&audit)),
        WireRequest::IngestBatch(records) => {
            let accepted = records.len() as u32;
            match queue.try_submit(records) {
                SubmitOutcome::Accepted { queue_depth } => WireResponse::IngestAck {
                    accepted,
                    queue_depth: queue_depth as u32,
                },
                SubmitOutcome::Busy { queue_depth } => WireResponse::Busy {
                    queue_depth: queue_depth as u32,
                },
            }
        }
        // The wire-facing barrier, NOT the owner-facing `flush()`: a remote
        // peer must be able to neither un-pause a deliberately paused
        // queue nor park one of the pool's workers without bound.
        WireRequest::Flush => match queue.barrier(config.flush_timeout) {
            // The watermark is read after the drain: everything submitted
            // before the flush is visible at (or below) it — the anchor a
            // client's read-your-writes polls against.
            Ok(()) => WireResponse::Flushed {
                ingested: engine.stats().ingested,
                watermark: engine.watermark(),
            },
            Err(e @ BarrierError::TimedOut { .. }) => WireResponse::ServerError {
                message: format!("flush failed: {}", e),
            },
            Err(BarrierError::Store(e)) => WireResponse::ServerError {
                message: format!("flush failed: {}", e),
            },
        },
        WireRequest::Stats => WireResponse::Stats(engine.stats()),
        WireRequest::Metrics => WireResponse::Metrics(engine.metrics()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_addr_rewrites_wildcards_to_the_matching_loopback() {
        let v4: SocketAddr = "0.0.0.0:7141".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:7141".parse().unwrap());
        let v6: SocketAddr = "[::]:7141".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:7141".parse().unwrap());
        // Concrete addresses pass through untouched.
        let concrete: SocketAddr = "192.0.2.7:9".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
        let loopback: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert_eq!(wake_addr(loopback), loopback);
    }
}
