//! The framing layer: length-prefixed, CRC-guarded, versioned frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! ┌─────────┬─────────┬───────────────────────────────────┐
//! │ len u32 │ crc u32 │ body (len bytes)                  │
//! └─────────┴─────────┴───────────────────────────────────┘
//!                       └─ version u8 │ tag u8 │ payload ─┘
//! ```
//!
//! The CRC (the same dependency-free CRC-32 the store's segment files use,
//! [`piprov_store::codec::crc32`]) covers the body; the body's first byte
//! is the wire version ([`WIRE_VERSION`]) and its second the message tag —
//! the same one-byte tag discipline as the store's
//! [`piprov_store::BodyFormat`], so an unknown version or message kind is a
//! *typed* decode error, never a guess.
//!
//! **Decode-side caps.**  The length prefix is attacker-controlled input:
//! [`read_frame`] refuses any frame longer than the configured cap
//! *before* allocating, so a hostile prefix (`0xFFFF_FFFF`) costs the
//! server a 4-byte compare, not 4 GiB of memory.  The message codec in
//! [`crate::codec`] applies the same discipline to every embedded count.

use bytes::Bytes;
use piprov_store::codec::crc32;
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Version byte every frame body starts with (the version encoders write).
///
/// Version 2 added the MVCC snapshot watermark to every audit response,
/// to `Flushed`, and to the engine-stats payload (`snapshots_published`,
/// `snapshot_lag`, `watermark`).  Version 3 added the wire-level
/// histograms (frame-decode, request-service, ingest queue-wait) to the
/// `Metrics` payload.  Version 4 added the tracing plane: an *additive*
/// trace field after every request payload (absent = untraced — a v3 peer
/// simply sends none), the `Traces`/`Traces` request/response pair, and
/// uptime, connection counters and histogram exemplars in the `Metrics`
/// payload.  Version 5 added the policy-pack plane: the
/// `LoadPack`/`ListPolicies` request pair (and their
/// `PackLoaded`/`PackRejected`/`Policies` responses), the pack version
/// stamped after every audit response's watermark, and the
/// known-names-plus-nearest payload on `UnknownPattern` — all additive, so
/// v3/v4 peers interoperate unchanged (they simply never send the new
/// tags, and their audit responses decode with pack version 0).  Version 6
/// added the causal-query plane: the `Why`/`Counterfactual` audit request
/// kinds with their typed `Why`/`Counterfactual` outcomes, the
/// `memo_reused` counter after every request-stats block, and the
/// per-policy counterfactual counters in the `Metrics` payload — again
/// additive, so v3..v5 peers interoperate unchanged.  Decoders
/// accept [`MIN_WIRE_VERSION`]..=[`WIRE_VERSION`];
/// anything else is refused with a typed
/// [`WireError::UnsupportedVersion`].
pub const WIRE_VERSION: u8 = 6;

/// Oldest version byte decoders still accept.  Version 3 bodies carry no
/// trace field and no v4 metrics extensions; both were added additively,
/// so a v3 peer interoperates unchanged.
pub const MIN_WIRE_VERSION: u8 = 3;

/// Default cap on the length prefix a peer will honour (16 MiB — far above
/// any legitimate message, far below a memory-exhaustion attack).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 << 20;

/// Default cap on the number of records any one decoded message may carry.
pub const DEFAULT_MAX_RECORDS: u32 = 65_536;

/// Decode-side caps applied to attacker-controlled sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLimits {
    /// Longest frame body accepted (the length prefix is checked against
    /// this before any allocation).
    pub max_frame_len: u32,
    /// Most records accepted in one `IngestBatch` or `Trail` message.
    pub max_records: u32,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_records: DEFAULT_MAX_RECORDS,
        }
    }
}

/// Everything that can go wrong at the wire and codec layers.
#[derive(Debug)]
pub enum WireError {
    /// An I/O error from the underlying stream.
    Io(std::io::Error),
    /// The length prefix exceeded the configured cap; nothing was
    /// allocated.
    FrameTooLarge {
        /// The hostile (or merely oversized) length prefix.
        len: u32,
        /// The configured cap it exceeded.
        max: u32,
    },
    /// The body did not match its CRC.
    ChecksumMismatch,
    /// The body's version byte is outside
    /// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The body was structurally invalid (truncated field, unknown tag,
    /// over-cap count, bad UTF-8, …).
    Malformed(String),
    /// A read timeout fired at a frame boundary — no header byte had
    /// arrived.  This is the server's idle tick between frames, not a
    /// failure: the stream is still positioned at the boundary and the
    /// caller may simply call [`read_frame`] again.  A timeout *mid-frame*
    /// is never this variant (it surfaces as [`WireError::Io`]), so
    /// retrying on `IdleTimeout` can never desynchronize the framing.
    IdleTimeout,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {}", e),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {} bytes exceeds the {} byte cap", len, max)
            }
            WireError::ChecksumMismatch => write!(f, "frame body failed its CRC check"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {} (speaking {})",
                    v, WIRE_VERSION
                )
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {}", what),
            WireError::IdleTimeout => write!(f, "idle read timeout at a frame boundary"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// `true` only for [`WireError::IdleTimeout`] — the between-frames
    /// tick it is safe to retry after.  A timeout that fires *mid-frame*
    /// reports as [`WireError::Io`] and returns `false` here: bytes were
    /// already consumed, so retrying would desynchronize the framing.
    pub fn is_timeout(&self) -> bool {
        matches!(self, WireError::IdleTimeout)
    }
}

/// Writes one frame (header + body).  The caller flushes.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(body.len() as u32).to_be_bytes());
    header[4..].copy_from_slice(&crc32(body).to_be_bytes());
    writer.write_all(&header)?;
    writer.write_all(body)?;
    Ok(())
}

/// Reads one frame, returning `Ok(None)` on a clean end-of-stream at a
/// frame boundary.
///
/// A read timeout that fires *before any header byte arrived* surfaces as
/// [`WireError::IdleTimeout`] and leaves the stream positioned at the
/// boundary, so the caller can poll a shutdown flag and simply call
/// again; a timeout mid-frame is a real [`WireError::Io`] error
/// ([`WireError::is_timeout`] distinguishes the two).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the length prefix exceeds `max_len`
/// (checked before allocating), [`WireError::ChecksumMismatch`] if the
/// body fails its CRC, [`WireError::Malformed`] on truncation mid-frame,
/// or [`WireError::Io`].
pub fn read_frame(reader: &mut impl Read, max_len: u32) -> Result<Option<Bytes>, WireError> {
    let mut header = [0u8; 8];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(WireError::Malformed("truncated frame header".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if filled == 0
                    && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                return Err(WireError::IdleTimeout);
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    let expected_crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Malformed("truncated frame body".into())
        } else {
            WireError::Io(e)
        }
    })?;
    if crc32(&body) != expected_crc {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some(Bytes::from(body)))
}

/// Tries to parse one complete frame from the front of `buf` — the
/// incremental counterpart of [`read_frame`] for non-blocking readers
/// that accumulate bytes as readiness delivers them (the event-loop
/// server core's read-accumulate state).
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read
/// more and call again) and `Ok(Some((consumed, body)))` when a full
/// frame was available: the caller drains `consumed` bytes off the front
/// of its buffer and owns the decoded body.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] as soon as the four length-prefix bytes
/// are present and over `max_len` (nothing further is buffered for a
/// hostile prefix), or [`WireError::ChecksumMismatch`] once the complete
/// body is present but fails its CRC.
pub fn try_parse_frame(buf: &[u8], max_len: u32) -> Result<Option<(usize, Bytes)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    if buf.len() < 8 {
        return Ok(None);
    }
    let expected_crc = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
    let total = 8 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[8..total];
    if crc32(body) != expected_crc {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some((total, Bytes::from(body.to_vec()))))
}

/// The first bytes of an HTTP GET request line — what a frame's length
/// prefix would be if the peer is actually a plaintext HTTP scraper
/// (`0x47455420` ≈ 1.19 GiB, far above any sane frame cap, so no framed
/// peer can collide with it).
pub const HTTP_GET_PREFIX: [u8; 4] = *b"GET ";

/// What [`read_frame_or_http`] found at the frame boundary.
#[derive(Debug)]
pub enum FrameOrHttp {
    /// Clean end-of-stream at the boundary.
    Eof,
    /// One complete, CRC-checked frame body.
    Frame(Bytes),
    /// The peer is speaking plaintext HTTP: the 8 bytes read as a frame
    /// header are actually the start of a `GET ` request line (returned
    /// so the caller can keep parsing the line from its beginning).
    HttpGet([u8; 8]),
}

/// Reads one frame like [`read_frame`], additionally detecting a
/// plaintext `GET ` where the length prefix would be — the `/metrics`
/// scrape path.  Timeout semantics are identical to [`read_frame`]:
/// a boundary stall is a retryable [`WireError::IdleTimeout`], a
/// mid-frame stall is [`WireError::Io`].
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_or_http(reader: &mut impl Read, max_len: u32) -> Result<FrameOrHttp, WireError> {
    let mut header = [0u8; 8];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(FrameOrHttp::Eof);
                }
                return Err(WireError::Malformed("truncated frame header".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if filled == 0
                    && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                return Err(WireError::IdleTimeout);
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    if header[..4] == HTTP_GET_PREFIX {
        return Ok(FrameOrHttp::HttpGet(header));
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    let expected_crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Malformed("truncated frame body".into())
        } else {
            WireError::Io(e)
        }
    })?;
    if crc32(&body) != expected_crc {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(FrameOrHttp::Frame(Bytes::from(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut out = Vec::new();
        write_frame(&mut out, b"hello").unwrap();
        write_frame(&mut out, b"").unwrap();
        let mut cursor = Cursor::new(out);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().unwrap().as_ref(),
            b"hello"
        );
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap().len(), 0);
        assert!(
            read_frame(&mut cursor, 1024).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocating() {
        // A 4 GiB length prefix with no body behind it: the cap check must
        // fire on the prefix alone.
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        frame.extend_from_slice(&0u32.to_be_bytes());
        let mut cursor = Cursor::new(frame);
        match read_frame(&mut cursor, 1 << 20) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("expected FrameTooLarge, got {:?}", other),
        }
    }

    #[test]
    fn bad_crc_is_a_typed_error() {
        let mut out = Vec::new();
        write_frame(&mut out, b"payload").unwrap();
        let last = out.len() - 1;
        out[last] ^= 0xFF;
        let mut cursor = Cursor::new(out);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_hang_or_panic() {
        let mut out = Vec::new();
        write_frame(&mut out, b"some body bytes").unwrap();
        // Mid-header.
        let mut cursor = Cursor::new(out[..5].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::Malformed(_))
        ));
        // Mid-body.
        let mut cursor = Cursor::new(out[..out.len() - 4].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(WireError::ChecksumMismatch.to_string().contains("CRC"));
        assert!(WireError::FrameTooLarge { len: 9, max: 8 }
            .to_string()
            .contains("cap"));
        assert!(WireError::UnsupportedVersion(9).to_string().contains("9"));
        assert!(!WireError::ChecksumMismatch.is_timeout());
        assert!(WireError::IdleTimeout.is_timeout());
    }

    #[test]
    fn incremental_parse_matches_the_blocking_reader_byte_for_byte() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"third frame body").unwrap();

        // Feed the accumulated buffer one byte at a time: every prefix
        // short of a full frame parses to None, and each completed frame
        // pops exactly once with the right body.
        let mut buf: Vec<u8> = Vec::new();
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        for byte in &wire {
            buf.push(*byte);
            while let Some((consumed, body)) = try_parse_frame(&buf, 1024).unwrap() {
                bodies.push(body.as_ref().to_vec());
                buf.drain(..consumed);
            }
        }
        assert!(buf.is_empty(), "every byte belonged to some frame");
        assert_eq!(
            bodies,
            vec![b"first".to_vec(), Vec::new(), b"third frame body".to_vec()]
        );
    }

    #[test]
    fn incremental_parse_rejects_hostile_prefixes_with_four_bytes() {
        // The cap fires as soon as the length prefix is readable — the
        // parser never asks for (or buffers toward) the advertised body.
        let hostile = u32::MAX.to_be_bytes();
        assert!(matches!(
            try_parse_frame(&hostile, 1 << 20),
            Err(WireError::FrameTooLarge { len: u32::MAX, .. })
        ));
        // Under four bytes nothing is decidable yet.
        assert!(matches!(try_parse_frame(&hostile[..3], 1 << 20), Ok(None)));
    }

    #[test]
    fn incremental_parse_checks_the_crc_only_on_the_full_body() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        // One byte short: undecidable, not yet an error.
        assert!(matches!(
            try_parse_frame(&wire[..wire.len() - 1], 1024),
            Ok(None)
        ));
        assert!(matches!(
            try_parse_frame(&wire, 1024),
            Err(WireError::ChecksumMismatch)
        ));
    }

    #[test]
    fn the_sniffing_reader_forks_frames_from_http() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"framed").unwrap();
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame_or_http(&mut cursor, 1024).unwrap(),
            FrameOrHttp::Frame(body) if body.as_ref() == b"framed"
        ));
        assert!(matches!(
            read_frame_or_http(&mut cursor, 1024).unwrap(),
            FrameOrHttp::Eof
        ));

        let mut http = Cursor::new(b"GET /metrics HTTP/1.1\r\n\r\n".to_vec());
        match read_frame_or_http(&mut http, 1024).unwrap() {
            FrameOrHttp::HttpGet(prefix) => assert_eq!(&prefix, b"GET /met"),
            other => panic!("expected HttpGet, got {:?}", other),
        }
    }

    /// Yields `prefix` bytes, then times out on every further read —
    /// simulating a stalled peer under a socket read timeout.
    struct StallAfter {
        prefix: Vec<u8>,
        served: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.served < self.prefix.len() {
                let n = buf.len().min(self.prefix.len() - self.served);
                buf[..n].copy_from_slice(&self.prefix[self.served..self.served + n]);
                self.served += n;
                Ok(n)
            } else {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "stalled"))
            }
        }
    }

    #[test]
    fn idle_timeout_is_retryable_but_a_mid_frame_stall_is_not() {
        // Timeout at the frame boundary: typed IdleTimeout, safe to retry.
        let mut idle = StallAfter {
            prefix: Vec::new(),
            served: 0,
        };
        let err = read_frame(&mut idle, 1024).unwrap_err();
        assert!(
            err.is_timeout(),
            "boundary stall is the idle tick: {:?}",
            err
        );

        // The same timeout after 3 header bytes were consumed must NOT be
        // retryable — a retry would read the remaining bytes as a fresh
        // header and desynchronize the framing.
        let mut frame = Vec::new();
        write_frame(&mut frame, b"payload").unwrap();
        let mut stalled = StallAfter {
            prefix: frame[..3].to_vec(),
            served: 0,
        };
        let err = read_frame(&mut stalled, 1024).unwrap_err();
        assert!(
            matches!(&err, WireError::Io(_)),
            "mid-header stall is a real error: {:?}",
            err
        );
        assert!(!err.is_timeout());

        // Likewise a stall mid-body (full header consumed).
        let mut stalled = StallAfter {
            prefix: frame[..frame.len() - 2].to_vec(),
            served: 0,
        };
        let err = read_frame(&mut stalled, 1024).unwrap_err();
        assert!(
            !err.is_timeout(),
            "mid-body stall is a real error: {:?}",
            err
        );
    }
}
