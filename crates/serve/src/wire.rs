//! The framing layer: length-prefixed, CRC-guarded, versioned frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! ┌─────────┬─────────┬───────────────────────────────────┐
//! │ len u32 │ crc u32 │ body (len bytes)                  │
//! └─────────┴─────────┴───────────────────────────────────┘
//!                       └─ version u8 │ tag u8 │ payload ─┘
//! ```
//!
//! The CRC (the same dependency-free CRC-32 the store's segment files use,
//! [`piprov_store::codec::crc32`]) covers the body; the body's first byte
//! is the wire version ([`WIRE_VERSION`]) and its second the message tag —
//! the same one-byte tag discipline as the store's
//! [`piprov_store::BodyFormat`], so an unknown version or message kind is a
//! *typed* decode error, never a guess.
//!
//! **Decode-side caps.**  The length prefix is attacker-controlled input:
//! [`read_frame`] refuses any frame longer than the configured cap
//! *before* allocating, so a hostile prefix (`0xFFFF_FFFF`) costs the
//! server a 4-byte compare, not 4 GiB of memory.  The message codec in
//! [`crate::codec`] applies the same discipline to every embedded count.

use bytes::Bytes;
use piprov_store::codec::crc32;
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Version byte every frame body starts with.
///
/// Version 2 added the MVCC snapshot watermark to every audit response,
/// to `Flushed`, and to the engine-stats payload (`snapshots_published`,
/// `snapshot_lag`, `watermark`); version-1 peers are refused with a typed
/// [`WireError::UnsupportedVersion`].
pub const WIRE_VERSION: u8 = 2;

/// Default cap on the length prefix a peer will honour (16 MiB — far above
/// any legitimate message, far below a memory-exhaustion attack).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 << 20;

/// Default cap on the number of records any one decoded message may carry.
pub const DEFAULT_MAX_RECORDS: u32 = 65_536;

/// Decode-side caps applied to attacker-controlled sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLimits {
    /// Longest frame body accepted (the length prefix is checked against
    /// this before any allocation).
    pub max_frame_len: u32,
    /// Most records accepted in one `IngestBatch` or `Trail` message.
    pub max_records: u32,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_records: DEFAULT_MAX_RECORDS,
        }
    }
}

/// Everything that can go wrong at the wire and codec layers.
#[derive(Debug)]
pub enum WireError {
    /// An I/O error from the underlying stream.
    Io(std::io::Error),
    /// The length prefix exceeded the configured cap; nothing was
    /// allocated.
    FrameTooLarge {
        /// The hostile (or merely oversized) length prefix.
        len: u32,
        /// The configured cap it exceeded.
        max: u32,
    },
    /// The body did not match its CRC.
    ChecksumMismatch,
    /// The body's version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The body was structurally invalid (truncated field, unknown tag,
    /// over-cap count, bad UTF-8, …).
    Malformed(String),
    /// A read timeout fired at a frame boundary — no header byte had
    /// arrived.  This is the server's idle tick between frames, not a
    /// failure: the stream is still positioned at the boundary and the
    /// caller may simply call [`read_frame`] again.  A timeout *mid-frame*
    /// is never this variant (it surfaces as [`WireError::Io`]), so
    /// retrying on `IdleTimeout` can never desynchronize the framing.
    IdleTimeout,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {}", e),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {} bytes exceeds the {} byte cap", len, max)
            }
            WireError::ChecksumMismatch => write!(f, "frame body failed its CRC check"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {} (speaking {})",
                    v, WIRE_VERSION
                )
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {}", what),
            WireError::IdleTimeout => write!(f, "idle read timeout at a frame boundary"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// `true` only for [`WireError::IdleTimeout`] — the between-frames
    /// tick it is safe to retry after.  A timeout that fires *mid-frame*
    /// reports as [`WireError::Io`] and returns `false` here: bytes were
    /// already consumed, so retrying would desynchronize the framing.
    pub fn is_timeout(&self) -> bool {
        matches!(self, WireError::IdleTimeout)
    }
}

/// Writes one frame (header + body).  The caller flushes.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(body.len() as u32).to_be_bytes());
    header[4..].copy_from_slice(&crc32(body).to_be_bytes());
    writer.write_all(&header)?;
    writer.write_all(body)?;
    Ok(())
}

/// Reads one frame, returning `Ok(None)` on a clean end-of-stream at a
/// frame boundary.
///
/// A read timeout that fires *before any header byte arrived* surfaces as
/// [`WireError::IdleTimeout`] and leaves the stream positioned at the
/// boundary, so the caller can poll a shutdown flag and simply call
/// again; a timeout mid-frame is a real [`WireError::Io`] error
/// ([`WireError::is_timeout`] distinguishes the two).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the length prefix exceeds `max_len`
/// (checked before allocating), [`WireError::ChecksumMismatch`] if the
/// body fails its CRC, [`WireError::Malformed`] on truncation mid-frame,
/// or [`WireError::Io`].
pub fn read_frame(reader: &mut impl Read, max_len: u32) -> Result<Option<Bytes>, WireError> {
    let mut header = [0u8; 8];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(WireError::Malformed("truncated frame header".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if filled == 0
                    && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                return Err(WireError::IdleTimeout);
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    let expected_crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Malformed("truncated frame body".into())
        } else {
            WireError::Io(e)
        }
    })?;
    if crc32(&body) != expected_crc {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some(Bytes::from(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut out = Vec::new();
        write_frame(&mut out, b"hello").unwrap();
        write_frame(&mut out, b"").unwrap();
        let mut cursor = Cursor::new(out);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().unwrap().as_ref(),
            b"hello"
        );
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap().len(), 0);
        assert!(
            read_frame(&mut cursor, 1024).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocating() {
        // A 4 GiB length prefix with no body behind it: the cap check must
        // fire on the prefix alone.
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        frame.extend_from_slice(&0u32.to_be_bytes());
        let mut cursor = Cursor::new(frame);
        match read_frame(&mut cursor, 1 << 20) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("expected FrameTooLarge, got {:?}", other),
        }
    }

    #[test]
    fn bad_crc_is_a_typed_error() {
        let mut out = Vec::new();
        write_frame(&mut out, b"payload").unwrap();
        let last = out.len() - 1;
        out[last] ^= 0xFF;
        let mut cursor = Cursor::new(out);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_hang_or_panic() {
        let mut out = Vec::new();
        write_frame(&mut out, b"some body bytes").unwrap();
        // Mid-header.
        let mut cursor = Cursor::new(out[..5].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::Malformed(_))
        ));
        // Mid-body.
        let mut cursor = Cursor::new(out[..out.len() - 4].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(WireError::ChecksumMismatch.to_string().contains("CRC"));
        assert!(WireError::FrameTooLarge { len: 9, max: 8 }
            .to_string()
            .contains("cap"));
        assert!(WireError::UnsupportedVersion(9).to_string().contains("9"));
        assert!(!WireError::ChecksumMismatch.is_timeout());
        assert!(WireError::IdleTimeout.is_timeout());
    }

    /// Yields `prefix` bytes, then times out on every further read —
    /// simulating a stalled peer under a socket read timeout.
    struct StallAfter {
        prefix: Vec<u8>,
        served: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.served < self.prefix.len() {
                let n = buf.len().min(self.prefix.len() - self.served);
                buf[..n].copy_from_slice(&self.prefix[self.served..self.served + n]);
                self.served += n;
                Ok(n)
            } else {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "stalled"))
            }
        }
    }

    #[test]
    fn idle_timeout_is_retryable_but_a_mid_frame_stall_is_not() {
        // Timeout at the frame boundary: typed IdleTimeout, safe to retry.
        let mut idle = StallAfter {
            prefix: Vec::new(),
            served: 0,
        };
        let err = read_frame(&mut idle, 1024).unwrap_err();
        assert!(
            err.is_timeout(),
            "boundary stall is the idle tick: {:?}",
            err
        );

        // The same timeout after 3 header bytes were consumed must NOT be
        // retryable — a retry would read the remaining bytes as a fresh
        // header and desynchronize the framing.
        let mut frame = Vec::new();
        write_frame(&mut frame, b"payload").unwrap();
        let mut stalled = StallAfter {
            prefix: frame[..3].to_vec(),
            served: 0,
        };
        let err = read_frame(&mut stalled, 1024).unwrap_err();
        assert!(
            matches!(&err, WireError::Io(_)),
            "mid-header stall is a real error: {:?}",
            err
        );
        assert!(!err.is_timeout());

        // Likewise a stall mid-body (full header consumed).
        let mut stalled = StallAfter {
            prefix: frame[..frame.len() - 2].to_vec(),
            served: 0,
        };
        let err = read_frame(&mut stalled, 1024).unwrap_err();
        assert!(
            !err.is_timeout(),
            "mid-body stall is a real error: {:?}",
            err
        );
    }
}
