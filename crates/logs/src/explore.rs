//! Exhaustive exploration of the reduction state space.
//!
//! The meta-theory results are universally quantified over reachable
//! systems.  For small systems we can enumerate the whole reachable state
//! space (deduplicating structurally congruent states) and check an
//! invariant at every state — a lightweight model-checking harness used by
//! the meta-theory test suite and by experiment E7.

use crate::monitored::{monitored_successors, MonitoredSystem};
use crate::properties::has_correct_provenance;
use piprov_core::configuration::canonical_fingerprint;
use piprov_core::pattern::PatternLanguage;
use piprov_core::reduction::ReductionError;
use piprov_core::system::System;
use std::collections::HashSet;
use std::fmt;

/// Options bounding an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Maximum number of reduction steps along any path.
    pub max_depth: usize,
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_depth: 32,
            max_states: 10_000,
        }
    }
}

/// Summary of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Number of distinct (up to structural congruence) states visited.
    pub states: usize,
    /// Number of transitions followed.
    pub transitions: usize,
    /// Whether the exploration was exhaustive (false if a bound was hit).
    pub exhaustive: bool,
}

impl fmt::Display for ExploreOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions{}",
            self.states,
            self.transitions,
            if self.exhaustive { "" } else { " (bounded)" }
        )
    }
}

/// Explores every system reachable from `initial` (deduplicated up to the
/// structural-congruence fingerprint), calling `visit` on each.  If `visit`
/// returns `false` the exploration stops early and the offending system is
/// returned.
///
/// # Errors
///
/// Propagates reduction errors from malformed systems.
pub fn explore_systems<P, L>(
    initial: &System<P>,
    matcher: &L,
    options: ExploreOptions,
    mut visit: impl FnMut(&System<P>) -> bool,
) -> Result<Result<ExploreOutcome, Box<System<P>>>, ReductionError>
where
    P: Clone + fmt::Display,
    L: PatternLanguage<Pattern = P>,
{
    let mut seen: HashSet<String> = HashSet::new();
    let mut frontier = vec![(initial.clone(), 0usize)];
    seen.insert(canonical_fingerprint(initial));
    let mut transitions = 0usize;
    let mut exhaustive = true;
    while let Some((system, depth)) = frontier.pop() {
        if !visit(&system) {
            return Ok(Err(Box::new(system)));
        }
        if depth >= options.max_depth {
            exhaustive = false;
            continue;
        }
        for (_, successor) in piprov_core::reduction::successors(&system, matcher)? {
            transitions += 1;
            let fp = canonical_fingerprint(&successor);
            if seen.contains(&fp) {
                continue;
            }
            if seen.len() >= options.max_states {
                exhaustive = false;
                continue;
            }
            seen.insert(fp);
            frontier.push((successor, depth + 1));
        }
    }
    Ok(Ok(ExploreOutcome {
        states: seen.len(),
        transitions,
        exhaustive,
    }))
}

/// Explores every *monitored* system reachable from `initial` and checks
/// provenance correctness (Theorem 1) at each state.
///
/// Returns the exploration outcome or the first monitored state violating
/// correctness.  Monitored states are not deduplicated (two paths reaching
/// congruent systems carry different logs), so the bounds of `options`
/// apply to the number of *monitored* states visited.
///
/// # Errors
///
/// Propagates reduction errors from malformed systems.
pub fn explore_correctness<P, L>(
    initial: &MonitoredSystem<P>,
    matcher: &L,
    options: ExploreOptions,
) -> Result<Result<ExploreOutcome, Box<MonitoredSystem<P>>>, ReductionError>
where
    P: Clone + PartialEq,
    L: PatternLanguage<Pattern = P>,
{
    let mut frontier = vec![(initial.clone(), 0usize)];
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut exhaustive = true;
    while let Some((state, depth)) = frontier.pop() {
        states += 1;
        if !has_correct_provenance(&state) {
            return Ok(Err(Box::new(state)));
        }
        if states >= options.max_states {
            exhaustive = false;
            continue;
        }
        if depth >= options.max_depth {
            exhaustive = false;
            continue;
        }
        for (_, successor) in monitored_successors(&state, matcher)? {
            transitions += 1;
            frontier.push((successor, depth + 1));
        }
    }
    Ok(Ok(ExploreOutcome {
        states,
        transitions,
        exhaustive,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::pattern::{AnyPattern, TrivialPatterns};
    use piprov_core::process::Process;
    use piprov_core::value::Identifier;

    fn market() -> System<AnyPattern> {
        System::par_all(vec![
            System::located(
                "a",
                Process::output(Identifier::channel("n"), Identifier::channel("v1")),
            ),
            System::located(
                "b",
                Process::output(Identifier::channel("n"), Identifier::channel("v2")),
            ),
            System::located(
                "c",
                Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil()),
            ),
        ])
    }

    #[test]
    fn explores_all_interleavings_of_the_market() {
        let outcome = explore_systems(
            &market(),
            &TrivialPatterns,
            ExploreOptions::default(),
            |_| true,
        )
        .unwrap()
        .unwrap();
        assert!(outcome.exhaustive);
        // States: initial, a-sent, b-sent, both-sent, after c consumed one of
        // the two (with the other still pending), and both-consumed-variants
        // collapse structurally: count is at least 6.
        assert!(outcome.states >= 6, "got {}", outcome);
        assert!(outcome.transitions >= outcome.states - 1);
    }

    #[test]
    fn visitor_can_abort() {
        let result = explore_systems(
            &market(),
            &TrivialPatterns,
            ExploreOptions::default(),
            |s| s.message_count() == 0,
        )
        .unwrap();
        assert!(result.is_err(), "a state with a message in flight exists");
    }

    #[test]
    fn bounded_exploration_reports_non_exhaustive() {
        let outcome = explore_systems(
            &market(),
            &TrivialPatterns,
            ExploreOptions {
                max_depth: 1,
                max_states: 1_000,
            },
            |_| true,
        )
        .unwrap()
        .unwrap();
        assert!(!outcome.exhaustive);
    }

    #[test]
    fn correctness_holds_across_the_market_state_space() {
        let outcome = explore_correctness(
            &MonitoredSystem::new(market()),
            &TrivialPatterns,
            ExploreOptions::default(),
        )
        .unwrap();
        match outcome {
            Ok(o) => {
                assert!(o.exhaustive);
                assert!(o.states >= 8);
            }
            Err(bad) => panic!("correctness violated in {}", bad.system),
        }
    }
}
