//! The denotation of provenance as a log (Definition 2).
//!
//! ```text
//! ⟦V : ε⟧       = ∅
//! ⟦V : a!κ'; κ⟧ = a.snd(x, V); (⟦V : κ⟧ | ⟦x : κ'⟧)
//! ⟦V : a?κ'; κ⟧ = a.rcv(x, V); (⟦V : κ⟧ | ⟦x : κ'⟧)
//! ```
//!
//! where `x` is a fresh variable standing for the (unknown) channel the
//! exchange happened on.  The resulting log is a *partial* record of the
//! past: it neither names the channels used nor orders the events of the
//! channel's provenance relative to the value's own older events.

use crate::action::{Action, Term};
use crate::log::Log;
use piprov_core::name::Variable;
use piprov_core::provenance::{Direction, Provenance};
use piprov_core::value::AnnotatedValue;

/// A supply of fresh log variables (`x0, x1, …`), used for the unknown
/// channels introduced by the denotation.
#[derive(Debug, Default, Clone)]
pub struct VariableSupply {
    counter: u64,
}

impl VariableSupply {
    /// A supply starting at `x0`.
    pub fn new() -> Self {
        VariableSupply::default()
    }

    /// Produces the next fresh variable.
    pub fn fresh(&mut self) -> Variable {
        let v = Variable::new(format!("x{}", self.counter));
        self.counter += 1;
        v
    }
}

/// Computes `⟦term : provenance⟧` with fresh variables drawn from `supply`.
pub fn denote_term(term: &Term, provenance: &Provenance, supply: &mut VariableSupply) -> Log {
    match provenance.head() {
        None => Log::Empty,
        Some(event) => {
            let rest = provenance.tail().cloned().unwrap_or_else(Provenance::empty);
            let chan_var = supply.fresh();
            let chan_term = Term::Variable(chan_var.clone());
            let action = match event.direction {
                Direction::Output => {
                    Action::send(event.principal.clone(), chan_term.clone(), term.clone())
                }
                Direction::Input => {
                    Action::receive(event.principal.clone(), chan_term.clone(), term.clone())
                }
            };
            let older = denote_term(term, &rest, supply);
            let channel_history = denote_term(&chan_term, &event.channel_provenance, supply);
            older.par(channel_history).prefixed(action)
        }
    }
}

/// Computes the denotation `⟦v : κ⟧` of an annotated value.
pub fn denote(value: &AnnotatedValue) -> Log {
    let mut supply = VariableSupply::new();
    denote_term(
        &Term::Value(value.value.clone()),
        &value.provenance,
        &mut supply,
    )
}

/// Computes the denotation of a value whose plain part may itself be
/// unknown (a restricted channel replaced by `?` by the `values(−)`
/// function of monitored systems).
pub fn denote_observed(term: &Term, provenance: &Provenance) -> Log {
    let mut supply = VariableSupply::new();
    denote_term(term, provenance, &mut supply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::Principal;
    use piprov_core::provenance::Event;

    #[test]
    fn empty_provenance_denotes_empty_log() {
        let v = AnnotatedValue::channel("v");
        assert_eq!(denote(&v), Log::Empty);
    }

    #[test]
    fn single_output_event() {
        // ⟦v : a!ε⟧ = a.snd(x0, v)
        let v = AnnotatedValue::channel("v").sent_by(&Principal::new("a"), &Provenance::empty());
        let log = denote(&v);
        assert_eq!(log.action_count(), 1);
        assert_eq!(log.to_string(), "a.snd(x0, v)");
        // The unknown channel variable is bound by the action itself.
        assert!(log.is_closed());
    }

    #[test]
    fn output_then_input_orders_events() {
        // κ = b?ε; a!ε   (b received it most recently, a sent it before)
        let v = AnnotatedValue::channel("v")
            .sent_by(&Principal::new("a"), &Provenance::empty())
            .received_by(&Principal::new("b"), &Provenance::empty());
        let log = denote(&v);
        assert_eq!(log.action_count(), 2);
        // b.rcv must be more recent (closer to the root) than a.snd.
        let actions = log.actions();
        assert_eq!(actions[0].principal, Principal::new("b"));
        assert_eq!(actions[1].principal, Principal::new("a"));
        assert_eq!(log.depth(), 2);
    }

    #[test]
    fn channel_provenance_becomes_a_sibling_branch() {
        // κm = c!ε (the channel was sent by c); κ = a!κm
        let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
        let v = AnnotatedValue::channel("v").sent_by(&Principal::new("a"), &km);
        let log = denote(&v);
        assert_eq!(log.action_count(), 2);
        // Root is a.snd(x0, v); below it, in parallel, c.snd(x1, x0).
        match &log {
            Log::Prefix(action, below) => {
                assert_eq!(action.principal, Principal::new("a"));
                let subject_var = action.subject.as_variable().unwrap().clone();
                let inner_actions = below.actions();
                assert_eq!(inner_actions.len(), 1);
                assert_eq!(inner_actions[0].principal, Principal::new("c"));
                // The channel's own history talks about the channel variable.
                assert_eq!(inner_actions[0].object, Term::Variable(subject_var));
            }
            other => panic!("unexpected log {:?}", other),
        }
        assert!(log.is_closed(), "x0 is bound by the root action");
    }

    #[test]
    fn siblings_do_not_order_value_and_channel_history() {
        // κ = a?κm; κv with κm = d!ε and κv = c!ε: the denotation must not
        // impose an order between d's and c's actions.
        let km = Provenance::single(Event::output(Principal::new("d"), Provenance::empty()));
        let v = AnnotatedValue::channel("v")
            .sent_by(&Principal::new("c"), &Provenance::empty())
            .received_by(&Principal::new("a"), &km);
        let log = denote(&v);
        match &log {
            Log::Prefix(root, below) => {
                assert_eq!(root.principal, Principal::new("a"));
                match &**below {
                    Log::Par(_, _) => {}
                    other => panic!("expected parallel branches, got {}", other),
                }
            }
            other => panic!("unexpected log {:?}", other),
        }
        assert_eq!(log.action_count(), 3);
    }

    #[test]
    fn unknown_value_denotes_with_question_mark() {
        let prov = Provenance::single(Event::output(Principal::new("a"), Provenance::empty()));
        let log = denote_observed(&Term::Unknown, &prov);
        assert_eq!(log.to_string(), "a.snd(x0, ?)");
    }

    #[test]
    fn fresh_variables_are_distinct() {
        let mut supply = VariableSupply::new();
        let a = supply.fresh();
        let b = supply.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn denotation_size_matches_total_provenance_size() {
        // Each provenance event (top-level or nested) contributes exactly one action.
        let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
        let v = AnnotatedValue::channel("v")
            .sent_by(&Principal::new("a"), &km)
            .received_by(&Principal::new("b"), &km);
        assert_eq!(denote(&v).action_count(), v.provenance.total_size());
    }
}
