//! Provenance correctness and completeness (§3.4, §3.5).
//!
//! * A monitored system has **correct provenance** (Definition 3) if for
//!   every annotated value `V:κ` in `values(M)`, `⟦V:κ⟧ ⊑ log(M)`: what the
//!   provenance claims about the past is supported by what actually
//!   happened.  Theorem 1 states that correctness is preserved by `→ₘ`.
//! * A monitored system has **complete provenance** (Definition 4) if
//!   `log(M) ⊑ ⟦V:κ⟧` for every value: each value knows everything that
//!   happened.  Proposition 3 shows completeness is *not* preserved, with a
//!   one-step counterexample.
//!
//! This module provides checkers for both properties, detailed reports for
//! debugging violations, and the paper's counterexample as a constructor.

use crate::denotation::denote_observed;
use crate::log::Log;
use crate::monitored::{monitored_successors, MonitoredSystem, ObservedValue};
use crate::order::log_leq;
use piprov_core::pattern::{AnyPattern, PatternLanguage};
use piprov_core::process::Process;
use piprov_core::reduction::ReductionError;
use piprov_core::system::System;
use piprov_core::value::Identifier;
use std::fmt;

/// The verdict for one annotated value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueVerdict {
    /// The value that was checked.
    pub value: ObservedValue,
    /// Its provenance denotation.
    pub denotation: Log,
    /// Whether `⟦V:κ⟧ ⊑ log(M)` holds.
    pub correct: bool,
    /// Whether `log(M) ⊑ ⟦V:κ⟧` holds.
    pub complete: bool,
}

/// The result of checking a monitored system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceReport {
    /// Verdicts, one per value occurrence in the system.
    pub verdicts: Vec<ValueVerdict>,
    /// Number of actions in the global log at check time.
    pub log_actions: usize,
}

impl ProvenanceReport {
    /// `true` if every value has correct provenance (Definition 3).
    pub fn is_correct(&self) -> bool {
        self.verdicts.iter().all(|v| v.correct)
    }

    /// `true` if every value has complete provenance (Definition 4).
    pub fn is_complete(&self) -> bool {
        self.verdicts.iter().all(|v| v.complete)
    }

    /// The values whose provenance is not supported by the log.
    pub fn incorrect_values(&self) -> Vec<&ValueVerdict> {
        self.verdicts.iter().filter(|v| !v.correct).collect()
    }

    /// The values that do not know the whole history of the system.
    pub fn incomplete_values(&self) -> Vec<&ValueVerdict> {
        self.verdicts.iter().filter(|v| !v.complete).collect()
    }
}

impl fmt::Display for ProvenanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "provenance report: {} values, log has {} actions",
            self.verdicts.len(),
            self.log_actions
        )?;
        for v in &self.verdicts {
            writeln!(
                f,
                "  {} -> correct={} complete={}",
                v.value, v.correct, v.complete
            )?;
        }
        Ok(())
    }
}

/// Checks correctness and completeness of every value in a monitored
/// system and returns the detailed report.
pub fn check_provenance<P>(monitored: &MonitoredSystem<P>) -> ProvenanceReport {
    let log = monitored.log();
    let verdicts = monitored
        .values()
        .into_iter()
        .map(|observed| {
            let denotation = denote_observed(&observed.term, &observed.provenance);
            let correct = log_leq(&denotation, log);
            // Completeness compares the closed global log against a possibly
            // open denotation; it only makes sense (and can only hold) when
            // the denotation is closed, which is the case exactly when the
            // provenance is empty (no unknown-channel variables appear free
            // anyway, they are bound), so compare directly when possible.
            let complete = denotation.is_closed() && log.is_closed() && {
                // log ⊑ ⟦V:κ⟧ requires the right-hand side closed; our
                // denotations are closed (channel variables are bound), so
                // reuse the same decision procedure with sides swapped —
                // but the procedure requires a *variable-free* right side.
                // Denotations with events always contain variables, so
                // completeness can only hold for the empty log.
                if denotation.actions().iter().all(|a| a.is_closed()) {
                    log_leq(log, &denotation)
                } else {
                    log.is_empty()
                }
            };
            ValueVerdict {
                value: observed,
                denotation,
                correct,
                complete,
            }
        })
        .collect();
    ProvenanceReport {
        verdicts,
        log_actions: monitored.log().action_count(),
    }
}

/// `true` iff the monitored system has correct provenance (Definition 3).
pub fn has_correct_provenance<P>(monitored: &MonitoredSystem<P>) -> bool {
    check_provenance(monitored).is_correct()
}

/// `true` iff the monitored system has complete provenance (Definition 4).
pub fn has_complete_provenance<P>(monitored: &MonitoredSystem<P>) -> bool {
    check_provenance(monitored).is_complete()
}

/// Checks Theorem 1 along every path of the monitored reduction graph up to
/// `depth` steps: starting from a correct monitored system, every reachable
/// monitored system must be correct.
///
/// Returns the number of monitored states checked, or the first violating
/// state.
///
/// # Errors
///
/// Propagates reduction errors (malformed systems).
pub fn check_correctness_preserved<P, L>(
    initial: &MonitoredSystem<P>,
    matcher: &L,
    depth: usize,
    max_states: usize,
) -> Result<Result<usize, Box<MonitoredSystem<P>>>, ReductionError>
where
    P: Clone + PartialEq,
    L: PatternLanguage<Pattern = P>,
{
    let mut frontier = vec![initial.clone()];
    let mut checked = 0usize;
    for _ in 0..=depth {
        let mut next_frontier = Vec::new();
        for state in frontier {
            if checked >= max_states {
                return Ok(Ok(checked));
            }
            checked += 1;
            if !has_correct_provenance(&state) {
                return Ok(Err(Box::new(state)));
            }
            for (_, succ) in monitored_successors(&state, matcher)? {
                next_frontier.push(succ);
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    Ok(Ok(checked))
}

/// The counterexample of Proposition 3: `∅ ▷ a[m:ε⟨v:ε⟩] ‖ b[m:ε(x).P]`
/// with `P = 0`.
///
/// The initial monitored system has complete provenance (vacuously: the log
/// is empty), but after the send the message's value only knows about the
/// send, while `m:ε` in `b`'s input knows nothing at all, so completeness
/// fails.
pub fn incompleteness_counterexample() -> MonitoredSystem<AnyPattern> {
    MonitoredSystem::new(System::par(
        System::located(
            "a",
            Process::output(Identifier::channel("m"), Identifier::channel("v")),
        ),
        System::located(
            "b",
            Process::input(Identifier::channel("m"), AnyPattern, "x", Process::nil()),
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitored::MonitoredExecutor;
    use piprov_core::pattern::TrivialPatterns;
    use piprov_core::system::Message;
    use piprov_core::value::AnnotatedValue;
    use piprov_core::Provenance;

    #[test]
    fn pristine_system_is_correct_and_complete() {
        let m = incompleteness_counterexample();
        let report = check_provenance(&m);
        assert!(report.is_correct());
        assert!(report.is_complete(), "empty log, empty provenance");
    }

    #[test]
    fn correctness_is_preserved_one_step_but_completeness_is_not() {
        // Proposition 3: after a's send, completeness fails.
        let m = incompleteness_counterexample();
        let succ = monitored_successors(&m, &TrivialPatterns).unwrap();
        assert_eq!(succ.len(), 1);
        let after_send = &succ[0].1;
        assert!(has_correct_provenance(after_send), "Theorem 1");
        assert!(
            !has_complete_provenance(after_send),
            "Proposition 3: the input's channel value knows nothing of the send"
        );
        let report = check_provenance(after_send);
        assert!(!report.incomplete_values().is_empty());
        assert!(report.incorrect_values().is_empty());
    }

    #[test]
    fn forged_provenance_is_detected_as_incorrect() {
        // A message claiming to have been sent by c, while the log records
        // nothing of the sort.
        let forged = AnnotatedValue::channel("v").sent_by(
            &piprov_core::name::Principal::new("c"),
            &Provenance::empty(),
        );
        let m: MonitoredSystem<AnyPattern> =
            MonitoredSystem::new(System::message(Message::new("m", forged)));
        assert!(!has_correct_provenance(&m));
        let report = check_provenance(&m);
        assert_eq!(report.incorrect_values().len(), 1);
        assert!(report.to_string().contains("correct=false"));
    }

    #[test]
    fn correctness_preserved_over_full_runs() {
        // Theorem 1 checked along every path of a small system.
        let m = incompleteness_counterexample();
        let result = check_correctness_preserved(&m, &TrivialPatterns, 10, 1_000).unwrap();
        match result {
            Ok(states) => assert!(states >= 3),
            Err(bad) => panic!("correctness violated at {}", bad.system),
        }
    }

    #[test]
    fn monitored_executor_runs_stay_correct() {
        let relay: System<AnyPattern> = System::par_all(vec![
            System::located(
                "a",
                Process::output(Identifier::channel("c0"), Identifier::channel("v")),
            ),
            System::located(
                "s",
                Process::input(
                    Identifier::channel("c0"),
                    AnyPattern,
                    "x",
                    Process::output(Identifier::channel("c1"), Identifier::variable("x")),
                ),
            ),
            System::located(
                "b",
                Process::input(Identifier::channel("c1"), AnyPattern, "y", Process::nil()),
            ),
        ]);
        let mut exec = MonitoredExecutor::new(&relay, TrivialPatterns);
        loop {
            let m = exec.as_monitored_system();
            assert!(
                has_correct_provenance(&m),
                "correctness must hold at every step"
            );
            if exec.step().unwrap().is_none() {
                break;
            }
        }
    }
}
