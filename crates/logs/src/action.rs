//! Actions recorded in logs (§3.1).
//!
//! ```text
//! α ::= a.snd(V, V) | a.rcv(V, V) | a.ift(V, V) | a.iff(V, V)
//! ```
//!
//! The operands range over `Dx = V ∪ X ∪ {?}`: plain values, variables
//! standing for unknown values, and the special marker `?` denoting an
//! unknown private channel name.

use piprov_core::name::{Principal, Variable};
use piprov_core::reduction::{StepEvent, StepKind};
use piprov_core::value::Value;
use std::fmt;

/// An operand of an action: a known value, an unknown value named by a
/// variable, or the anonymous unknown `?`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A known plain value.
    Value(Value),
    /// An unknown value, named so that several occurrences can be related.
    Variable(Variable),
    /// An unknown private channel name (the paper's `?`).
    Unknown,
}

impl Term {
    /// A channel-valued term.
    pub fn channel(name: impl Into<piprov_core::name::Channel>) -> Self {
        Term::Value(Value::Channel(name.into()))
    }

    /// A principal-valued term.
    pub fn principal(name: impl Into<Principal>) -> Self {
        Term::Value(Value::Principal(name.into()))
    }

    /// A variable term.
    pub fn variable(name: impl Into<Variable>) -> Self {
        Term::Variable(name.into())
    }

    /// `true` if the term is a known value.
    pub fn is_value(&self) -> bool {
        matches!(self, Term::Value(_))
    }

    /// The variable, if the term is one.
    pub fn as_variable(&self) -> Option<&Variable> {
        match self {
            Term::Variable(x) => Some(x),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Value(v) => write!(f, "{}", v),
            Term::Variable(x) => write!(f, "{}", x),
            Term::Unknown => write!(f, "?"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Value(v)
    }
}

impl From<Variable> for Term {
    fn from(x: Variable) -> Self {
        Term::Variable(x)
    }
}

/// The four kinds of logged action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActionKind {
    /// `a.snd(V, V')`: `a` sent `V'` on `V`.
    Send,
    /// `a.rcv(V, V')`: `a` received `V'` on `V`.
    Receive,
    /// `a.ift(V, V')`: `a` compared `V` and `V'` and they were equal.
    IfTrue,
    /// `a.iff(V, V')`: `a` compared `V` and `V'` and they differed.
    IfFalse,
}

impl ActionKind {
    /// The textual tag used in the paper.
    pub fn tag(self) -> &'static str {
        match self {
            ActionKind::Send => "snd",
            ActionKind::Receive => "rcv",
            ActionKind::IfTrue => "ift",
            ActionKind::IfFalse => "iff",
        }
    }
}

/// A logged action `a.kind(subject, object)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Action {
    /// The acting principal.
    pub principal: Principal,
    /// What was done.
    pub kind: ActionKind,
    /// First operand (the channel for send/receive, the left value for if).
    pub subject: Term,
    /// Second operand (the value for send/receive, the right value for if).
    pub object: Term,
}

impl Action {
    /// Builds `a.snd(subject, object)`.
    pub fn send(principal: impl Into<Principal>, subject: Term, object: Term) -> Self {
        Action {
            principal: principal.into(),
            kind: ActionKind::Send,
            subject,
            object,
        }
    }

    /// Builds `a.rcv(subject, object)`.
    pub fn receive(principal: impl Into<Principal>, subject: Term, object: Term) -> Self {
        Action {
            principal: principal.into(),
            kind: ActionKind::Receive,
            subject,
            object,
        }
    }

    /// Builds `a.ift(subject, object)`.
    pub fn if_true(principal: impl Into<Principal>, subject: Term, object: Term) -> Self {
        Action {
            principal: principal.into(),
            kind: ActionKind::IfTrue,
            subject,
            object,
        }
    }

    /// Builds `a.iff(subject, object)`.
    pub fn if_false(principal: impl Into<Principal>, subject: Term, object: Term) -> Self {
        Action {
            principal: principal.into(),
            kind: ActionKind::IfFalse,
            subject,
            object,
        }
    }

    /// The variables occurring in the action.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for t in [&self.subject, &self.object] {
            if let Term::Variable(x) = t {
                if !out.contains(x) {
                    out.push(x.clone());
                }
            }
        }
        out
    }

    /// `true` if the action mentions no variables.
    pub fn is_closed(&self) -> bool {
        self.variables().is_empty()
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}({}, {})",
            self.principal,
            self.kind.tag(),
            self.subject,
            self.object
        )
    }
}

/// Converts a reduction step of the core semantics into the actions the
/// monitored semantics (Table 4) records for it.
///
/// The paper's rules are monadic; for polyadic messages we record one
/// `snd`/`rcv` action per payload value, all on the same channel — each
/// value's provenance denotation then finds its own supporting action in
/// the log.
pub fn actions_of_step(event: &StepEvent) -> Vec<Action> {
    match &event.kind {
        StepKind::Send { channel, payload } => payload
            .iter()
            .map(|v| {
                Action::send(
                    event.principal.clone(),
                    Term::Value(Value::Channel(channel.clone())),
                    Term::Value(v.clone()),
                )
            })
            .collect(),
        StepKind::Receive {
            channel, payload, ..
        } => payload
            .iter()
            .map(|v| {
                Action::receive(
                    event.principal.clone(),
                    Term::Value(Value::Channel(channel.clone())),
                    Term::Value(v.clone()),
                )
            })
            .collect(),
        StepKind::IfTrue { lhs, rhs } => vec![Action::if_true(
            event.principal.clone(),
            Term::Value(lhs.clone()),
            Term::Value(rhs.clone()),
        )],
        StepKind::IfFalse { lhs, rhs } => vec![Action::if_false(
            event.principal.clone(),
            Term::Value(lhs.clone()),
            Term::Value(rhs.clone()),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::Channel;

    #[test]
    fn term_display() {
        assert_eq!(Term::channel("m").to_string(), "m");
        assert_eq!(Term::variable("x").to_string(), "x");
        assert_eq!(Term::Unknown.to_string(), "?");
        assert_eq!(Term::principal("a").to_string(), "a");
    }

    #[test]
    fn action_display_matches_paper() {
        let a = Action::send("a", Term::channel("m"), Term::channel("v"));
        assert_eq!(a.to_string(), "a.snd(m, v)");
        let b = Action::receive("b", Term::variable("x"), Term::channel("v"));
        assert_eq!(b.to_string(), "b.rcv(x, v)");
        let c = Action::if_true("c", Term::channel("m"), Term::channel("m"));
        assert_eq!(c.to_string(), "c.ift(m, m)");
        let d = Action::if_false("c", Term::channel("m"), Term::channel("n"));
        assert_eq!(d.to_string(), "c.iff(m, n)");
    }

    #[test]
    fn variables_and_closedness() {
        let open = Action::send("a", Term::variable("x"), Term::channel("v"));
        assert_eq!(open.variables(), vec![Variable::new("x")]);
        assert!(!open.is_closed());
        let closed = Action::send("a", Term::channel("m"), Term::Unknown);
        assert!(closed.is_closed(), "? is not a variable");
    }

    #[test]
    fn actions_of_send_step_are_one_per_value() {
        let event = StepEvent {
            principal: Principal::new("a"),
            kind: StepKind::Send {
                channel: Channel::new("m"),
                payload: vec![
                    Value::Channel(Channel::new("v")),
                    Value::Channel(Channel::new("w")),
                ],
            },
        };
        let actions = actions_of_step(&event);
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0].to_string(), "a.snd(m, v)");
        assert_eq!(actions[1].to_string(), "a.snd(m, w)");
    }

    #[test]
    fn actions_of_if_steps() {
        let event = StepEvent {
            principal: Principal::new("a"),
            kind: StepKind::IfFalse {
                lhs: Value::Channel(Channel::new("m")),
                rhs: Value::Channel(Channel::new("n")),
            },
        };
        let actions = actions_of_step(&event);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].kind, ActionKind::IfFalse);
    }
}
