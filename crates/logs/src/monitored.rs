//! Monitored systems (§3.3): systems paired with a global log recording
//! every action that takes place.
//!
//! The global log is a proof device: it is not accessible to principals and
//! exists only so that the correctness of provenance annotations can be
//! stated and checked against it.  The monitored reduction relation `→ₘ`
//! behaves exactly like `→` on the system component (Proposition 2,
//! *erasure*) and in addition prepends the corresponding action(s) to the
//! log (Table 4).

use crate::action::{actions_of_step, Term};
use crate::log::Log;
use piprov_core::pattern::PatternLanguage;
use piprov_core::provenance::Provenance;
use piprov_core::reduction::{successors, ReductionError, StepEvent};
use piprov_core::system::System;
use piprov_core::value::Value;
use piprov_core::{Executor, SchedulerPolicy};
use std::fmt;

/// A monitored system `φ ▷ S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitoredSystem<P> {
    /// The global log `φ`.
    pub log: Log,
    /// The system `S`.
    pub system: System<P>,
}

/// An annotated value as observed by the `values(−)` function: restricted
/// channel names occurring under a restriction *inside* the system are
/// replaced by the unknown marker `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedValue {
    /// The plain value, or `?` if it was a private channel.
    pub term: Term,
    /// Its provenance annotation.
    pub provenance: Provenance,
}

impl fmt::Display for ObservedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.term, self.provenance)
    }
}

impl<P> MonitoredSystem<P> {
    /// Wraps a system with the empty global log (`∅ ▷ S`).
    pub fn new(system: System<P>) -> Self {
        MonitoredSystem {
            log: Log::Empty,
            system,
        }
    }

    /// Wraps a system with an existing log.
    pub fn with_log(log: Log, system: System<P>) -> Self {
        MonitoredSystem { log, system }
    }

    /// The log erasure function `|M|`: drops the log and returns the system.
    pub fn erase(&self) -> &System<P> {
        &self.system
    }

    /// The `log(−)` function of the paper.
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// The `values(−)` function of the paper: every annotated value
    /// occurring in the system, with channel names bound by restrictions
    /// *inside* the system replaced by `?`.
    ///
    /// Note that restrictions at the top level of the monitored system are
    /// considered known to the global log, hence we only substitute `?` for
    /// binders strictly inside located processes or nested system
    /// restrictions when they were not already extruded to the top.
    pub fn values(&self) -> Vec<ObservedValue> {
        values_of_system(&self.system)
    }
}

/// Computes the `values(−)` function on a bare system (used by
/// [`MonitoredSystem::values`] and directly by tests).
pub fn values_of_system<P>(system: &System<P>) -> Vec<ObservedValue> {
    system
        .collect_annotated_values()
        .into_iter()
        .map(|scoped| {
            let hidden = match &scoped.value.value {
                Value::Channel(c) => scoped.binders.contains(c),
                Value::Principal(_) => false,
            };
            ObservedValue {
                term: if hidden {
                    Term::Unknown
                } else {
                    Term::Value(scoped.value.value.clone())
                },
                provenance: scoped.value.provenance.clone(),
            }
        })
        .collect()
}

/// Computes all one-step successors of a monitored system under `→ₘ`.
///
/// Each successor extends the global log with the actions of the step and
/// carries the reduced system; by construction `|M| → |M'|` (erasure).
///
/// # Errors
///
/// Returns an error if the underlying system is not closed or malformed.
pub fn monitored_successors<P, L>(
    monitored: &MonitoredSystem<P>,
    matcher: &L,
) -> Result<Vec<(StepEvent, MonitoredSystem<P>)>, ReductionError>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    let next = successors(&monitored.system, matcher)?;
    Ok(next
        .into_iter()
        .map(|(event, system)| {
            let log = extend_log(monitored.log.clone(), &event);
            (event.clone(), MonitoredSystem { log, system })
        })
        .collect())
}

/// Prepends the actions of a reduction step to a global log (most recent
/// first, as in rules MR-Send / MR-Recv / MR-IfT / MR-IfF).
pub fn extend_log(log: Log, event: &StepEvent) -> Log {
    let mut out = log;
    for action in actions_of_step(event).into_iter().rev() {
        out = out.prefixed(action);
    }
    out
}

/// A monitored executor: runs a system with the efficient configuration
///-based [`Executor`] while accumulating the global log, so that
/// correctness can be checked at any point of a long run.
#[derive(Debug, Clone)]
pub struct MonitoredExecutor<P, L> {
    executor: Executor<P, L>,
    log: Log,
}

impl<P, L> MonitoredExecutor<P, L>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    /// Creates a monitored executor with the empty global log.
    pub fn new(system: &System<P>, matcher: L) -> Self {
        MonitoredExecutor {
            executor: Executor::new(system, matcher),
            log: Log::Empty,
        }
    }

    /// Sets the scheduling policy of the underlying executor.
    pub fn with_policy(mut self, policy: SchedulerPolicy) -> Self {
        self.executor = self.executor.with_policy(policy);
        self
    }

    /// The global log accumulated so far.
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Executor<P, L> {
        &self.executor
    }

    /// The monitored system corresponding to the current state.
    pub fn as_monitored_system(&self) -> MonitoredSystem<P> {
        MonitoredSystem {
            log: self.log.clone(),
            system: self.executor.configuration().to_system(),
        }
    }

    /// Performs one monitored reduction step.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors from the underlying executor.
    pub fn step(&mut self) -> Result<Option<StepEvent>, ReductionError> {
        match self.executor.step()? {
            None => Ok(None),
            Some(event) => {
                self.log = extend_log(std::mem::take(&mut self.log), &event);
                Ok(Some(event))
            }
        }
    }

    /// Runs until quiescence or `max_steps`, returning the number of steps.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors from the underlying executor.
    pub fn run(&mut self, max_steps: usize) -> Result<usize, ReductionError> {
        let mut steps = 0;
        while steps < max_steps {
            if self.step()?.is_none() {
                break;
            }
            steps += 1;
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::pattern::{AnyPattern, TrivialPatterns};
    use piprov_core::process::Process;
    use piprov_core::system::Message;
    use piprov_core::value::{AnnotatedValue, Identifier};

    type S = System<AnyPattern>;

    fn simple() -> S {
        System::par(
            System::located(
                "a",
                Process::output(Identifier::channel("m"), Identifier::channel("v")),
            ),
            System::located(
                "b",
                Process::input(Identifier::channel("m"), AnyPattern, "x", Process::nil()),
            ),
        )
    }

    #[test]
    fn erasure_returns_the_system() {
        let m = MonitoredSystem::new(simple());
        assert_eq!(m.erase(), &simple());
        assert!(m.log().is_empty());
    }

    #[test]
    fn monitored_step_records_the_action() {
        let m = MonitoredSystem::new(simple());
        let succ = monitored_successors(&m, &TrivialPatterns).unwrap();
        assert_eq!(succ.len(), 1);
        let (_, next) = &succ[0];
        assert_eq!(next.log.action_count(), 1);
        assert_eq!(next.log.actions()[0].to_string(), "a.snd(m, v)");
    }

    #[test]
    fn erasure_commutes_with_reduction() {
        // Proposition 2, checked on one step: the system components of the
        // monitored successors are exactly the plain successors.
        let m = MonitoredSystem::new(simple());
        let plain: Vec<_> = successors(&simple(), &TrivialPatterns)
            .unwrap()
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let monitored: Vec<_> = monitored_successors(&m, &TrivialPatterns)
            .unwrap()
            .into_iter()
            .map(|(_, m)| m.system)
            .collect();
        assert_eq!(plain, monitored);
    }

    #[test]
    fn values_substitutes_unknown_for_inner_private_channels() {
        // a[(νn) m<n:κ>] — the occurrence of n is under an inner restriction.
        let s: S = System::located(
            "a",
            Process::restrict(
                "n",
                Process::output(Identifier::channel("m"), Identifier::channel("n")),
            ),
        );
        let observed = values_of_system(&s);
        // Values: the channel m (known) and the private n (unknown).
        assert_eq!(observed.len(), 2);
        assert!(observed.iter().any(|v| v.term == Term::Unknown));
        assert!(observed.iter().any(|v| v.term == Term::channel("m")));
    }

    #[test]
    fn values_keeps_top_level_names() {
        let s: S = System::message(Message::new("m", AnnotatedValue::channel("v")));
        let observed = values_of_system(&s);
        assert_eq!(observed.len(), 1);
        assert_eq!(observed[0].term, Term::channel("v"));
    }

    #[test]
    fn monitored_executor_accumulates_log() {
        let mut exec = MonitoredExecutor::new(&simple(), TrivialPatterns);
        let steps = exec.run(100).unwrap();
        assert_eq!(steps, 2);
        assert_eq!(exec.log().action_count(), 2);
        // Most recent action first: the receive.
        assert_eq!(exec.log().actions()[0].to_string(), "b.rcv(m, v)");
        assert_eq!(exec.log().actions()[1].to_string(), "a.snd(m, v)");
        let m = exec.as_monitored_system();
        assert!(m.system.is_inert());
    }

    #[test]
    fn extend_log_prepends_polyadic_sends_in_order() {
        use piprov_core::name::{Channel, Principal};
        use piprov_core::reduction::StepKind;
        let event = StepEvent {
            principal: Principal::new("a"),
            kind: StepKind::Send {
                channel: Channel::new("m"),
                payload: vec![
                    Value::Channel(Channel::new("v")),
                    Value::Channel(Channel::new("w")),
                ],
            },
        };
        let log = extend_log(Log::Empty, &event);
        assert_eq!(log.action_count(), 2);
        assert_eq!(log.actions()[0].to_string(), "a.snd(m, v)");
        assert_eq!(log.actions()[1].to_string(), "a.snd(m, w)");
    }
}
