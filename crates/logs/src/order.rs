//! The information ordering `φ ⊑ ψ` on logs (§3.1).
//!
//! Intuitively `φ ⊑ ψ` means that `ψ` tells us at least as much about the
//! past as `φ` does.  The paper defines it as the smallest relation closed
//! under the rules
//!
//! ```text
//! Log-Nil    ∅ ⊑ φ
//! Log-Pre1   α ⪯ α'   φσ ⊑ ψσ'        ⇒  α;φ ⊑ α';ψ
//! Log-Pre2   φ ⊑ ψ                     ⇒  φ ⊑ α;ψ
//! Log-Comp1  φ ⊑ ψ    φ' ⊑ ψ           ⇒  φ|φ' ⊑ ψ
//! Log-Comp2  φ ⊑ ψ                     ⇒  φ ⊑ ψ|ψ'
//! ```
//!
//! where `α ⪯ α'` means `α' = ασ` for some substitution `σ` of values for
//! variables.
//!
//! This module implements a backtracking decision procedure for the
//! relation.  The right-hand log must be *closed* (no variables) — this is
//! always the case for global logs produced by the monitored semantics,
//! which record concrete names only.  The left-hand log may contain
//! variables (denotations of provenance do) and the `?` marker, which
//! matches any value without constraining other occurrences.

use crate::action::{Action, Term};
use crate::log::Log;
use piprov_core::name::Variable;
use piprov_core::value::Value;
use std::collections::BTreeMap;

/// A substitution of values for log variables discovered during matching.
pub type LogSubstitution = BTreeMap<Variable, Value>;

/// Decides `left ⊑ right`.
///
/// # Panics
///
/// Panics if `right` contains variables; the relation is implemented for
/// closed right-hand logs only (global logs are always closed).
pub fn log_leq(left: &Log, right: &Log) -> bool {
    assert!(
        right.is_closed(),
        "the right-hand side of ⊑ must be a closed log"
    );
    check(left, right, &LogSubstitution::new())
}

/// Decides `left ⊑ right` and returns a witness substitution for the
/// variables of `left` if the relation holds.
pub fn log_leq_with_witness(left: &Log, right: &Log) -> Option<LogSubstitution> {
    if !right.is_closed() {
        return None;
    }
    let mut witness = LogSubstitution::new();
    if check_collect(left, right, &LogSubstitution::new(), &mut witness) {
        Some(witness)
    } else {
        None
    }
}

fn check(left: &Log, right: &Log, subst: &LogSubstitution) -> bool {
    let mut sink = LogSubstitution::new();
    check_collect(left, right, subst, &mut sink)
}

fn check_collect(
    left: &Log,
    right: &Log,
    subst: &LogSubstitution,
    witness: &mut LogSubstitution,
) -> bool {
    match left {
        // Log-Nil.
        Log::Empty => true,
        // Log-Comp1: both branches must be justified by the same right log.
        Log::Par(l, r) => {
            check_collect(l, right, subst, witness) && check_collect(r, right, subst, witness)
        }
        // Log-Pre1 / Log-Pre2 / Log-Comp2: search for a supporting action.
        Log::Prefix(action, rest) => seek(action, rest, right, subst, witness),
    }
}

/// Searches `right` for an action supporting `action`, descending through
/// parallel branches (Log-Comp2) and skipping more recent actions
/// (Log-Pre2); when a match is found (Log-Pre1) the remaining left log is
/// checked against the remainder of that branch.
fn seek(
    action: &Action,
    rest: &Log,
    right: &Log,
    subst: &LogSubstitution,
    witness: &mut LogSubstitution,
) -> bool {
    match right {
        Log::Empty => false,
        Log::Par(a, b) => {
            seek(action, rest, a, subst, witness) || seek(action, rest, b, subst, witness)
        }
        Log::Prefix(candidate, deeper) => {
            // Log-Pre1: try to match here.
            if let Some(extended) = match_action(action, candidate, subst) {
                if check_collect(rest, deeper, &extended, witness) {
                    for (k, v) in extended {
                        witness.insert(k, v);
                    }
                    return true;
                }
            }
            // Log-Pre2: skip this (more recent) action.
            seek(action, rest, deeper, subst, witness)
        }
    }
}

/// `α ⪯ α'`: does there exist an extension of `subst` such that
/// `α' = α·subst`?  Returns the extended substitution on success.
fn match_action(left: &Action, right: &Action, subst: &LogSubstitution) -> Option<LogSubstitution> {
    if left.principal != right.principal || left.kind != right.kind {
        return None;
    }
    let mut extended = subst.clone();
    match_term(&left.subject, &right.subject, &mut extended)?;
    match_term(&left.object, &right.object, &mut extended)?;
    Some(extended)
}

fn match_term(left: &Term, right: &Term, subst: &mut LogSubstitution) -> Option<()> {
    match left {
        Term::Value(v) => match right {
            Term::Value(w) if v == w => Some(()),
            _ => None,
        },
        Term::Unknown => Some(()),
        Term::Variable(x) => match right {
            Term::Value(w) => match subst.get(x) {
                Some(bound) if bound == w => Some(()),
                Some(_) => None,
                None => {
                    subst.insert(x.clone(), w.clone());
                    Some(())
                }
            },
            // The right-hand log is closed, so this cannot happen; be
            // conservative if it does.
            _ => None,
        },
    }
}

/// Equality of information content: `φ ⊑ ψ` and `ψ ⊑ φ`.
///
/// Only defined when both logs are closed.
pub fn log_equivalent_information(left: &Log, right: &Log) -> bool {
    left.is_closed() && right.is_closed() && log_leq(left, right) && log_leq(right, left)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Term};

    fn snd(p: &str, chan: Term, val: Term) -> Action {
        Action::send(p, chan, val)
    }
    fn rcv(p: &str, chan: Term, val: Term) -> Action {
        Action::receive(p, chan, val)
    }
    fn ch(name: &str) -> Term {
        Term::channel(name)
    }
    fn var(name: &str) -> Term {
        Term::variable(name)
    }

    #[test]
    fn empty_is_below_everything() {
        let log = Log::chain(vec![snd("a", ch("m"), ch("v"))]);
        assert!(log_leq(&Log::Empty, &log));
        assert!(log_leq(&Log::Empty, &Log::Empty));
        assert!(!log_leq(&log, &Log::Empty));
    }

    #[test]
    fn paper_worked_example() {
        // φ = a.snd(x, v); a.rcv(n, x)   ψ = a.snd(m, v); a.rcv(n, m)
        let phi = Log::chain(vec![
            snd("a", var("x"), ch("v")),
            rcv("a", ch("n"), var("x")),
        ]);
        let psi = Log::chain(vec![snd("a", ch("m"), ch("v")), rcv("a", ch("n"), ch("m"))]);
        assert!(log_leq(&phi, &psi));
        let witness = log_leq_with_witness(&phi, &psi).unwrap();
        assert_eq!(
            witness.get(&Variable::new("x")),
            Some(&piprov_core::value::Value::Channel(
                piprov_core::name::Channel::new("m")
            ))
        );
        // The converse fails: ψ is more informative than φ, and ⊑ compares
        // closed logs on the right only, so check with the closed pair.
        assert!(!log_leq(&psi, &phi_closed()));
    }

    fn phi_closed() -> Log {
        // A closed log strictly less informative than ψ above: it claims a
        // send happened on some other channel.
        Log::chain(vec![snd("a", ch("k"), ch("v")), rcv("a", ch("n"), ch("k"))])
    }

    #[test]
    fn variable_bindings_must_be_consistent() {
        // φ = a.snd(x, v); a.rcv(x, w) requires the SAME channel for both.
        let phi = Log::chain(vec![
            snd("a", var("x"), ch("v")),
            rcv("a", var("x"), ch("w")),
        ]);
        let consistent = Log::chain(vec![snd("a", ch("m"), ch("v")), rcv("a", ch("m"), ch("w"))]);
        let inconsistent = Log::chain(vec![snd("a", ch("m"), ch("v")), rcv("a", ch("n"), ch("w"))]);
        assert!(log_leq(&phi, &consistent));
        assert!(!log_leq(&phi, &inconsistent));
    }

    #[test]
    fn unknown_matches_anything_without_constraining() {
        let phi = Log::chain(vec![
            snd("a", Term::Unknown, ch("v")),
            rcv("a", Term::Unknown, ch("v")),
        ]);
        // The two ? may stand for different channels.
        let psi = Log::chain(vec![snd("a", ch("m"), ch("v")), rcv("a", ch("n"), ch("v"))]);
        assert!(log_leq(&phi, &psi));
    }

    #[test]
    fn pre2_allows_skipping_recent_actions() {
        let phi = Log::single(snd("a", ch("m"), ch("v")));
        let psi = Log::chain(vec![
            snd("b", ch("n"), ch("w")),
            rcv("c", ch("o"), ch("u")),
            snd("a", ch("m"), ch("v")),
        ]);
        assert!(log_leq(&phi, &psi));
    }

    #[test]
    fn ordering_of_actions_matters() {
        // φ requires a.snd more recent than a.rcv; ψ has them the other way.
        let phi = Log::chain(vec![snd("a", ch("m"), ch("v")), rcv("a", ch("n"), ch("w"))]);
        let psi = Log::chain(vec![rcv("a", ch("n"), ch("w")), snd("a", ch("m"), ch("v"))]);
        assert!(!log_leq(&phi, &psi));
        assert!(!log_leq(&psi, &phi));
    }

    #[test]
    fn comp1_is_nonlinear() {
        // φ | φ ⊑ ψ as long as φ ⊑ ψ: the same past information may be
        // duplicated (values and their provenance can be copied).
        let phi = Log::single(snd("a", ch("m"), ch("v")));
        let dup = phi.clone().par(phi.clone());
        let psi = Log::single(snd("a", ch("m"), ch("v")));
        assert!(log_leq(&dup, &psi));
    }

    #[test]
    fn comp2_descends_into_either_branch() {
        let phi = Log::single(snd("a", ch("m"), ch("v")));
        let psi =
            Log::single(snd("b", ch("n"), ch("w"))).par(Log::single(snd("a", ch("m"), ch("v"))));
        assert!(log_leq(&phi, &psi));
    }

    #[test]
    fn independent_branches_need_independent_support() {
        // φ = a.snd(m,v) | a.snd(m,w): needs both actions somewhere in ψ.
        let phi =
            Log::single(snd("a", ch("m"), ch("v"))).par(Log::single(snd("a", ch("m"), ch("w"))));
        let good = Log::chain(vec![snd("a", ch("m"), ch("w")), snd("a", ch("m"), ch("v"))]);
        let bad = Log::single(snd("a", ch("m"), ch("v")));
        assert!(log_leq(&phi, &good));
        assert!(!log_leq(&phi, &bad));
    }

    #[test]
    fn reflexivity_on_closed_logs() {
        let logs = [
            Log::Empty,
            Log::single(snd("a", ch("m"), ch("v"))),
            Log::chain(vec![snd("a", ch("m"), ch("v")), rcv("b", ch("n"), ch("v"))]),
            Log::single(snd("a", ch("m"), ch("v"))).par(Log::single(rcv("b", ch("n"), ch("w")))),
        ];
        for log in &logs {
            assert!(log_leq(log, log), "⊑ must be reflexive on {}", log);
            assert!(log_equivalent_information(log, log));
        }
    }

    #[test]
    fn transitivity_example() {
        let phi = Log::single(snd("a", var("x"), ch("v")));
        let psi = Log::chain(vec![snd("a", ch("m"), ch("v"))]);
        let chi = Log::chain(vec![rcv("b", ch("n"), ch("w")), snd("a", ch("m"), ch("v"))]);
        assert!(log_leq(&phi, &psi));
        assert!(log_leq(&psi, &chi));
        assert!(log_leq(&phi, &chi));
    }

    #[test]
    #[should_panic(expected = "closed log")]
    fn right_hand_side_must_be_closed() {
        let open = Log::single(snd("a", ch("m"), var("y")));
        let _ = log_leq(&Log::Empty, &open);
    }
}
