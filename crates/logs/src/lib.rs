//! # piprov-logs
//!
//! The meta-theory of provenance from §3 of *"A Formal Model of Provenance
//! in Distributed Systems"*:
//!
//! * **logs** — edge-labelled trees of past actions ([`log`], [`action`]),
//! * the **information ordering** `φ ⊑ ψ` and its decision procedure
//!   ([`order`]),
//! * the **denotation** of provenance as a partial log, `⟦v:κ⟧`
//!   ([`denotation`]),
//! * **monitored systems** `φ ▷ S` and the monitored reduction relation
//!   `→ₘ` that records every action in the global log ([`monitored`]),
//! * **correctness** (Definition 3 / Theorem 1) and **completeness**
//!   (Definition 4 / Proposition 3) checkers ([`properties`]),
//! * an exhaustive state-space explorer for checking the theorems on whole
//!   reachable state spaces of small systems ([`explore`]).
//!
//! ```
//! use piprov_core::pattern::{AnyPattern, TrivialPatterns};
//! use piprov_core::process::Process;
//! use piprov_core::system::System;
//! use piprov_core::value::Identifier;
//! use piprov_logs::monitored::{MonitoredExecutor};
//! use piprov_logs::properties::has_correct_provenance;
//!
//! // a sends v to b through channel m; the global log records both actions
//! // and the value's provenance stays correct throughout (Theorem 1).
//! let system: System<AnyPattern> = System::par(
//!     System::located("a", Process::output(Identifier::channel("m"), Identifier::channel("v"))),
//!     System::located("b", Process::input(Identifier::channel("m"), AnyPattern, "x", Process::nil())),
//! );
//! let mut exec = MonitoredExecutor::new(&system, TrivialPatterns);
//! exec.run(100)?;
//! assert!(has_correct_provenance(&exec.as_monitored_system()));
//! # Ok::<(), piprov_core::reduction::ReductionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod denotation;
pub mod explore;
pub mod log;
pub mod monitored;
pub mod order;
pub mod properties;

pub use action::{actions_of_step, Action, ActionKind, Term};
pub use denotation::{denote, denote_observed, VariableSupply};
pub use explore::{explore_correctness, explore_systems, ExploreOptions, ExploreOutcome};
pub use log::Log;
pub use monitored::{
    monitored_successors, values_of_system, MonitoredExecutor, MonitoredSystem, ObservedValue,
};
pub use order::{log_equivalent_information, log_leq, log_leq_with_witness};
pub use properties::{
    check_correctness_preserved, check_provenance, has_complete_provenance, has_correct_provenance,
    incompleteness_counterexample, ProvenanceReport, ValueVerdict,
};
