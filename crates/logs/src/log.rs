//! Logs: edge-labelled trees recording the past behaviour of systems
//! (§3.1).
//!
//! ```text
//! φ ::= ∅ | α; φ | φ | ψ
//! ```
//!
//! An edge leading out of a parent represents an action that occurred more
//! recently than those below it; sibling subtrees are temporally
//! independent.  Logs are considered up to alpha-conversion of bound
//! variables and the commutative-monoid laws of `|` with unit `∅`.

use crate::action::{Action, Term};
use piprov_core::name::Variable;
use std::collections::BTreeSet;
use std::fmt;

/// A log `φ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Log {
    /// The empty log `∅`.
    #[default]
    Empty,
    /// `α; φ` — the action `α` happened, more recently than everything in
    /// `φ`.
    Prefix(Action, Box<Log>),
    /// `φ | ψ` — two temporally independent records.
    Par(Box<Log>, Box<Log>),
}

impl Log {
    /// The empty log.
    pub fn empty() -> Self {
        Log::Empty
    }

    /// `action; self`.
    pub fn prefixed(self, action: Action) -> Self {
        Log::Prefix(action, Box::new(self))
    }

    /// A log consisting of a single action.
    pub fn single(action: Action) -> Self {
        Log::Empty.prefixed(action)
    }

    /// `self | other`.
    pub fn par(self, other: Log) -> Self {
        match (self, other) {
            (Log::Empty, o) => o,
            (s, Log::Empty) => s,
            (s, o) => Log::Par(Box::new(s), Box::new(o)),
        }
    }

    /// A chain `α₁; α₂; …; αₙ; ∅` from a list of actions, most recent
    /// first (the shape produced by the monitored reduction semantics).
    pub fn chain<I>(actions: I) -> Self
    where
        I: IntoIterator<Item = Action>,
        I::IntoIter: DoubleEndedIterator,
    {
        let mut log = Log::Empty;
        for action in actions.into_iter().rev() {
            log = log.prefixed(action);
        }
        log
    }

    /// `true` if the log is `∅` (up to the monoid laws).
    pub fn is_empty(&self) -> bool {
        match self {
            Log::Empty => true,
            Log::Prefix(_, _) => false,
            Log::Par(a, b) => a.is_empty() && b.is_empty(),
        }
    }

    /// Total number of actions recorded.
    pub fn action_count(&self) -> usize {
        match self {
            Log::Empty => 0,
            Log::Prefix(_, rest) => 1 + rest.action_count(),
            Log::Par(a, b) => a.action_count() + b.action_count(),
        }
    }

    /// Depth of the longest chain of actions.
    pub fn depth(&self) -> usize {
        match self {
            Log::Empty => 0,
            Log::Prefix(_, rest) => 1 + rest.depth(),
            Log::Par(a, b) => a.depth().max(b.depth()),
        }
    }

    /// All actions in the log, in preorder.
    pub fn actions(&self) -> Vec<&Action> {
        let mut out = Vec::new();
        self.collect_actions(&mut out);
        out
    }

    fn collect_actions<'a>(&'a self, out: &mut Vec<&'a Action>) {
        match self {
            Log::Empty => {}
            Log::Prefix(a, rest) => {
                out.push(a);
                rest.collect_actions(out);
            }
            Log::Par(a, b) => {
                a.collect_actions(out);
                b.collect_actions(out);
            }
        }
    }

    /// The free variables of the log.
    ///
    /// In `a.snd(x, V); φ` and `a.rcv(x, V); φ` the variable `x` in subject
    /// position binds its occurrences in `φ`; every other occurrence is
    /// free.
    pub fn free_variables(&self) -> BTreeSet<Variable> {
        fn go(log: &Log, bound: &mut Vec<Variable>, out: &mut BTreeSet<Variable>) {
            match log {
                Log::Empty => {}
                Log::Prefix(action, rest) => {
                    // A variable in subject position of a snd/rcv action is a
                    // *binder* occurrence: it binds occurrences in the rest of
                    // the log and is not itself free.
                    let binder = match (&action.kind, &action.subject) {
                        (
                            crate::action::ActionKind::Send | crate::action::ActionKind::Receive,
                            Term::Variable(x),
                        ) => Some(x.clone()),
                        _ => None,
                    };
                    let free_here: Vec<&Term> = if binder.is_some() {
                        vec![&action.object]
                    } else {
                        vec![&action.subject, &action.object]
                    };
                    for term in free_here {
                        if let Term::Variable(x) = term {
                            if !bound.contains(x) {
                                out.insert(x.clone());
                            }
                        }
                    }
                    if let Some(x) = binder.clone() {
                        bound.push(x);
                    }
                    go(rest, bound, out);
                    if binder.is_some() {
                        bound.pop();
                    }
                }
                Log::Par(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// `true` when the log has no free variables.
    pub fn is_closed(&self) -> bool {
        self.free_variables().is_empty()
    }

    /// A canonical form modulo the commutative-monoid laws of `|`:
    /// `∅` units are dropped and parallel branches are flattened and
    /// sorted.  Two closed, variable-free logs are equivalent iff their
    /// canonical forms are equal.
    pub fn canonical(&self) -> Log {
        fn flatten(log: &Log, out: &mut Vec<Log>) {
            match log {
                Log::Empty => {}
                Log::Prefix(a, rest) => {
                    out.push(Log::Prefix(a.clone(), Box::new(rest.canonical())))
                }
                Log::Par(l, r) => {
                    flatten(l, out);
                    flatten(r, out);
                }
            }
        }
        let mut branches = Vec::new();
        flatten(self, &mut branches);
        branches.sort_by_key(|b| b.to_string());
        let mut iter = branches.into_iter();
        match iter.next() {
            None => Log::Empty,
            Some(first) => iter.fold(first, |acc, b| Log::Par(Box::new(acc), Box::new(b))),
        }
    }

    /// Structural equivalence modulo the `|` monoid laws (sufficient for
    /// closed logs; alpha-conversion is not needed because canonical forms
    /// of denotations are compared via the [`crate::order`] relation
    /// instead).
    pub fn equivalent(&self, other: &Log) -> bool {
        self.canonical() == other.canonical()
    }
}

impl fmt::Display for Log {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Log::Empty => write!(f, "0"),
            Log::Prefix(action, rest) => {
                if rest.is_empty() {
                    write!(f, "{}", action)
                } else {
                    write!(f, "{}; {}", action, rest)
                }
            }
            Log::Par(a, b) => {
                let wrap = |log: &Log, f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    match log {
                        Log::Prefix(_, rest) if !rest.is_empty() => write!(f, "({})", log),
                        _ => write!(f, "{}", log),
                    }
                };
                wrap(a, f)?;
                write!(f, " | ")?;
                wrap(b, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Term};

    fn snd(p: &str, chan: Term, val: &str) -> Action {
        Action::send(p, chan, Term::channel(val))
    }

    #[test]
    fn empty_log_properties() {
        let log = Log::empty();
        assert!(log.is_empty());
        assert!(log.is_closed());
        assert_eq!(log.action_count(), 0);
        assert_eq!(log.depth(), 0);
        assert_eq!(log.to_string(), "0");
    }

    #[test]
    fn chain_builds_in_order() {
        let log = Log::chain(vec![
            snd("a", Term::channel("m"), "v"),
            snd("b", Term::channel("n"), "w"),
        ]);
        assert_eq!(log.action_count(), 2);
        assert_eq!(log.depth(), 2);
        assert_eq!(log.to_string(), "a.snd(m, v); b.snd(n, w)");
    }

    #[test]
    fn par_drops_empty_units() {
        let a = Log::single(snd("a", Term::channel("m"), "v"));
        assert_eq!(a.clone().par(Log::Empty), a);
        assert_eq!(Log::Empty.par(a.clone()), a);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = Log::single(snd("a", Term::channel("m"), "v"));
        let b = Log::single(snd("b", Term::channel("n"), "w"));
        let ab = a.clone().par(b.clone());
        let ba = b.par(a);
        assert!(ab.equivalent(&ba));
        assert_eq!(ab.canonical(), ba.canonical());
    }

    #[test]
    fn canonical_distinguishes_prefix_order() {
        let a = snd("a", Term::channel("m"), "v");
        let b = snd("b", Term::channel("n"), "w");
        let ab = Log::chain(vec![a.clone(), b.clone()]);
        let ba = Log::chain(vec![b, a]);
        assert!(!ab.equivalent(&ba), "prefixing order is meaningful");
    }

    #[test]
    fn free_variables_respect_binding() {
        // a.snd(x, v); a.rcv(n, x) — x is bound by the first action.
        let log = Log::chain(vec![
            Action::send("a", Term::variable("x"), Term::channel("v")),
            Action::receive("a", Term::channel("n"), Term::variable("x")),
        ]);
        assert!(log.is_closed());
        // The object variable does not bind.
        let log2 = Log::chain(vec![
            Action::send("a", Term::channel("m"), Term::variable("y")),
            Action::receive("a", Term::channel("n"), Term::variable("y")),
        ]);
        assert_eq!(
            log2.free_variables(),
            [Variable::new("y")].into_iter().collect()
        );
        // A variable used before any binder is free.
        let log3 = Log::single(Action::receive(
            "a",
            Term::channel("n"),
            Term::variable("z"),
        ));
        assert!(!log3.is_closed());
    }

    #[test]
    fn display_nests_parallel_chains() {
        let left = Log::chain(vec![
            snd("a", Term::channel("m"), "v"),
            snd("a", Term::channel("m"), "w"),
        ]);
        let right = Log::single(snd("b", Term::channel("n"), "u"));
        let log = left.par(right);
        assert_eq!(log.to_string(), "(a.snd(m, v); a.snd(m, w)) | b.snd(n, u)");
    }

    #[test]
    fn actions_are_collected_in_preorder() {
        let log = Log::chain(vec![
            snd("a", Term::channel("m"), "v"),
            snd("b", Term::channel("n"), "w"),
        ])
        .par(Log::single(snd("c", Term::channel("o"), "u")));
        let names: Vec<String> = log
            .actions()
            .iter()
            .map(|a| a.principal.to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
