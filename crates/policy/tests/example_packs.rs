//! The example packs shipped under `policies/` must load from disk and
//! compile cleanly — they are what the examples, the CI smoke, and the
//! README point at.

use piprov_policy::{PackSource, PolicyPack};
use std::path::PathBuf;

fn pack_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../policies")
        .join(name)
}

fn compile(name: &str) -> PolicyPack {
    let source = PackSource::from_dir(&pack_dir(name)).expect("pack directory reads");
    assert_eq!(source.root, name);
    PolicyPack::compile(&source)
        .unwrap_or_else(|err| panic!("pack `{}` must compile: {}", name, err.diagnostics[0]))
}

#[test]
fn supply_chain_pack_compiles_with_cross_file_references() {
    let pack = compile("supply_chain");
    let names: Vec<&str> = pack.policies.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "supply_chain::build::relayed",
            "supply_chain::build::vendor_only",
            "supply_chain::promotion::promotable",
        ]
    );
    // The promotion gate spliced the build pack's vendor_only pattern.
    let promotable = pack.get("supply_chain::promotion::promotable").unwrap();
    assert!(promotable.source.contains("supplier0"));
}

#[test]
fn pii_custody_pack_compiles_with_aliased_imports() {
    let pack = compile("pii_custody");
    assert_eq!(pack.policies.len(), 4);
    let exportable = pack.get("pii_custody::retention::exportable").unwrap();
    assert!(exportable.source.contains("data_subject"));
}

#[test]
fn build_provenance_pack_compiles() {
    let pack = compile("build_provenance");
    assert_eq!(pack.policies.len(), 3);
    assert!(pack
        .get("build_provenance::provenance::signed_release")
        .unwrap()
        .source
        .contains("signer"));
}
