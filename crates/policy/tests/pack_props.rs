//! Property-based tests for pack compilation:
//!
//! * compiling arbitrary UTF-8 never panics,
//! * every diagnostic points inside the input (valid 1-based
//!   line/column within the offending file),
//! * compile→render→recompile of a valid pack is a fixed point.

use piprov_policy::{PackFile, PackSource, PolicyPack};
use proptest::prelude::*;

/// Arbitrary UTF-8: mostly ASCII (so the statement parser gets
/// exercised), with a sprinkling of arbitrary code points.
fn arb_unicode_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u32..128).prop_map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')),
            1 => (0u32..0x0011_0000).prop_map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')),
        ],
        0..160,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Keyword soup: fragments of real `.ppol` syntax glued together at
/// random, which reaches far deeper into the parser than raw noise.
fn arb_fragment_source() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("policy "),
        Just("package "),
        Just("use "),
        Just(" as "),
        Just("p"),
        Just("vendor_only"),
        Just("a::b"),
        Just("="),
        Just("@"),
        Just("@p"),
        Just("::"),
        Just("Any"),
        Just("eps"),
        Just("!"),
        Just("?"),
        Just("*"),
        Just("|"),
        Just(";"),
        Just("("),
        Just(")"),
        Just("~"),
        Just("+"),
        Just("-"),
        Just("#"),
        Just("//"),
        Just(" "),
        Just("\n"),
        Just("\r\n"),
        Just("é"),
    ];
    proptest::collection::vec(fragment, 0..48).prop_map(|fragments| fragments.concat())
}

/// Checks that every diagnostic of a failed compile points inside the
/// (single) input file: real path, line within the file, column within
/// the line (one past the end allowed for end-of-line errors).
fn assert_diagnostics_in_bounds(source: &str) {
    let pack_source = PackSource::new("fuzz", vec![PackFile::new("fuzz.ppol", source)]);
    if let Err(err) = PolicyPack::compile(&pack_source) {
        assert!(!err.diagnostics.is_empty());
        let lines: Vec<&str> = source.split('\n').collect();
        for diag in &err.diagnostics {
            assert_eq!(diag.path, "fuzz.ppol", "{diag}");
            assert!(diag.line >= 1 && diag.line <= lines.len(), "{diag}");
            let line_chars = lines[diag.line - 1].chars().count();
            assert!(
                diag.column >= 1 && diag.column <= line_chars + 1,
                "{diag} (line has {line_chars} chars)"
            );
        }
    }
}

/// A small generator of valid pattern text.
fn arb_pattern_text(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("Any".to_string()),
        Just("eps".to_string()),
        Just("a!Any".to_string()),
        Just("(b + c)?Any".to_string()),
        Just("(~ - mallory)!eps".to_string()),
        Just("Any; d!Any".to_string()),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            3 => leaf,
            1 => (arb_pattern_text(depth - 1), arb_pattern_text(depth - 1))
                .prop_map(|(a, b)| format!("{}; {}", a, b)),
            1 => (arb_pattern_text(depth - 1), arb_pattern_text(depth - 1))
                .prop_map(|(a, b)| format!("({} | {})", a, b)),
            1 => arb_pattern_text(depth - 1).prop_map(|a| format!("({})*", a)),
        ]
        .boxed()
    }
}

/// A valid single-file pack: policies `p0..pN`, each later policy
/// possibly referencing an earlier one with `@`.
fn arb_valid_pack() -> impl Strategy<Value = PackSource> {
    (
        1usize..6,
        proptest::collection::vec(arb_pattern_text(2), 6..7),
        proptest::collection::vec(0usize..64, 6..7),
    )
        .prop_map(|(count, bodies, ref_picks)| {
            let mut text = String::from("package fuzz::rules\n\n");
            for i in 0..count {
                let body = &bodies[i];
                let pick = ref_picks[i];
                if i > 0 && pick % 2 == 0 {
                    text.push_str(&format!("policy p{} = {} | @p{}\n", i, body, pick / 2 % i));
                } else {
                    text.push_str(&format!("policy p{} = {}\n", i, body));
                }
            }
            PackSource::new("fuzz", vec![PackFile::new("rules.ppol", text)])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn compile_never_panics_on_arbitrary_utf8(source in arb_unicode_source()) {
        let pack_source = PackSource::new("fuzz", vec![PackFile::new("fuzz.ppol", source)]);
        let _ = PolicyPack::compile(&pack_source);
    }

    #[test]
    fn diagnostics_stay_inside_arbitrary_utf8_input(source in arb_unicode_source()) {
        assert_diagnostics_in_bounds(&source);
    }

    #[test]
    fn diagnostics_stay_inside_fragment_soup(source in arb_fragment_source()) {
        assert_diagnostics_in_bounds(&source);
    }

    #[test]
    fn compile_render_recompile_is_a_fixed_point(source in arb_valid_pack()) {
        let pack = PolicyPack::compile(&source).expect("generated packs are valid");
        let rendered = pack.render();
        let repack = PolicyPack::compile(&rendered).expect("rendered packs recompile");
        prop_assert_eq!(&repack.render(), &rendered);

        // Same policy surface: names, packages, canonical sources.
        prop_assert_eq!(pack.policies.len(), repack.policies.len());
        for (a, b) in pack.policies.iter().zip(&repack.policies) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.package, &b.package);
            prop_assert_eq!(&a.source, &b.source);
        }
    }
}
