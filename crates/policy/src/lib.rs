//! Policy packs: a plaintext policy language over the pattern engine.
//!
//! A *policy pack* is a directory tree of `.ppol` files.  Each file
//! declares a package (derived from its path) and a set of named
//! policies whose bodies are patterns in the concrete syntax of
//! `piprov-patterns`:
//!
//! ```text
//! # supply_chain/build.ppol
//! package supply_chain::build
//!
//! policy vendor_only = Any; (vendor_a + vendor_b)!Any
//! policy untainted   = ((~ - mallory)!Any | (~ - mallory)?Any)*
//! ```
//!
//! Policies can reference each other with `@name` (same file) or
//! `@package::path::name` (fully qualified), and import names from
//! other packages with `use package::path::name [as alias]`.
//! References are resolved at compile time by splicing the referenced
//! pattern in parenthesised form, so a compiled [`PolicyPack`] is a
//! flat list of self-contained policies ready for registration.
//!
//! Compilation is all-or-nothing: [`PolicyPack::compile`] either
//! returns every policy compiled, or a [`PackError`] carrying
//! per-file, line/column [`PackDiagnostic`]s — several per file when
//! recovery permits — and no partial pack.
//!
//! ```
//! use piprov_policy::{PackFile, PackSource, PolicyPack};
//!
//! let source = PackSource::new(
//!     "demo",
//!     vec![PackFile::new(
//!         "rules.ppol",
//!         "policy from_c = c!Any; Any\npolicy safe = @from_c | eps\n",
//!     )],
//! );
//! let pack = PolicyPack::compile(&source).unwrap();
//! let names: Vec<&str> = pack.policies.iter().map(|p| p.name.as_str()).collect();
//! assert_eq!(names, ["demo::rules::from_c", "demo::rules::safe"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diag;
pub mod pack;
mod parse;
pub mod source;

pub use diag::{PackDiagnostic, PackError};
pub use pack::{PolicyDef, PolicyPack};
pub use source::{PackFile, PackSource};

/// Levenshtein edit distance between two strings, in characters.
///
/// Used for "did you mean" hints when a policy name fails to resolve.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            cur[j + 1] = substitute.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Picks the candidate closest to `target` by edit distance, if any is
/// close enough to plausibly be a typo (distance at most 2, or a third
/// of the target's length for long names).  Ties break lexicographically.
pub fn nearest_name<'a, I>(target: &str, candidates: I) -> Option<String>
where
    I: IntoIterator<Item = &'a str>,
{
    let budget = 2.max(target.chars().count() / 3);
    let mut best: Option<(usize, &str)> = None;
    for candidate in candidates {
        let d = edit_distance(target, candidate);
        if d > budget {
            continue;
        }
        let better = match best {
            None => true,
            Some((bd, bn)) => d < bd || (d == bd && candidate < bn),
        };
        if better {
            best = Some((d, candidate));
        }
    }
    best.map(|(_, name)| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "ab"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("vendor_only", "vendor_onyl"), 2);
    }

    #[test]
    fn nearest_name_finds_typos_and_rejects_strangers() {
        let names = ["vendor_only", "untainted", "staged"];
        assert_eq!(
            nearest_name("vendor_onyl", names),
            Some("vendor_only".to_string())
        );
        assert_eq!(nearest_name("stged", names), Some("staged".to_string()));
        assert_eq!(nearest_name("completely_different", names), None);
    }

    #[test]
    fn nearest_name_breaks_ties_lexicographically() {
        assert_eq!(nearest_name("ac", ["ab", "aa"]), Some("aa".to_string()));
    }
}
