//! The `.ppol` statement parser.
//!
//! A file is a sequence of statements, one per line, with `#` and `//`
//! line comments:
//!
//! ```text
//! package a::b                 # at most one, must match the file's path
//! use other::pkg::name as n    # import a policy from another package
//! policy name = <pattern>      # body may continue on following lines
//! ```
//!
//! A policy body extends to the line before the next line whose first
//! token is `package`, `use` or `policy` (or to end of file), so
//! patterns may span lines.  Parsing recovers at statement boundaries:
//! each malformed statement yields one diagnostic and parsing
//! continues with the next statement.

use crate::diag::PackDiagnostic;

/// A parsed (but not yet resolved or compiled) `.ppol` file.
#[derive(Debug, Clone)]
pub(crate) struct ParsedFile {
    /// Root-relative path, as given in the pack source.
    pub path: String,
    /// The declared package, with the line/column of its path token.
    pub package: Option<(String, usize, usize)>,
    /// `use` imports in order of appearance.
    pub uses: Vec<UseDecl>,
    /// Policy definitions in order of appearance.
    pub policies: Vec<PolicyDecl>,
}

/// A `use package::path::name [as alias]` import.
#[derive(Debug, Clone)]
pub(crate) struct UseDecl {
    /// The imported policy's fully qualified name.
    pub target: String,
    /// Local alias (the last path segment unless `as` renames it).
    pub alias: String,
    /// 1-based line of the `use` keyword.
    pub line: usize,
    /// 1-based column of the `use` keyword.
    pub column: usize,
}

/// A `policy name = body` definition.
#[derive(Debug, Clone)]
pub(crate) struct PolicyDecl {
    /// The policy's local (unqualified) name.
    pub name: String,
    /// 1-based line of the name token.
    pub name_line: usize,
    /// 1-based column of the name token.
    pub name_column: usize,
    /// Raw body text: rest of the `policy` line after `=`, plus any
    /// continuation lines, joined with `\n`.  Comments are stripped.
    pub body: String,
    /// 1-based line where the body starts (the `policy` line).
    pub body_line: usize,
    /// 1-based column of the first body character on that line.
    pub body_column: usize,
}

/// Strips `#` and `//` comments from one line by truncation.  Columns
/// of surviving characters are unchanged.
fn strip_comment(line: &[char]) -> &[char] {
    for (i, &c) in line.iter().enumerate() {
        if c == '#' || (c == '/' && line.get(i + 1) == Some(&'/')) {
            return &line[..i];
        }
    }
    line
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Character-level scanner over one comment-stripped line.
struct LineScan<'a> {
    chars: &'a [char],
    /// 0-based character offset into the line.
    pos: usize,
}

impl<'a> LineScan<'a> {
    fn new(chars: &'a [char]) -> LineScan<'a> {
        LineScan { chars, pos: 0 }
    }

    /// 1-based column of the current position.
    fn column(&self) -> usize {
        self.pos + 1
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.chars.len()
    }

    /// Reads an identifier, or `None` (position unchanged) if the next
    /// character cannot start one.
    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        if !matches!(self.peek(), Some(c) if is_ident_start(c)) {
            return None;
        }
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if !is_ident_continue(c) {
                break;
            }
            word.push(c);
            self.pos += 1;
        }
        Some(word)
    }

    /// Reads `ident(::ident)*`, returning the segments.
    fn path(&mut self) -> Option<Vec<String>> {
        let mut segments = vec![self.ident()?];
        while self.peek() == Some(':') && self.chars.get(self.pos + 1) == Some(&':') {
            self.pos += 2;
            match self.ident() {
                Some(segment) => segments.push(segment),
                None => return None,
            }
        }
        Some(segments)
    }
}

/// Returns the statement keyword starting `line`, if any.
fn statement_keyword(line: &[char]) -> Option<&'static str> {
    let mut scan = LineScan::new(line);
    match scan.ident().as_deref() {
        Some("package") => Some("package"),
        Some("use") => Some("use"),
        Some("policy") => Some("policy"),
        _ => None,
    }
}

/// Parses one file, pushing diagnostics rather than failing.  The
/// returned [`ParsedFile`] holds every statement that parsed cleanly.
pub(crate) fn parse_file(
    path: &str,
    source: &str,
    diagnostics: &mut Vec<PackDiagnostic>,
) -> ParsedFile {
    let lines: Vec<Vec<char>> = source
        .split('\n')
        .map(|line| {
            strip_comment(&line.trim_end_matches('\r').chars().collect::<Vec<char>>()).to_vec()
        })
        .collect();
    let mut parsed = ParsedFile {
        path: path.to_string(),
        package: None,
        uses: Vec::new(),
        policies: Vec::new(),
    };

    let mut index = 0;
    while index < lines.len() {
        let line = &lines[index];
        let line_no = index + 1;
        let mut scan = LineScan::new(line);
        if scan.at_end() {
            index += 1;
            continue;
        }
        let keyword_column = scan.column();
        let Some(keyword) = statement_keyword(line) else {
            diagnostics.push(PackDiagnostic::new(
                path,
                line_no,
                keyword_column,
                "expected `package`, `use`, or `policy`",
            ));
            index += 1;
            continue;
        };
        // Re-consume the keyword so the scanner sits after it.
        scan.ident();
        match keyword {
            "package" => {
                parse_package(
                    path,
                    line_no,
                    &mut scan,
                    keyword_column,
                    &mut parsed,
                    diagnostics,
                );
                index += 1;
            }
            "use" => {
                parse_use(
                    path,
                    line_no,
                    &mut scan,
                    keyword_column,
                    &mut parsed,
                    diagnostics,
                );
                index += 1;
            }
            "policy" => {
                index = parse_policy(path, &lines, index, &mut scan, &mut parsed, diagnostics);
            }
            _ => unreachable!("statement_keyword returns only known keywords"),
        }
    }
    parsed
}

fn parse_package(
    path: &str,
    line_no: usize,
    scan: &mut LineScan<'_>,
    keyword_column: usize,
    parsed: &mut ParsedFile,
    diagnostics: &mut Vec<PackDiagnostic>,
) {
    scan.skip_ws();
    let package_column = scan.column();
    let Some(segments) = scan.path() else {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            package_column,
            "expected a package path after `package`",
        ));
        return;
    };
    if !scan.at_end() {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            scan.column(),
            "unexpected text after package declaration",
        ));
        return;
    }
    if parsed.package.is_some() {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            keyword_column,
            "duplicate `package` declaration",
        ));
        return;
    }
    parsed.package = Some((segments.join("::"), line_no, package_column));
}

fn parse_use(
    path: &str,
    line_no: usize,
    scan: &mut LineScan<'_>,
    keyword_column: usize,
    parsed: &mut ParsedFile,
    diagnostics: &mut Vec<PackDiagnostic>,
) {
    scan.skip_ws();
    let target_column = scan.column();
    let Some(segments) = scan.path() else {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            target_column,
            "expected a policy path after `use`",
        ));
        return;
    };
    if segments.len() < 2 {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            target_column,
            "`use` needs a qualified name (`package::policy`)",
        ));
        return;
    }
    let mut alias = segments.last().expect("non-empty path").clone();
    if !scan.at_end() {
        let as_column = scan.column();
        match scan.ident().as_deref() {
            Some("as") => match scan.ident() {
                Some(name) => alias = name,
                None => {
                    diagnostics.push(PackDiagnostic::new(
                        path,
                        line_no,
                        scan.column(),
                        "expected an alias after `as`",
                    ));
                    return;
                }
            },
            _ => {
                diagnostics.push(PackDiagnostic::new(
                    path,
                    line_no,
                    as_column,
                    "unexpected text after `use` (expected `as alias`)",
                ));
                return;
            }
        }
        if !scan.at_end() {
            diagnostics.push(PackDiagnostic::new(
                path,
                line_no,
                scan.column(),
                "unexpected text after `use` alias",
            ));
            return;
        }
    }
    parsed.uses.push(UseDecl {
        target: segments.join("::"),
        alias,
        line: line_no,
        column: keyword_column,
    });
}

/// Parses a `policy` statement starting at `lines[start]`, consuming
/// continuation lines.  Returns the index of the first line after the
/// statement.
fn parse_policy(
    path: &str,
    lines: &[Vec<char>],
    start: usize,
    scan: &mut LineScan<'_>,
    parsed: &mut ParsedFile,
    diagnostics: &mut Vec<PackDiagnostic>,
) -> usize {
    let line_no = start + 1;

    // Figure out where the statement ends regardless of how the header
    // parses, so recovery skips the whole body.
    let mut end = start + 1;
    while end < lines.len() && statement_keyword(&lines[end]).is_none() {
        end += 1;
    }

    scan.skip_ws();
    let name_column = scan.column();
    let Some(name) = scan.ident() else {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            name_column,
            "expected a policy name after `policy`",
        ));
        return end;
    };
    scan.skip_ws();
    if scan.peek() != Some('=') {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            scan.column(),
            "expected `=` after the policy name",
        ));
        return end;
    }
    scan.pos += 1;

    let body_column = scan.column();
    let mut body: String = scan.chars[scan.pos..].iter().collect();
    for line in &lines[start + 1..end] {
        body.push('\n');
        body.extend(line.iter());
    }
    if body.trim().is_empty() {
        diagnostics.push(PackDiagnostic::new(
            path,
            line_no,
            body_column,
            "policy body is empty",
        ));
        return end;
    }
    parsed.policies.push(PolicyDecl {
        name,
        name_line: line_no,
        name_column,
        body,
        body_line: line_no,
        body_column,
    });
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(source: &str) -> ParsedFile {
        let mut diagnostics = Vec::new();
        let parsed = parse_file("test.ppol", source, &mut diagnostics);
        assert!(diagnostics.is_empty(), "unexpected: {:?}", diagnostics);
        parsed
    }

    fn parse_diags(source: &str) -> Vec<PackDiagnostic> {
        let mut diagnostics = Vec::new();
        parse_file("test.ppol", source, &mut diagnostics);
        diagnostics
    }

    #[test]
    fn parses_package_use_and_policies() {
        let parsed = parse_ok(
            "# a comment\npackage a::b\nuse other::pkg::thing as t\n\npolicy p = c!Any; Any\npolicy q = @p | eps\n",
        );
        assert_eq!(parsed.package.as_ref().unwrap().0, "a::b");
        assert_eq!(parsed.uses.len(), 1);
        assert_eq!(parsed.uses[0].target, "other::pkg::thing");
        assert_eq!(parsed.uses[0].alias, "t");
        assert_eq!(parsed.policies.len(), 2);
        assert_eq!(parsed.policies[0].name, "p");
        assert_eq!(parsed.policies[0].body.trim(), "c!Any; Any");
        assert_eq!(parsed.policies[1].body.trim(), "@p | eps");
    }

    #[test]
    fn use_defaults_alias_to_last_segment() {
        let parsed = parse_ok("use a::b::c\n");
        assert_eq!(parsed.uses[0].alias, "c");
    }

    #[test]
    fn policy_bodies_span_lines_until_the_next_statement() {
        let parsed = parse_ok("policy p = a!Any |\n  b?Any\npolicy q = eps\n");
        assert_eq!(parsed.policies[0].body, " a!Any |\n  b?Any");
        assert_eq!(parsed.policies[0].body_line, 1);
        assert_eq!(parsed.policies[0].body_column, 11);
        assert_eq!(parsed.policies[1].name, "q");
    }

    #[test]
    fn comments_are_stripped_with_columns_preserved() {
        let parsed = parse_ok("policy p = Any # trailing\npolicy q = eps // also\n");
        assert_eq!(parsed.policies[0].body.trim(), "Any");
        assert_eq!(parsed.policies[1].body.trim(), "eps");
    }

    #[test]
    fn malformed_statements_recover_at_the_next_statement() {
        let diags = parse_diags("policy = Any\npolicy ok = eps\nuse lonely\n");
        assert_eq!(diags.len(), 2, "{:?}", diags);
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].column, 8);
        assert!(diags[0].message.contains("policy name"));
        assert_eq!(diags[1].line, 3);
        assert!(diags[1].message.contains("qualified name"));

        // A stray line outside any policy body is its own diagnostic;
        // lines after a `policy` header are body continuations instead.
        let diags = parse_diags("what is this\npolicy ok = eps\n");
        assert_eq!(diags.len(), 1, "{:?}", diags);
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("expected `package`"));

        let mut diagnostics = Vec::new();
        let parsed = parse_file(
            "test.ppol",
            "policy = Any\npolicy ok = eps\n",
            &mut diagnostics,
        );
        assert_eq!(parsed.policies.len(), 1);
        assert_eq!(parsed.policies[0].name, "ok");
    }

    #[test]
    fn missing_equals_and_empty_body_are_diagnosed() {
        let diags = parse_diags("policy p Any\n");
        assert_eq!(diags[0].column, 10);
        assert!(diags[0].message.contains("expected `=`"));

        let diags = parse_diags("policy p = # nothing\n");
        assert!(diags[0].message.contains("body is empty"));
    }

    #[test]
    fn duplicate_package_is_diagnosed() {
        let diags = parse_diags("package a\npackage b\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("duplicate"));
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn crlf_input_parses_without_stray_carriage_returns() {
        let parsed = parse_ok("package a::b\r\npolicy p = Any\r\n");
        assert_eq!(parsed.package.as_ref().unwrap().0, "a::b");
        assert_eq!(parsed.policies[0].body.trim(), "Any");
    }
}
