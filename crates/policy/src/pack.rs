//! Pack compilation: name resolution, reference splicing and pattern
//! compilation, producing a flat [`PolicyPack`].
//!
//! Compilation is all-or-nothing.  Every file is parsed, every policy
//! body is resolved and compiled, and every problem becomes a
//! [`PackDiagnostic`]; if any diagnostic was produced the whole pack is
//! rejected.  A successful compile yields self-contained policies —
//! `@references` have been spliced away — whose `source` field is the
//! canonical rendering of the compiled pattern.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};

use piprov_patterns::{parse_pattern, Pattern};

use crate::diag::{PackDiagnostic, PackError};
use crate::nearest_name;
use crate::parse::{parse_file, ParsedFile, PolicyDecl};
use crate::source::{PackFile, PackSource};

/// One compiled policy: a fully qualified name bound to a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDef {
    /// Fully qualified name, e.g. `supply_chain::build::vendor_only`.
    pub name: String,
    /// The policy's package, e.g. `supply_chain::build`.
    pub package: String,
    /// Canonical textual form of the compiled pattern.
    pub source: String,
    /// The compiled pattern, references spliced in.
    pub pattern: Pattern,
}

/// A compiled policy pack: every policy of a [`PackSource`], compiled
/// and sorted by fully qualified name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyPack {
    /// Root package segment, shared by every policy in the pack.
    pub root: String,
    /// The compiled policies, sorted by name.
    pub policies: Vec<PolicyDef>,
}

fn is_valid_segment(segment: &str) -> bool {
    let mut chars = segment.chars();
    match chars.next() {
        Some(c) if c == '_' || c.is_alphabetic() => {}
        _ => return false,
    }
    chars.all(|c| c == '_' || c.is_alphanumeric())
}

/// Derives the package of a pack file from its root-relative path:
/// root segment, then one segment per directory, then the file stem.
fn derive_package(root: &str, path: &str) -> Result<String, String> {
    let Some(stripped) = path.strip_suffix(".ppol") else {
        return Err(format!("pack file `{}` does not end in `.ppol`", path));
    };
    let mut segments = vec![root.to_string()];
    for segment in stripped.split('/') {
        if !is_valid_segment(segment) {
            return Err(format!(
                "path segment `{}` is not a valid package name",
                segment
            ));
        }
        segments.push(segment.to_string());
    }
    Ok(segments.join("::"))
}

/// A `@reference` site inside a policy body, in character offsets.
struct RefSite {
    /// Offset of the `@` within the body.
    offset: usize,
    /// Length of the whole reference token, `@` included.
    len: usize,
    /// Index of the referenced definition.
    target: usize,
}

/// Scans a body for `@name` / `@pkg::name` references.  Returns the
/// raw sites (offset, length, path segments) plus scan errors as
/// (offset, message) pairs.
#[allow(clippy::type_complexity)]
fn scan_refs(body: &[char]) -> (Vec<(usize, usize, Vec<String>)>, Vec<(usize, String)>) {
    let mut sites = Vec::new();
    let mut errors = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i] != '@' {
            i += 1;
            continue;
        }
        let start = i;
        i += 1;
        let mut segments = Vec::new();
        loop {
            if !matches!(body.get(i), Some(&c) if c == '_' || c.is_alphabetic()) {
                if segments.is_empty() {
                    errors.push((start, "expected a policy name after `@`".to_string()));
                } else {
                    errors.push((i, "expected a name after `::`".to_string()));
                }
                break;
            }
            let mut word = String::new();
            while let Some(&c) = body.get(i) {
                if c != '_' && !c.is_alphanumeric() {
                    break;
                }
                word.push(c);
                i += 1;
            }
            segments.push(word);
            if body.get(i) == Some(&':') && body.get(i + 1) == Some(&':') {
                i += 2;
                continue;
            }
            sites.push((start, i - start, segments));
            break;
        }
    }
    (sites, errors)
}

/// Maps a character offset within a policy body back to a 1-based
/// file line/column.
fn body_position(decl: &PolicyDecl, offset: usize) -> (usize, usize) {
    let mut line = decl.body_line;
    let mut column = decl.body_column;
    for (i, c) in decl.body.chars().enumerate() {
        if i == offset {
            break;
        }
        if c == '\n' {
            line += 1;
            column = 1;
        } else {
            column += 1;
        }
    }
    (line, column)
}

/// One definition awaiting compilation.
struct Def {
    file: usize,
    decl: usize,
    name: String,
    package: String,
}

/// A span of the spliced body: characters `sub_start..sub_end` of the
/// substituted text came from `orig_start` (literal) or from a
/// reference at `splice_at` (spliced).
struct Span {
    sub_start: usize,
    sub_end: usize,
    orig_start: usize,
    splice_at: Option<usize>,
}

impl PolicyPack {
    /// Compiles a pack source into a flat, sorted policy list.
    ///
    /// # Errors
    ///
    /// Returns a [`PackError`] listing every diagnostic if *anything*
    /// fails — a pack never compiles partially.
    pub fn compile(source: &PackSource) -> Result<PolicyPack, PackError> {
        let mut diags: Vec<PackDiagnostic> = Vec::new();

        if !is_valid_segment(&source.root) {
            diags.push(PackDiagnostic::new(
                "<pack>",
                1,
                1,
                format!("pack root `{}` is not a valid package name", source.root),
            ));
            return Err(PackError::new(diags));
        }

        let mut files: Vec<&PackFile> = source.files.iter().collect();
        files.sort_by_key(|f| &f.path);

        // Parse every file and derive its package from its path.
        let mut parsed_files: Vec<(ParsedFile, String)> = Vec::new();
        let mut seen_paths: HashMap<&str, ()> = HashMap::new();
        for file in files {
            if seen_paths.insert(&file.path, ()).is_some() {
                diags.push(PackDiagnostic::new(
                    &file.path,
                    1,
                    1,
                    format!("duplicate pack file `{}`", file.path),
                ));
                continue;
            }
            let package = match derive_package(&source.root, &file.path) {
                Ok(package) => package,
                Err(message) => {
                    diags.push(PackDiagnostic::new(&file.path, 1, 1, message));
                    continue;
                }
            };
            let parsed = parse_file(&file.path, &file.source, &mut diags);
            if let Some((declared, line, column)) = &parsed.package {
                if declared != &package {
                    diags.push(PackDiagnostic::new(
                        &file.path,
                        *line,
                        *column,
                        format!(
                            "package declaration `{}` does not match `{}` derived from the file's path",
                            declared, package
                        ),
                    ));
                }
            }
            parsed_files.push((parsed, package));
        }

        // Collect definitions; packages are path-derived so duplicates
        // can only occur within one file.
        let mut defs: Vec<Def> = Vec::new();
        let mut by_name: HashMap<String, usize> = HashMap::new();
        for (file_index, (parsed, package)) in parsed_files.iter().enumerate() {
            for (decl_index, decl) in parsed.policies.iter().enumerate() {
                let name = format!("{}::{}", package, decl.name);
                if by_name.contains_key(&name) {
                    diags.push(PackDiagnostic::new(
                        &parsed.path,
                        decl.name_line,
                        decl.name_column,
                        format!("policy `{}` is defined twice", decl.name),
                    ));
                    continue;
                }
                by_name.insert(name.clone(), defs.len());
                defs.push(Def {
                    file: file_index,
                    decl: decl_index,
                    name,
                    package: package.clone(),
                });
            }
        }
        let all_names: Vec<&str> = {
            let mut names: Vec<&str> = by_name.keys().map(String::as_str).collect();
            names.sort_unstable();
            names
        };

        // Per-file scope: bare name -> definition index.  Local
        // policies first, then `use` imports.
        let mut scopes: Vec<HashMap<String, usize>> = Vec::new();
        for (file_index, (parsed, package)) in parsed_files.iter().enumerate() {
            let mut scope: HashMap<String, usize> = HashMap::new();
            for decl in &parsed.policies {
                let name = format!("{}::{}", package, decl.name);
                if let Some(&idx) = by_name.get(&name) {
                    if defs[idx].file == file_index {
                        scope.insert(decl.name.clone(), idx);
                    }
                }
            }
            for use_decl in &parsed.uses {
                let Some(&target) = by_name.get(&use_decl.target) else {
                    let mut message = format!("`use` of unknown policy `{}`", use_decl.target);
                    if let Some(hint) = nearest_name(&use_decl.target, all_names.iter().copied()) {
                        message.push_str(&format!(" (did you mean `{}`?)", hint));
                    }
                    diags.push(PackDiagnostic::new(
                        &parsed.path,
                        use_decl.line,
                        use_decl.column,
                        message,
                    ));
                    continue;
                };
                if scope.contains_key(&use_decl.alias) {
                    diags.push(PackDiagnostic::new(
                        &parsed.path,
                        use_decl.line,
                        use_decl.column,
                        format!("`use` alias `{}` is already in scope", use_decl.alias),
                    ));
                    continue;
                }
                scope.insert(use_decl.alias.clone(), target);
            }
            scopes.push(scope);
        }

        // Resolve reference sites in every body.
        let mut refs: Vec<Vec<RefSite>> = Vec::with_capacity(defs.len());
        let mut resolve_failed: Vec<bool> = vec![false; defs.len()];
        for (def_index, def) in defs.iter().enumerate() {
            let (parsed, _) = &parsed_files[def.file];
            let decl = &parsed.policies[def.decl];
            let body: Vec<char> = decl.body.chars().collect();
            let (sites, errors) = scan_refs(&body);
            for (offset, message) in errors {
                let (line, column) = body_position(decl, offset);
                diags.push(PackDiagnostic::new(&parsed.path, line, column, message));
                resolve_failed[def_index] = true;
            }
            let mut resolved = Vec::new();
            for (offset, len, segments) in sites {
                let target = if segments.len() == 1 {
                    scopes[def.file].get(&segments[0]).copied()
                } else {
                    by_name.get(&segments.join("::")).copied()
                };
                match target {
                    Some(target) => resolved.push(RefSite {
                        offset,
                        len,
                        target,
                    }),
                    None => {
                        let written = segments.join("::");
                        let mut message = format!("reference to unknown policy `@{}`", written);
                        let candidates: Vec<&str> = if segments.len() == 1 {
                            scopes[def.file].keys().map(String::as_str).collect()
                        } else {
                            all_names.clone()
                        };
                        if let Some(hint) = nearest_name(&written, candidates) {
                            message.push_str(&format!(" (did you mean `{}`?)", hint));
                        }
                        let (line, column) = body_position(decl, offset);
                        diags.push(PackDiagnostic::new(&parsed.path, line, column, message));
                        resolve_failed[def_index] = true;
                    }
                }
            }
            refs.push(resolved);
        }

        // Topological order over the reference graph (iterative DFS so
        // adversarially deep chains cannot overflow the stack).
        let mut state = vec![0u8; defs.len()]; // 0 new, 1 open, 2 done
        let mut order: Vec<usize> = Vec::with_capacity(defs.len());
        let mut cyclic = vec![false; defs.len()];
        for start in 0..defs.len() {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                let deps = &refs[node];
                if *edge < deps.len() {
                    let next = deps[*edge].target;
                    *edge += 1;
                    match state[next] {
                        0 => {
                            state[next] = 1;
                            stack.push((next, 0));
                        }
                        1 if !cyclic[next] => {
                            cyclic[next] = true;
                            let (parsed, _) = &parsed_files[defs[next].file];
                            let decl = &parsed.policies[defs[next].decl];
                            diags.push(PackDiagnostic::new(
                                &parsed.path,
                                decl.name_line,
                                decl.name_column,
                                format!(
                                    "policy `{}` participates in a reference cycle",
                                    defs[next].name
                                ),
                            ));
                        }
                        _ => {}
                    }
                } else {
                    state[node] = 2;
                    order.push(node);
                    stack.pop();
                }
            }
        }

        // Compile in dependency order, splicing referenced patterns.
        let mut compiled: Vec<Option<(Pattern, String)>> = (0..defs.len()).map(|_| None).collect();
        for &def_index in &order {
            if cyclic[def_index] || resolve_failed[def_index] {
                continue;
            }
            let def = &defs[def_index];
            let (parsed, _) = &parsed_files[def.file];
            let decl = &parsed.policies[def.decl];
            let missing_dep = refs[def_index]
                .iter()
                .find(|site| compiled[site.target].is_none());
            if let Some(site) = missing_dep {
                let (line, column) = body_position(decl, site.offset);
                diags.push(PackDiagnostic::new(
                    &parsed.path,
                    line,
                    column,
                    format!(
                        "reference to policy `{}`, which did not compile",
                        defs[site.target].name
                    ),
                ));
                continue;
            }

            let body: Vec<char> = decl.body.chars().collect();
            let mut substituted = String::new();
            let mut sub_len = 0usize;
            let mut spans: Vec<Span> = Vec::new();
            let mut cursor = 0usize;
            let push_literal = |from: usize,
                                to: usize,
                                substituted: &mut String,
                                sub_len: &mut usize,
                                spans: &mut Vec<Span>| {
                if from < to {
                    substituted.extend(&body[from..to]);
                    spans.push(Span {
                        sub_start: *sub_len,
                        sub_end: *sub_len + (to - from),
                        orig_start: from,
                        splice_at: None,
                    });
                    *sub_len += to - from;
                }
            };
            for site in &refs[def_index] {
                push_literal(
                    cursor,
                    site.offset,
                    &mut substituted,
                    &mut sub_len,
                    &mut spans,
                );
                let (_, target_source) = compiled[site.target]
                    .as_ref()
                    .expect("dependencies compile before dependents");
                let splice = format!("({})", target_source);
                let splice_chars = splice.chars().count();
                substituted.push_str(&splice);
                spans.push(Span {
                    sub_start: sub_len,
                    sub_end: sub_len + splice_chars,
                    orig_start: site.offset,
                    splice_at: Some(site.offset),
                });
                sub_len += splice_chars;
                cursor = site.offset + site.len;
            }
            push_literal(
                cursor,
                body.len(),
                &mut substituted,
                &mut sub_len,
                &mut spans,
            );

            match parse_pattern(&substituted) {
                Ok(pattern) => {
                    let rendered = pattern.to_string();
                    compiled[def_index] = Some((pattern, rendered));
                }
                Err(err) => {
                    let orig_offset = spans
                        .iter()
                        .find(|span| span.sub_start <= err.position && err.position < span.sub_end)
                        .map(|span| match span.splice_at {
                            Some(at) => at,
                            None => span.orig_start + (err.position - span.sub_start),
                        })
                        .unwrap_or(body.len());
                    let (line, column) = body_position(decl, orig_offset);
                    diags.push(PackDiagnostic::new(
                        &parsed.path,
                        line,
                        column,
                        format!("invalid pattern: {}", err.message),
                    ));
                }
            }
        }

        if !diags.is_empty() {
            return Err(PackError::new(diags));
        }

        let mut policies: Vec<PolicyDef> = defs
            .into_iter()
            .zip(compiled)
            .map(|(def, compiled)| {
                let (pattern, source) = compiled.expect("no diagnostics means all compiled");
                PolicyDef {
                    name: def.name,
                    package: def.package,
                    source,
                    pattern,
                }
            })
            .collect();
        policies.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(PolicyPack {
            root: source.root.clone(),
            policies,
        })
    }

    /// Looks up a policy by fully qualified name.
    pub fn get(&self, name: &str) -> Option<&PolicyDef> {
        self.policies
            .binary_search_by(|def| def.name.as_str().cmp(name))
            .ok()
            .map(|index| &self.policies[index])
    }

    /// Renders the pack back to `.ppol` sources in canonical form: one
    /// file per package, policies sorted, `@references` expanded.
    ///
    /// Rendering then recompiling is a fixed point: the recompiled
    /// pack renders to the identical sources.
    pub fn render(&self) -> PackSource {
        let mut by_package: BTreeMap<&str, Vec<&PolicyDef>> = BTreeMap::new();
        for def in &self.policies {
            match by_package.entry(&def.package) {
                Entry::Vacant(slot) => {
                    slot.insert(vec![def]);
                }
                Entry::Occupied(mut slot) => slot.get_mut().push(def),
            }
        }
        let mut files = Vec::new();
        for (package, defs) in by_package {
            let relative: Vec<&str> = package.split("::").skip(1).collect();
            let path = format!("{}.ppol", relative.join("/"));
            let mut text = format!("package {}\n\n", package);
            for def in defs {
                let local = def
                    .name
                    .rsplit("::")
                    .next()
                    .expect("fully qualified names have segments");
                text.push_str(&format!("policy {} = {}\n", local, def.source));
            }
            files.push(PackFile::new(path, text));
        }
        PackSource::new(self.root.clone(), files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_file(source: &str) -> PackSource {
        PackSource::new("pack", vec![PackFile::new("rules.ppol", source)])
    }

    fn compile_err(source: &str) -> PackError {
        PolicyPack::compile(&one_file(source)).unwrap_err()
    }

    #[test]
    fn compiles_a_simple_pack() {
        let pack = PolicyPack::compile(&one_file(
            "policy from_c = c!Any; Any\npolicy tail = Any; d!Any\n",
        ))
        .unwrap();
        assert_eq!(pack.root, "pack");
        assert_eq!(pack.policies.len(), 2);
        assert_eq!(pack.policies[0].name, "pack::rules::from_c");
        assert_eq!(pack.policies[0].package, "pack::rules");
        assert_eq!(pack.policies[0].source, "c!Any; Any");
        assert_eq!(pack.get("pack::rules::tail").unwrap().source, "Any; d!Any");
        assert!(pack.get("pack::rules::missing").is_none());
    }

    #[test]
    fn local_references_splice_the_referenced_pattern() {
        let pack = PolicyPack::compile(&one_file(
            "policy base = c!Any; Any\npolicy wide = @base | eps\n",
        ))
        .unwrap();
        let wide = pack.get("pack::rules::wide").unwrap();
        assert_eq!(wide.source, "c!Any; Any | eps");
        assert_eq!(wide.pattern, parse_pattern("(c!Any; Any) | eps").unwrap());
    }

    #[test]
    fn cross_file_references_use_imports_and_qualified_names() {
        let source = PackSource::new(
            "pack",
            vec![
                PackFile::new("base.ppol", "policy origin = Any; d!Any\n"),
                PackFile::new(
                    "derived.ppol",
                    "use pack::base::origin as o\npolicy both = @o | @pack::base::origin\n",
                ),
            ],
        );
        let pack = PolicyPack::compile(&source).unwrap();
        let both = pack.get("pack::derived::both").unwrap();
        assert_eq!(both.source, "Any; d!Any | Any; d!Any");
    }

    #[test]
    fn reference_chains_compile_in_dependency_order() {
        let pack = PolicyPack::compile(&one_file(
            "policy c3 = @c2; Any\npolicy c1 = a!Any\npolicy c2 = @c1*\n",
        ))
        .unwrap();
        // c2 = (a!Any)*  — the splice parenthesises, so the star binds
        // to the whole referenced pattern.
        assert_eq!(pack.get("pack::rules::c2").unwrap().source, "(a!Any)*");
        assert_eq!(pack.get("pack::rules::c3").unwrap().source, "(a!Any)*; Any");
    }

    #[test]
    fn reference_cycles_are_rejected_all_or_nothing() {
        let err = compile_err("policy a = @b\npolicy b = @a\npolicy fine = eps\n");
        assert!(err.diagnostics.iter().any(|d| d.message.contains("cycle")));
        // Self-reference is the smallest cycle.
        let err = compile_err("policy a = @a | eps\n");
        assert!(err.diagnostics.iter().any(|d| d.message.contains("cycle")));
    }

    #[test]
    fn unknown_references_get_a_nearest_name_hint() {
        let err = compile_err("policy vendor_only = Any\npolicy p = @vendor_onyl\n");
        let diag = &err.diagnostics[0];
        assert!(diag.message.contains("unknown policy `@vendor_onyl`"));
        assert!(diag.message.contains("did you mean `vendor_only`?"));
        assert_eq!(diag.line, 2);
        assert_eq!(diag.column, 12);
    }

    #[test]
    fn pattern_errors_carry_file_line_and_column() {
        let err = compile_err("policy ok = eps\npolicy bad = a!Any |\n  ; Any\n");
        assert_eq!(err.diagnostics.len(), 1);
        let diag = &err.diagnostics[0];
        assert_eq!(diag.path, "rules.ppol");
        assert_eq!(diag.line, 3);
        assert_eq!(diag.column, 3);
        assert!(diag.message.contains("invalid pattern"), "{}", diag.message);
    }

    #[test]
    fn errors_inside_a_splice_point_at_the_reference() {
        // The reference itself is fine; an error *after* it must not be
        // attributed to the spliced text's coordinates.
        let err = compile_err("policy base = Any\npolicy bad = @base ;; eps\n");
        let diag = &err.diagnostics[0];
        assert_eq!(diag.line, 2);
        assert!(diag.column >= 20, "column {} too small", diag.column);
    }

    #[test]
    fn package_declaration_must_match_the_path() {
        let source = PackSource::new(
            "pack",
            vec![PackFile::new(
                "rules.ppol",
                "package other::place\npolicy p = Any\n",
            )],
        );
        let err = PolicyPack::compile(&source).unwrap_err();
        assert!(err.diagnostics[0]
            .message
            .contains("does not match `pack::rules`"));
    }

    #[test]
    fn invalid_paths_and_roots_are_rejected() {
        let err = PolicyPack::compile(&PackSource::new(
            "pack",
            vec![PackFile::new("not-a-segment!.ppol", "policy p = Any\n")],
        ))
        .unwrap_err();
        assert!(err.diagnostics[0].message.contains("not a valid package"));

        let err = PolicyPack::compile(&PackSource::new(
            "bad root",
            vec![PackFile::new("a.ppol", "policy p = Any\n")],
        ))
        .unwrap_err();
        assert!(err.diagnostics[0].message.contains("pack root"));

        let err = PolicyPack::compile(&PackSource::new(
            "pack",
            vec![PackFile::new("a.txt", "policy p = Any\n")],
        ))
        .unwrap_err();
        assert!(err.diagnostics[0].message.contains(".ppol"));
    }

    #[test]
    fn any_error_rejects_the_whole_pack() {
        let source = PackSource::new(
            "pack",
            vec![
                PackFile::new("good.ppol", "policy fine = Any\n"),
                PackFile::new("bad.ppol", "policy broken = ;;;\n"),
            ],
        );
        let err = PolicyPack::compile(&source).unwrap_err();
        assert_eq!(err.diagnostics.len(), 1);
        assert_eq!(err.diagnostics[0].path, "bad.ppol");
    }

    #[test]
    fn empty_packs_compile_to_no_policies() {
        let pack = PolicyPack::compile(&PackSource::new("pack", Vec::new())).unwrap();
        assert!(pack.policies.is_empty());
    }

    #[test]
    fn render_expands_references_and_recompiles_to_a_fixed_point() {
        let source = PackSource::new(
            "pack",
            vec![
                PackFile::new("base.ppol", "policy origin = Any; d!Any\n"),
                PackFile::new(
                    "derived.ppol",
                    "use pack::base::origin\npolicy wide = @origin | eps\n",
                ),
            ],
        );
        let pack = PolicyPack::compile(&source).unwrap();
        let rendered = pack.render();
        let paths: Vec<&str> = rendered.files.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, ["base.ppol", "derived.ppol"]);
        assert!(rendered.files[1].source.contains("package pack::derived"));

        let repack = PolicyPack::compile(&rendered).unwrap();
        assert_eq!(repack, pack.clone().normalized_for_comparison());
        assert_eq!(repack.render(), rendered);
    }

    impl PolicyPack {
        /// Render comparison helper: after one render+recompile the
        /// *patterns* may differ structurally (display flattens
        /// parenthesisation) while agreeing textually, so compare on
        /// names, packages and canonical sources.
        fn normalized_for_comparison(mut self) -> PolicyPack {
            for def in &mut self.policies {
                def.pattern = parse_pattern(&def.source).expect("canonical sources reparse");
            }
            self
        }
    }

    #[test]
    fn duplicate_policies_and_files_are_diagnosed() {
        let err = compile_err("policy p = Any\npolicy p = eps\n");
        assert!(err.diagnostics[0].message.contains("defined twice"));

        let source = PackSource {
            root: "pack".to_string(),
            files: vec![
                PackFile::new("a.ppol", "policy p = Any\n"),
                PackFile::new("a.ppol", "policy q = Any\n"),
            ],
        };
        let err = PolicyPack::compile(&source).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("duplicate pack file")));
    }

    #[test]
    fn dangling_reference_syntax_is_diagnosed() {
        let err = compile_err("policy p = @ | eps\n");
        assert!(err.diagnostics[0].message.contains("after `@`"));
        let err = compile_err("policy p = @a:: | eps\npolicy a = Any\n");
        assert!(err.diagnostics[0].message.contains("after `::`"));
    }
}
