//! Compile diagnostics for policy packs.
//!
//! Every problem found while compiling a pack is reported as a
//! [`PackDiagnostic`] pinned to a file, line and column (both
//! 1-based, counted in characters).  Compilation collects as many
//! diagnostics as it can — a statement that fails to parse does not
//! hide problems in the statements after it — and returns them all in
//! one [`PackError`].

use std::error::Error;
use std::fmt;

/// A single problem in a pack source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackDiagnostic {
    /// Path of the offending file, relative to the pack root.
    pub path: String,
    /// 1-based line of the problem.
    pub line: usize,
    /// 1-based column (in characters) of the problem.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl PackDiagnostic {
    /// Builds a diagnostic pinned to `path:line:column`.
    pub fn new(
        path: impl Into<String>,
        line: usize,
        column: usize,
        message: impl Into<String>,
    ) -> PackDiagnostic {
        PackDiagnostic {
            path: path.into(),
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for PackDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.path, self.line, self.column, self.message
        )
    }
}

/// The full set of diagnostics from a failed pack compilation.
///
/// Always non-empty; diagnostics are ordered by file path, then line,
/// then column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackError {
    /// All problems found, in file/line/column order.
    pub diagnostics: Vec<PackDiagnostic>,
}

impl PackError {
    pub(crate) fn new(mut diagnostics: Vec<PackDiagnostic>) -> PackError {
        diagnostics.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.column, a.message.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.column,
                b.message.as_str(),
            ))
        });
        PackError { diagnostics }
    }
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy pack failed to compile:")?;
        for diagnostic in &self.diagnostics {
            write!(f, "\n  {}", diagnostic)?;
        }
        Ok(())
    }
}

impl Error for PackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_as_path_line_column() {
        let d = PackDiagnostic::new("build.ppol", 3, 7, "expected '='");
        assert_eq!(d.to_string(), "build.ppol:3:7: expected '='");
    }

    #[test]
    fn pack_error_sorts_and_lists_every_diagnostic() {
        let err = PackError::new(vec![
            PackDiagnostic::new("b.ppol", 1, 1, "later file"),
            PackDiagnostic::new("a.ppol", 9, 2, "later line"),
            PackDiagnostic::new("a.ppol", 2, 5, "first"),
        ]);
        let paths: Vec<(&str, usize)> = err
            .diagnostics
            .iter()
            .map(|d| (d.path.as_str(), d.line))
            .collect();
        assert_eq!(paths, [("a.ppol", 2), ("a.ppol", 9), ("b.ppol", 1)]);
        let rendered = err.to_string();
        assert!(rendered.contains("a.ppol:2:5: first"), "{rendered}");
        assert!(rendered.lines().count() == 4, "{rendered}");
    }
}
