//! Pack sources: the raw `.ppol` files of a pack, before compilation.
//!
//! A [`PackSource`] is a named root plus a list of files with paths
//! relative to that root.  It can be assembled in memory (the wire
//! `LoadPack` message carries one inline) or read from a directory
//! tree with [`PackSource::from_dir`], where the directory name
//! becomes the root package segment and each relative path contributes
//! the remaining segments: `supply_chain/build.ppol` holds package
//! `supply_chain::build`.

use std::fs;
use std::io;
use std::path::Path;

/// One `.ppol` file of a pack: a root-relative path and its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackFile {
    /// Path relative to the pack root, `/`-separated, ending in `.ppol`.
    pub path: String,
    /// The file's full text.
    pub source: String,
}

impl PackFile {
    /// Builds a pack file from a relative path and its contents.
    pub fn new(path: impl Into<String>, source: impl Into<String>) -> PackFile {
        PackFile {
            path: path.into(),
            source: source.into(),
        }
    }
}

/// A complete pack source: root package name plus every file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackSource {
    /// Root package segment; the directory name when loaded from disk.
    pub root: String,
    /// The pack's files, kept sorted by path for deterministic output.
    pub files: Vec<PackFile>,
}

impl PackSource {
    /// Assembles a pack source in memory.  Files are sorted by path so
    /// compilation order (and diagnostic order) is deterministic.
    pub fn new(root: impl Into<String>, mut files: Vec<PackFile>) -> PackSource {
        files.sort_by(|a, b| a.path.cmp(&b.path));
        PackSource {
            root: root.into(),
            files,
        }
    }

    /// Reads every `.ppol` file under `dir` (recursively) into a pack
    /// source whose root is the directory's name.
    ///
    /// Non-`.ppol` files are ignored.  Paths are recorded relative to
    /// `dir` with `/` separators regardless of platform.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from traversal and reading, including
    /// files that are not valid UTF-8.
    pub fn from_dir(dir: &Path) -> io::Result<PackSource> {
        let root = dir
            .file_name()
            .map(|name| name.to_string_lossy().into_owned())
            .unwrap_or_else(|| "pack".to_string());
        let mut files = Vec::new();
        collect_ppol_files(dir, "", &mut files)?;
        Ok(PackSource::new(root, files))
    }
}

fn collect_ppol_files(dir: &Path, prefix: &str, out: &mut Vec<PackFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?;
    entries.sort_by_key(|entry| entry.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        let relative = if prefix.is_empty() {
            name.clone()
        } else {
            format!("{}/{}", prefix, name)
        };
        let path = entry.path();
        if path.is_dir() {
            collect_ppol_files(&path, &relative, out)?;
        } else if name.ends_with(".ppol") {
            out.push(PackFile::new(relative, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_are_sorted_by_path() {
        let source = PackSource::new(
            "p",
            vec![
                PackFile::new("z.ppol", ""),
                PackFile::new("a/b.ppol", ""),
                PackFile::new("a.ppol", ""),
            ],
        );
        let paths: Vec<&str> = source.files.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, ["a.ppol", "a/b.ppol", "z.ppol"]);
    }

    #[test]
    fn from_dir_reads_only_ppol_files_recursively() {
        let base = std::env::temp_dir().join(format!(
            "piprov-policy-src-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let sub = base.join("sub");
        fs::create_dir_all(&sub).unwrap();
        fs::write(base.join("a.ppol"), "policy x = Any\n").unwrap();
        fs::write(base.join("notes.txt"), "ignore me").unwrap();
        fs::write(sub.join("b.ppol"), "policy y = eps\n").unwrap();

        let source = PackSource::from_dir(&base).unwrap();
        assert_eq!(source.root, base.file_name().unwrap().to_string_lossy());
        let paths: Vec<&str> = source.files.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, ["a.ppol", "sub/b.ppol"]);
        assert!(source.files[0].source.contains("policy x"));

        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn from_dir_missing_directory_is_an_io_error() {
        let missing = std::env::temp_dir().join("piprov-policy-definitely-missing");
        assert!(PackSource::from_dir(&missing).is_err());
    }
}
