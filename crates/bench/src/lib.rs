//! Shared helpers for the benchmark harness.
//!
//! Every bench target (one per experiment id in `EXPERIMENTS.md`) uses the
//! same short measurement settings so that `cargo bench --workspace`
//! completes in minutes; the *relative* shapes (who wins, how cost scales)
//! are what the experiments document, not absolute timings.

use criterion::Criterion;
use std::time::Duration;

/// A Criterion instance with short warm-up and measurement windows, suitable
/// for regenerating every experiment in one `cargo bench` run.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .configure_from_args()
}

/// Formats a mean nanoseconds-per-iteration figure for the summary tables
/// printed at the end of each bench target.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.0} ns", ns)
    }
}
