//! E18 — the policy-pack plane.
//!
//! Three questions about loadable policy packs:
//!
//! * **`e18_policy/compile`** — `PolicyPack::compile` latency as the pack
//!   grows (16/64/256 policies spread over four files): the whole
//!   parse-and-compile cost a `LoadPack` pays before anything publishes.
//! * **`e18_policy/publish`** — hot-reload publish latency on a live
//!   engine: `install_pack` alternating two pack variants, so half of
//!   each pack recompiles and half carries its automaton (and memo) over.
//! * **vet-throughput-mid-reload table** — vets/s over a fixed window
//!   with the registry idle vs a background thread hammering reloads:
//!   the swap is one pointer publish, so the audit path should not care.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{AuditEngine, AuditOutcome, AuditRequest};
use piprov_bench::quick_criterion;
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_policy::{PackFile, PackSource, PolicyPack};
use piprov_store::{Operation, ProvenanceRecord};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-e18-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A pack of `count` policies spread over four files; `variant` flips the
/// body of every even-numbered policy, so alternating installs exercise
/// both recompilation and automaton carry-over.
fn pack(count: usize, variant: usize) -> PackSource {
    let files = 4usize.min(count.max(1));
    let mut sources = vec![String::new(); files];
    for i in 0..count {
        let body = if i % 2 == 0 && variant % 2 == 1 {
            format!("(s{}!Any; Any) | eps", i % 8)
        } else {
            format!("s{}!Any; Any", i % 8)
        };
        sources[i % files].push_str(&format!("policy p{} = {}\n", i, body));
    }
    PackSource::new(
        "bench",
        sources
            .into_iter()
            .enumerate()
            .map(|(f, source)| PackFile::new(format!("f{}.ppol", f), source))
            .collect(),
    )
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_policy/compile");
    for count in [16usize, 64, 256] {
        let source = pack(count, 0);
        group.bench_with_input(BenchmarkId::new("policies", count), &source, |b, source| {
            b.iter(|| PolicyPack::compile(source).unwrap())
        });
    }
    group.finish();
}

fn bench_publish(c: &mut Criterion) {
    let dir = temp_dir("publish");
    let engine = AuditEngine::open(&dir).expect("open engine");
    let mut group = c.benchmark_group("e18_policy/publish");
    for count in [16usize, 64, 256] {
        let packs = [
            PolicyPack::compile(&pack(count, 0)).expect("pack compiles"),
            PolicyPack::compile(&pack(count, 1)).expect("pack compiles"),
        ];
        let mut flip = 0usize;
        group.bench_with_input(BenchmarkId::new("hot_reload", count), &packs, |b, packs| {
            b.iter(|| {
                flip += 1;
                engine.install_pack(&packs[flip % 2])
            })
        });
    }
    group.finish();
    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
}

/// Vets one known value against one pack policy for `window`, returning
/// the vets/s rate (and asserting every answer really is a verdict —
/// never `UnknownPattern`, reloads or not).
fn vets_per_second(engine: &AuditEngine, window: Duration) -> f64 {
    let request = AuditRequest::VetValue {
        value: Value::Channel(Channel::new("item0")),
        pattern: "bench::f0::p0".into(),
    };
    let started = Instant::now();
    let mut vets = 0u64;
    while started.elapsed() < window {
        for _ in 0..64 {
            let response = engine.handle(&request);
            assert!(
                matches!(response.outcome, AuditOutcome::Vetted { .. }),
                "vet dropped mid-reload: {:?}",
                response.outcome
            );
            vets += 1;
        }
    }
    vets as f64 / started.elapsed().as_secs_f64()
}

/// The mid-reload ablation: the same vet loop with the registry idle and
/// with a background thread swapping packs as fast as it can.
fn bench_vets_mid_reload() {
    let dir = temp_dir("mid-reload");
    let engine = Arc::new(AuditEngine::open(&dir).expect("open engine"));
    let k = Provenance::single(Event::output(Principal::new("s0"), Provenance::empty()));
    engine
        .ingest(ProvenanceRecord::new(
            1,
            "s0",
            Operation::Send,
            "m",
            Value::Channel(Channel::new("item0")),
            k,
        ))
        .expect("ingest");
    let packs = [
        PolicyPack::compile(&pack(64, 0)).expect("pack compiles"),
        PolicyPack::compile(&pack(64, 1)).expect("pack compiles"),
    ];
    engine.install_pack(&packs[0]);

    let window = Duration::from_millis(300);
    let idle = vets_per_second(&engine, window);

    let stop = Arc::new(AtomicBool::new(false));
    let reloads = Arc::new(AtomicU64::new(0));
    let reloader = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let reloads = Arc::clone(&reloads);
        thread::spawn(move || {
            let mut flip = 0usize;
            while !stop.load(Ordering::Acquire) {
                flip += 1;
                engine.install_pack(&packs[flip % 2]);
                reloads.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    let busy = vets_per_second(&engine, window);
    stop.store(true, Ordering::Release);
    reloader.join().expect("reloader join");

    println!("\ne18_policy: vet throughput mid-reload (64-policy pack, one auditor)");
    println!("| registry | vets/s | reloads during window |");
    println!("|---|---|---|");
    println!("| idle | {:.0} | 0 |", idle);
    println!(
        "| reloading | {:.0} | {} |",
        busy,
        reloads.load(Ordering::Relaxed)
    );
    println!(
        "mid-reload throughput = {:.0}% of idle",
        100.0 * busy / idle.max(1.0)
    );
    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_all(c: &mut Criterion) {
    bench_compile(c);
    bench_publish(c);
    bench_vets_mid_reload();
}

criterion_group! {
    name = e18_policy;
    config = quick_criterion();
    targets = bench_all
}
criterion_main!(e18_policy);
