//! E9 — runtime overhead of dynamic provenance tracking.
//!
//! Compares, on the same workload topologies, the cost of running with
//!
//! * no tracking (annotations stripped by the middleware),
//! * the paper's manual-tagging convention (identity fields + `if` tests),
//! * full calculus-level tracking (middleware-maintained provenance),
//!
//! and sweeps the pipeline depth to show how tracking cost grows with the
//! provenance length (the concern the paper raises in §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::pattern::TrivialPatterns;
use piprov_runtime::baseline;
use piprov_runtime::workload;
use piprov_runtime::{NetworkConfig, SimConfig, SimStop, Simulation, TrackingMode};

fn run_sim(
    system: &piprov_core::system::System<piprov_core::pattern::AnyPattern>,
    tracking: TrackingMode,
) -> usize {
    let mut sim = Simulation::new(
        system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::reliable(),
            tracking,
            ..SimConfig::default()
        },
    );
    let stop = sim.run(5_000_000).expect("simulation must not error");
    assert_eq!(stop, SimStop::Terminated);
    sim.metrics().steps
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_tracking_modes");
    let stages = 6;
    let messages = 8;
    let tracked = workload::pipeline(stages, messages);
    let manual = baseline::pipeline_manual_tagging(stages, messages);

    group.bench_function("no_tracking_stripped", |b| {
        b.iter(|| run_sim(&tracked, TrackingMode::Stripped))
    });
    group.bench_function("manual_tagging", |b| {
        b.iter(|| run_sim(&manual, TrackingMode::Stripped))
    });
    group.bench_function("calculus_tracking", |b| {
        b.iter(|| run_sim(&tracked, TrackingMode::Full))
    });
    group.finish();
}

fn bench_pipeline_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_pipeline_depth");
    for stages in [2usize, 4, 8, 16] {
        let system = workload::pipeline(stages, 4);
        group.bench_with_input(
            BenchmarkId::new("full_tracking", stages),
            &stages,
            |b, _| b.iter(|| run_sim(&system, TrackingMode::Full)),
        );
        group.bench_with_input(BenchmarkId::new("stripped", stages), &stages, |b, _| {
            b.iter(|| run_sim(&system, TrackingMode::Stripped))
        });
    }
    group.finish();
}

fn bench_fan_out(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_fan_out");
    for producers in [4usize, 8, 16] {
        let system = workload::fan_out(producers, producers / 2, 4);
        group.bench_with_input(
            BenchmarkId::new("full_tracking", producers),
            &producers,
            |b, _| b.iter(|| run_sim(&system, TrackingMode::Full)),
        );
        group.bench_with_input(
            BenchmarkId::new("stripped", producers),
            &producers,
            |b, _| b.iter(|| run_sim(&system, TrackingMode::Stripped)),
        );
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_modes(c);
    bench_pipeline_depth(c);
    bench_fan_out(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
