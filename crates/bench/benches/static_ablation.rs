//! E12 — static analysis ablation.
//!
//! Measures the cost of the provenance-flow analysis itself, and compares
//! running the competition workload with its original patterns against the
//! statically optimised version in which provably redundant checks were
//! replaced by `Any` (the §5 optimisation).  The expected shape: the
//! analysis is cheap relative to a run, and the optimised system performs
//! fewer expensive pattern checks for the same behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::interpreter::Executor;
use piprov_patterns::SamplePatterns;
use piprov_runtime::workload;
use piprov_static::{analyze, elide_redundant_checks, AnalysisConfig};

fn bench_analysis_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_analysis_cost");
    for contestants in [3usize, 6, 12] {
        let system = workload::competition(contestants, 3);
        group.bench_with_input(
            BenchmarkId::new("analyze_competition", contestants),
            &contestants,
            |b, _| b.iter(|| analyze(&system, AnalysisConfig::default()).checks.len()),
        );
    }
    group.finish();
}

fn bench_original_vs_optimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_run_cost");
    for contestants in [4usize, 8] {
        let original = workload::competition(contestants, 2);
        let optimized = elide_redundant_checks(&original, AnalysisConfig::default());
        group.bench_with_input(
            BenchmarkId::new("original_patterns", contestants),
            &contestants,
            |b, _| {
                b.iter(|| {
                    let mut exec = Executor::new(&original, SamplePatterns::new()).without_trace();
                    exec.run(1_000_000).unwrap().steps
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("statically_optimized", contestants),
            &contestants,
            |b, _| {
                b.iter(|| {
                    let mut exec = Executor::new(&optimized, SamplePatterns::new()).without_trace();
                    exec.run(1_000_000).unwrap().steps
                })
            },
        );
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_analysis_cost(c);
    bench_original_vs_optimized(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
