//! E13 — the cross-process serving layer.
//!
//! Three questions about the wire boundary's cost:
//!
//! * **`e13_wire/codec`** — encode/decode ns/op of the message codec as
//!   the embedded payload grows (ingest batches of 1/8/64 records, audit
//!   trails of 1/8/64 records): the layer a request pays before any
//!   engine work.
//! * **`e13_wire/vet_throughput`** — loopback end-to-end vet throughput
//!   at 1/2/4 concurrent client connections *while an ingest stream runs*,
//!   with a printed aggregate table: what a remote auditor actually gets
//!   from the worker pool.
//! * **batched-vs-unbatched ingest ablation** — the same record stream
//!   shipped one-per-request vs in 32-record batches, printed as a
//!   records/s table: what fire-and-batch mode (one round trip and one
//!   write-lock acquisition per batch) buys over the wire.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRequest};
use piprov_bench::{fmt_ns, quick_criterion};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_serve::codec::{decode_request, decode_response, encode_request, encode_response};
use piprov_serve::{
    AuditClient, AuditServer, ClientConfig, ServeConfig, WireLimits, WireRequest, WireResponse,
};
use piprov_store::{AuditTrail, Operation, ProvenanceRecord, ProvenanceStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-e13-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A record whose provenance has realistic sharing (a relayed history).
fn record(i: u64) -> ProvenanceRecord {
    let origin = Principal::new(format!("supplier{}", i % 4));
    let mut k = Provenance::single(Event::output(origin.clone(), Provenance::empty()));
    for hop in 0..3 {
        k = k.prepend(Event::input(
            Principal::new(format!("relay{}", hop)),
            k.clone(),
        ));
    }
    ProvenanceRecord::new(
        i,
        origin,
        Operation::Send,
        "m",
        Value::Channel(Channel::new(format!("item{}", i))),
        k,
    )
}

fn bench_codec(c: &mut Criterion) {
    let limits = WireLimits::default();
    let mut group = c.benchmark_group("e13_wire/codec");
    for size in [1usize, 8, 64] {
        let batch = WireRequest::IngestBatch((0..size as u64).map(record).collect());
        let encoded = encode_request(&batch);
        group.bench_with_input(
            BenchmarkId::new("encode_ingest", size),
            &batch,
            |b, batch| b.iter(|| encode_request(batch)),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_ingest", size),
            &encoded,
            |b, encoded| b.iter(|| decode_request(encoded.clone(), &limits).unwrap()),
        );
        let trail = WireResponse::Audit(piprov_audit::AuditResponse {
            outcome: AuditOutcome::Trail(AuditTrail {
                value: Value::Channel(Channel::new("item0")),
                records: (0..size as u64).map(record).collect(),
                principals: (0..4).map(|i| Principal::new(format!("p{}", i))).collect(),
                channels: vec![Channel::new("m")],
            }),
            stats: piprov_audit::RequestStats::default(),
            watermark: size as u64,
            pack_version: 1,
        });
        let trail_encoded = encode_response(&trail);
        group.bench_with_input(BenchmarkId::new("encode_trail", size), &trail, |b, t| {
            b.iter(|| encode_response(t))
        });
        group.bench_with_input(
            BenchmarkId::new("decode_trail", size),
            &trail_encoded,
            |b, encoded| b.iter(|| decode_response(encoded.clone(), &limits).unwrap()),
        );
    }
    group.finish();
}

/// Builds a served engine pre-loaded with `items` vetted items.
fn loopback_server(dir: &PathBuf, items: u64) -> AuditServer {
    let store = ProvenanceStore::open(dir).expect("open store");
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 8192 },
    ));
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of([
            "supplier0",
            "supplier1",
            "supplier2",
            "supplier3",
        ])),
    );
    engine
        .ingest_batch((0..items).map(record).collect())
        .expect("seed ingest");
    AuditServer::bind(engine, "127.0.0.1:0", ServeConfig::default()).expect("bind")
}

fn vet_request(i: u64, items: u64) -> AuditRequest {
    AuditRequest::VetValue {
        value: Value::Channel(Channel::new(format!("item{}", i % items))),
        pattern: "from-supplier".into(),
    }
}

/// Loopback vet throughput at 1/2/4 connections with an ingest stream
/// running, printed as an aggregate table.
fn bench_vet_throughput() {
    const ITEMS: u64 = 256;
    const QUERIES_PER_CONN: usize = 2_000;
    println!(
        "\ne13_wire/vet_throughput — loopback, ingest streaming, {} vets per connection",
        QUERIES_PER_CONN
    );
    println!("| connections | wall time | aggregate vets/s |");
    println!("|---|---|---|");
    for connections in [1usize, 2, 4] {
        let dir = temp_dir(&format!("vet-{}", connections));
        let server = loopback_server(&dir, ITEMS);
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        // A background writer keeps ingest pressure on the engine's write
        // lock and the worker pool while auditors query.
        let writer = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = AuditClient::connect(addr).expect("ingest connect");
                let mut i = ITEMS;
                while !stop.load(Ordering::Relaxed) {
                    client
                        .ingest_blocking((i..i + 8).map(record).collect())
                        .expect("ingest");
                    i += 8;
                }
            })
        };
        let started = Instant::now();
        let auditors: Vec<_> = (0..connections)
            .map(|t| {
                thread::spawn(move || {
                    let mut client = AuditClient::connect(addr).expect("connect");
                    let mut passed = 0usize;
                    for q in 0..QUERIES_PER_CONN {
                        let response = client
                            .request(&vet_request((q + t * 7) as u64, ITEMS))
                            .expect("vet");
                        if matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. }) {
                            passed += 1;
                        }
                    }
                    passed
                })
            })
            .collect();
        let passed: usize = auditors.into_iter().map(|h| h.join().unwrap()).sum();
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert_eq!(passed, connections * QUERIES_PER_CONN, "every vet passes");
        let total = (connections * QUERIES_PER_CONN) as f64;
        println!(
            "| {} | {:.2?} | {:.0} |",
            connections,
            elapsed,
            total / elapsed.as_secs_f64()
        );
        server.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Batched vs unbatched ingest over the wire, printed as a records/s
/// table.
fn bench_ingest_ablation() {
    const RECORDS: u64 = 4_096;
    println!(
        "\ne13_wire/ingest_ablation — {} records over loopback",
        RECORDS
    );
    println!("| mode | wall time | records/s | write-lock acquisitions |");
    println!("|---|---|---|---|");
    for (label, batch_size) in [
        ("unbatched (1/request)", 1usize),
        ("batched (32/request)", 32),
    ] {
        let dir = temp_dir(&format!("ablation-{}", batch_size));
        let server = loopback_server(&dir, 1);
        let mut client = AuditClient::connect_with(
            server.local_addr(),
            ClientConfig {
                batch_size,
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        let started = Instant::now();
        for i in 0..RECORDS {
            client.buffer(record(1 + i)).expect("buffer");
        }
        client.flush().expect("flush");
        let elapsed = started.elapsed();
        let stats = client.stats().expect("stats");
        assert_eq!(stats.ingested, 1 + RECORDS);
        println!(
            "| {} | {:.2?} | {:.0} | {} |",
            label,
            elapsed,
            RECORDS as f64 / elapsed.as_secs_f64(),
            stats.ingest_batches
        );
        drop(client);
        server.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn bench_summary(c: &mut Criterion) {
    bench_codec(c);
    // Mean ns/op of the smallest and largest codec cases for the summary
    // line, measured directly (criterion's reports live above).
    let limits = WireLimits::default();
    let batch = WireRequest::IngestBatch((0..64).map(record).collect());
    let encoded = encode_request(&batch);
    let started = Instant::now();
    let mut n = 0u32;
    while n < 2_000 {
        let _ = decode_request(encoded.clone(), &limits).unwrap();
        n += 1;
    }
    println!(
        "\ne13_wire summary: decode of a 64-record batch ≈ {} per message",
        fmt_ns(started.elapsed().as_nanos() as f64 / n as f64)
    );
    bench_vet_throughput();
    bench_ingest_ablation();
}

criterion_group! {
    name = e13_wire;
    config = quick_criterion();
    targets = bench_summary
}
criterion_main!(e13_wire);
