//! E14 — MVCC snapshot reads under concurrent ingest.
//!
//! Three questions about the engine's epoch-swapped snapshot read path:
//!
//! * **`e14_mvcc/vet_throughput`** — aggregate vet throughput at 1/2/4
//!   auditor threads while a writer streams ingest batches continuously:
//!   the scenario the old design serialized (every batch held the store's
//!   write lock, excluding all readers for the whole append).
//! * **`e14_mvcc/rwlock_baseline`** — the identical workload against an
//!   inline reimplementation of the old read path (queries through the
//!   store's reader-writer lock), the ablation the snapshot design is
//!   judged against.  The summary prints a side-by-side table: snapshot
//!   reads must be no slower at 1 thread and strictly faster under
//!   concurrent ingest on ≥ 4 hardware threads.
//! * **`e14_mvcc/publish_latency`** — what a writer pays per published
//!   snapshot as batch size grows (chunk append + shared-index extension),
//!   in µs/batch and ns/record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRequest};
use piprov_bench::quick_criterion;
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{CompiledPattern, GroupExpr, Pattern};
use piprov_store::{Operation, ProvenanceRecord, ProvenanceStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::Instant;

/// Values the auditors query (ingested up front, so postings stay fixed).
const HOT_VALUES: usize = 64;
/// Value pool the background writer cycles through.
const WRITER_VALUES: usize = 256;
const WRITER_BATCH: usize = 32;
const QUERIES_PER_THREAD: usize = 1024;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-e14-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn supplier(i: usize) -> Principal {
    Principal::new(format!("s{}", i % 4))
}

fn record(t: u64, value_name: &str, origin: usize) -> ProvenanceRecord {
    let who = supplier(origin);
    let k = Provenance::single(Event::output(who.clone(), Provenance::empty()))
        .prepend(Event::input(Principal::new("relay"), Provenance::empty()));
    ProvenanceRecord::new(
        t,
        who,
        Operation::Send,
        "m",
        Value::Channel(Channel::new(value_name)),
        k,
    )
}

fn hot_value(i: usize) -> Value {
    Value::Channel(Channel::new(format!("hot{}", i)))
}

fn seed_records() -> Vec<ProvenanceRecord> {
    (0..HOT_VALUES)
        .map(|i| record(i as u64, &format!("hot{}", i), i))
        .collect()
}

fn writer_batch(round: u64) -> Vec<ProvenanceRecord> {
    (0..WRITER_BATCH)
        .map(|i| {
            let n = (round as usize * WRITER_BATCH + i) % WRITER_VALUES;
            record(round, &format!("w{}", n), n)
        })
        .collect()
}

fn pattern() -> Pattern {
    Pattern::originated_at(GroupExpr::any_of(["s0", "s1", "s2", "s3"]))
}

// ---------------------------------------------------------------------------
// The two engines under test.
// ---------------------------------------------------------------------------

/// The old read path, reconstructed for the ablation: every query takes
/// the store's read lock, every ingest batch its write lock — so a batch
/// being applied excludes all auditors for its whole duration.
struct RwLockBaseline {
    store: RwLock<ProvenanceStore>,
    pattern: Arc<CompiledPattern>,
}

impl RwLockBaseline {
    fn new(dir: &PathBuf) -> Self {
        let mut store = ProvenanceStore::open(dir).expect("open store");
        store.append_all(seed_records()).expect("seed");
        let compiled = CompiledPattern::compile(&pattern());
        compiled.set_memo_bound(8192);
        RwLockBaseline {
            store: RwLock::new(store),
            pattern: Arc::new(compiled),
        }
    }

    fn vet(&self, value: &Value) -> bool {
        let store = self.store.read().expect("read lock");
        let postings = store.index().by_value(value);
        let Some(record) = postings.last().and_then(|seq| store.get(*seq)) else {
            return false;
        };
        self.pattern.matches_with_stats(&record.provenance).0
    }

    fn ingest_batch(&self, records: Vec<ProvenanceRecord>) {
        let mut store = self.store.write().expect("write lock");
        store.append_all(records).expect("append");
    }
}

fn snapshot_engine(dir: &PathBuf) -> Arc<AuditEngine> {
    let store = ProvenanceStore::open(dir).expect("open store");
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 8192 },
    ));
    engine.register_pattern("from-supplier", pattern());
    engine.ingest_batch(seed_records()).expect("seed");
    engine
}

// ---------------------------------------------------------------------------
// Timed runs: N auditor threads under one continuous ingest writer.
// ---------------------------------------------------------------------------

/// Runs `threads` auditors (QUERIES_PER_THREAD vets each) while a writer
/// streams batches; returns (wall seconds, aggregate queries).
fn timed_run(
    vet: impl Fn(&Value) -> bool + Sync,
    ingest: impl Fn(u64) + Sync,
    threads: usize,
) -> (f64, usize) {
    let running = AtomicBool::new(true);
    let started = Instant::now();
    thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut round = 0u64;
            while running.load(Ordering::Relaxed) {
                ingest(round);
                round += 1;
            }
        });
        let auditors: Vec<_> = (0..threads)
            .map(|t| {
                let vet = &vet;
                scope.spawn(move || {
                    let mut passed = 0usize;
                    for q in 0..QUERIES_PER_THREAD {
                        if vet(&hot_value((q * 7 + t * 13) % HOT_VALUES)) {
                            passed += 1;
                        }
                    }
                    passed
                })
            })
            .collect();
        let passed: usize = auditors.into_iter().map(|a| a.join().unwrap()).sum();
        assert_eq!(
            passed,
            threads * QUERIES_PER_THREAD,
            "every hot value vets true"
        );
        running.store(false, Ordering::Relaxed);
        writer.join().unwrap();
    });
    (
        started.elapsed().as_secs_f64(),
        threads * QUERIES_PER_THREAD,
    )
}

/// One self-contained snapshot-engine measurement: fresh engine (both
/// sides of the ablation always start from the same HOT_VALUES-record
/// state — no growth carried over from earlier samples), timer inside
/// `timed_run` covering only the query/ingest race.
fn snapshot_run(threads: usize) -> (f64, usize) {
    let dir = temp_dir("snapshot");
    let engine = snapshot_engine(&dir);
    let timed = timed_run(
        |value| {
            let response = engine.handle(&AuditRequest::VetValue {
                value: value.clone(),
                pattern: "from-supplier".into(),
            });
            matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. })
        },
        |round| {
            engine.ingest_batch(writer_batch(round)).expect("ingest");
        },
        threads,
    );
    std::fs::remove_dir_all(&dir).ok();
    timed
}

/// The RwLock side of the ablation, same fresh-state discipline.
fn rwlock_run(threads: usize) -> (f64, usize) {
    let dir = temp_dir("rwlock");
    let baseline = RwLockBaseline::new(&dir);
    let timed = timed_run(
        |value| baseline.vet(value),
        |round| baseline.ingest_batch(writer_batch(round)),
        threads,
    );
    std::fs::remove_dir_all(&dir).ok();
    timed
}

fn bench_vet_throughput(c: &mut Criterion) {
    // Criterion times the whole closure (the shim has no iter_batched), so
    // its numbers include the fixed fresh-engine setup; the summary table
    // below uses the inner timer, which covers only the query/ingest race
    // — and both sides of the ablation always measure engines of the same
    // size.
    let mut group = c.benchmark_group("e14_mvcc/vet_throughput");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("auditor_threads", threads),
            &threads,
            |b, &threads| b.iter(|| snapshot_run(threads).1),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e14_mvcc/rwlock_baseline");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("auditor_threads", threads),
            &threads,
            |b, &threads| b.iter(|| rwlock_run(threads).1),
        );
    }
    group.finish();

    // The acceptance table: snapshot vs RwLock under continuous ingest.
    println!(
        "\ne14 summary — vet throughput under continuous ingest (batch {})",
        WRITER_BATCH
    );
    println!(
        "  {:<8} {:>14} {:>14} {:>9}",
        "threads", "snapshot q/s", "rwlock q/s", "speedup"
    );
    for threads in [1usize, 2, 4] {
        let (snap_secs, queries) = (0..3)
            .map(|_| snapshot_run(threads))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        let (lock_secs, _) = (0..3)
            .map(|_| rwlock_run(threads))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        let snap_qps = queries as f64 / snap_secs;
        let lock_qps = queries as f64 / lock_secs;
        println!(
            "  {:<8} {:>14.0} {:>14.0} {:>8.2}x",
            threads,
            snap_qps,
            lock_qps,
            snap_qps / lock_qps
        );
    }
    let cores = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "  target: snapshot ≥ rwlock at 1 thread; strictly better under \
         concurrent ingest at ≥ 4 hardware threads (this host: {})",
        cores
    );
}

// ---------------------------------------------------------------------------
// Snapshot-publish latency per batch size.
// ---------------------------------------------------------------------------

/// Pre-builds `rounds` batches of `batch_size` records, so the timed
/// window below covers only ingest + publish, never record construction.
fn build_batches(batch_size: usize, rounds: u64) -> Vec<Vec<ProvenanceRecord>> {
    (0..rounds)
        .map(|round| {
            (0..batch_size)
                .map(|i| {
                    let n = (round as usize * batch_size + i) % WRITER_VALUES;
                    record(round, &format!("w{}", n), n)
                })
                .collect()
        })
        .collect()
}

/// One self-contained measurement: a fresh engine (so every sample sees
/// the same engine size — no growth drift across criterion iterations),
/// pre-built batches, and a timer around only the ingest/publish loop.
/// Returns mean seconds per published batch.
fn timed_publish(batch_size: usize, rounds: u64, tag: &str) -> f64 {
    let dir = temp_dir(tag);
    let engine = snapshot_engine(&dir);
    let batches = build_batches(batch_size, rounds);
    let started = Instant::now();
    for batch in batches {
        engine.ingest_batch(batch).expect("ingest");
    }
    let per_batch = started.elapsed().as_secs_f64() / rounds as f64;
    assert_eq!(
        engine.stats().snapshots_published,
        rounds + 1,
        "one publication per batch (plus the seed batch)"
    );
    std::fs::remove_dir_all(&dir).ok();
    per_batch
}

fn bench_publish_latency(c: &mut Criterion) {
    // Criterion times the whole closure (the shim has no iter_batched), so
    // its numbers include the fixed fresh-engine setup amortized over 16
    // batches; the summary table below reports the setup-free per-batch
    // cost from the inner timer.
    let mut group = c.benchmark_group("e14_mvcc/publish_latency");
    for batch_size in [1usize, 32, 256] {
        group.bench_with_input(
            BenchmarkId::new("batch_size", batch_size),
            &batch_size,
            |b, &batch_size| b.iter(|| timed_publish(batch_size, 16, "publish-criterion")),
        );
    }
    group.finish();

    println!("\ne14 summary — snapshot publish latency per batch size");
    println!(
        "  {:<12} {:>12} {:>12} {:>16}",
        "batch size", "batches", "µs/batch", "ns/record"
    );
    for batch_size in [1usize, 32, 256, 1024] {
        let rounds = (8192 / batch_size).max(8) as u64;
        let per_batch = timed_publish(batch_size, rounds, "publish-summary");
        println!(
            "  {:<12} {:>12} {:>12.1} {:>16.0}",
            batch_size,
            rounds,
            per_batch * 1e6,
            per_batch * 1e9 / batch_size as f64
        );
    }
}

fn all(c: &mut Criterion) {
    bench_vet_throughput(c);
    bench_publish_latency(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
