//! E12 — the concurrent audit service.
//!
//! Two questions, both about whether the serving layer's concurrency is
//! real rather than nominal:
//!
//! * **`e12_audit/vet_throughput`** — aggregate vet throughput of one
//!   shared [`AuditEngine`] as the number of auditor threads grows
//!   (1/2/4/8).  Queries are answered through the store's read lock, the
//!   sharded interner and the bounded pattern memo, so adding threads
//!   should add throughput on multicore hardware (the summary table
//!   reports the measured 1→4 speedup; on a single hardware thread the
//!   honest expectation is ≈1×).
//! * **`e12_audit/interner_ablation`** — the same multi-threaded
//!   intern-heavy workload against a 1-shard table (the old global
//!   `Mutex<HashMap>` design) and a 16-shard table, demonstrating what
//!   sharding buys the hot path every vet and ingest goes through.
//!
//! The bench also drives a long mixed workload and asserts the engine's
//! pattern memo stayed under its configured bound (epoch eviction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRecorder, AuditRequest};
use piprov_bench::quick_criterion;
use piprov_core::name::Principal;
use piprov_core::pattern::TrivialPatterns;
use piprov_core::provenance::{Event, InternTable, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_runtime::sim::{SimConfig, Simulation};
use piprov_runtime::{workload, NetworkConfig};
use piprov_store::ProvenanceStore;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

const SUPPLIERS: usize = 4;
const RELAYS: usize = 3;
const ITEMS_PER_SUPPLIER: usize = 16;
const QUERIES_PER_THREAD: usize = 1024;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-e12-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds an engine pre-loaded with a simulated supply chain's records and
/// the two policy patterns the auditors vet against.
fn seeded_engine(dir: &PathBuf) -> Arc<AuditEngine> {
    let store = ProvenanceStore::open(dir).expect("open store");
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 8192 },
    ));
    let suppliers: Vec<String> = (0..SUPPLIERS).map(|i| format!("supplier{}", i)).collect();
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of(suppliers.clone())),
    );
    let mut chain = suppliers;
    chain.extend((0..RELAYS).map(|i| format!("relay{}", i)));
    engine.register_pattern(
        "chain-only",
        Pattern::only_touched_by(GroupExpr::any_of(chain)),
    );
    let system = workload::supply_chain(SUPPLIERS, RELAYS, ITEMS_PER_SUPPLIER);
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::reliable(),
            ..SimConfig::default()
        },
    );
    let mut recorder = AuditRecorder::new(Arc::clone(&engine));
    sim.run_with_sink(5_000_000, &mut recorder)
        .expect("simulation must not error");
    recorder.finish().expect("recorder finish");
    engine
}

/// One auditor thread's batch: a fixed mixed stream dominated by vets.
fn auditor_batch(engine: &AuditEngine, salt: usize, queries: usize) -> usize {
    let mut passed = 0usize;
    for q in 0..queries {
        let s = (q + salt) % SUPPLIERS;
        let k = (q * 7 + salt) % ITEMS_PER_SUPPLIER;
        let item = Value::Channel(piprov_core::name::Channel::new(format!("item{}_{}", s, k)));
        let request = match q % 8 {
            0 => AuditRequest::OriginOf { value: item },
            1 => AuditRequest::WhoTouched {
                principal: Principal::new(format!("relay{}", q % RELAYS)),
            },
            n if n % 2 == 0 => AuditRequest::VetValue {
                value: item,
                pattern: "from-supplier".into(),
            },
            _ => AuditRequest::VetValue {
                value: item,
                pattern: "chain-only".into(),
            },
        };
        let response = engine.handle(&request);
        if matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. }) {
            passed += 1;
        }
    }
    passed
}

/// Runs `threads` auditors over the shared engine, returning (wall seconds,
/// aggregate queries served).
fn timed_auditor_run(engine: &Arc<AuditEngine>, threads: usize) -> (f64, usize) {
    let started = Instant::now();
    let passed: usize = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = Arc::clone(engine);
                scope.spawn(move || auditor_batch(&engine, t * 13, QUERIES_PER_THREAD))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert!(passed > 0, "vets must pass");
    (
        started.elapsed().as_secs_f64(),
        threads * QUERIES_PER_THREAD,
    )
}

fn bench_vet_throughput(c: &mut Criterion) {
    let dir = temp_dir("throughput");
    let engine = seeded_engine(&dir);
    let mut group = c.benchmark_group("e12_audit/vet_throughput");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("auditor_threads", threads),
            &threads,
            |b, &threads| b.iter(|| timed_auditor_run(&engine, threads).1),
        );
    }
    group.finish();

    // Summary: measured aggregate throughput and the 1→4 scaling factor.
    println!("\ne12 summary — aggregate vet throughput vs auditor threads");
    println!(
        "  {:<8} {:>12} {:>12} {:>9}",
        "threads", "queries", "queries/s", "speedup"
    );
    let mut baseline_qps = 0.0f64;
    let mut four_thread_speedup = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        // Best of three runs: scheduling noise hits multithreaded batches.
        let (secs, queries) = (0..3)
            .map(|_| timed_auditor_run(&engine, threads))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        let qps = queries as f64 / secs;
        if threads == 1 {
            baseline_qps = qps;
        }
        let speedup = qps / baseline_qps;
        if threads == 4 {
            four_thread_speedup = speedup;
        }
        println!(
            "  {:<8} {:>12} {:>12.0} {:>8.2}x",
            threads, queries, qps, speedup
        );
    }
    let cores = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "  1→4 threads: {:.2}x on {} hardware thread(s){}",
        four_thread_speedup,
        cores,
        if cores >= 4 {
            " (target ≥2x)"
        } else {
            " (≥2x expected only with ≥4 hardware threads)"
        }
    );

    // The long mixed workload must not have grown the memo past its bound.
    for name in ["from-supplier", "chain-only"] {
        let memo = engine.pattern_memo_stats(name).unwrap();
        assert!(
            memo.entries <= memo.bound,
            "{} memo over bound: {} > {}",
            name,
            memo.entries,
            memo.bound
        );
        println!(
            "  memo[{}]: {} entries / bound {} ({} epochs, {} hits)",
            name, memo.entries, memo.bound, memo.epochs, memo.hits
        );
    }
    println!("  engine: {}", engine.stats());
    std::fs::remove_dir_all(&dir).ok();
}

/// The intern-heavy inner loop every vet and ingest pays: re-interning
/// overlapping histories (mostly hits, occasionally a fresh tail).
fn intern_batch(table: &InternTable, salt: usize, rounds: usize) {
    for r in 0..rounds {
        let mut k = Provenance::empty();
        for i in 0..24 {
            // 4 shared event identities per depth + one per-thread branch
            // near the tip: threads overlap heavily but not totally.
            let who = if i == 23 && r % 4 == 0 {
                format!("abl-{}-{}", salt, r)
            } else {
                format!("abl-{}", (i + r) % 4)
            };
            k = table.intern_on(&Event::output(Principal::new(who), Provenance::empty()), &k);
        }
    }
}

fn timed_intern_run(shards: usize, threads: usize, rounds: usize) -> f64 {
    let table = InternTable::with_shards(shards);
    let started = Instant::now();
    thread::scope(|scope| {
        for t in 0..threads {
            let table = &table;
            scope.spawn(move || intern_batch(table, t, rounds));
        }
    });
    started.elapsed().as_secs_f64()
}

fn bench_interner_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_audit/interner_ablation");
    let threads = 4usize;
    let rounds = 64usize;
    for shards in [1usize, 16] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| timed_intern_run(shards, threads, rounds))
        });
    }
    group.finish();

    println!(
        "\ne12 summary — sharded vs single-lock interner ({} threads)",
        threads
    );
    let single = (0..3)
        .map(|_| timed_intern_run(1, threads, rounds * 4))
        .min_by(|a, b| a.total_cmp(b))
        .unwrap();
    let sharded = (0..3)
        .map(|_| timed_intern_run(16, threads, rounds * 4))
        .min_by(|a, b| a.total_cmp(b))
        .unwrap();
    println!("  1 shard (global mutex): {:>9.3} ms", single * 1e3);
    println!(
        "  16 shards:              {:>9.3} ms  ({:.2}x vs single lock)",
        sharded * 1e3,
        single / sharded
    );
}

fn all(c: &mut Criterion) {
    bench_vet_throughput(c);
    bench_interner_ablation(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
