//! E11 — provenance store throughput and query latency.
//!
//! Measures append throughput (with and without per-append sync), recovery
//! scans, audit-trail queries as the number of stored records grows, and
//! codec cost on deeply *shared* channel provenance (where the DAG format
//! encodes each interned node once while the legacy preorder format pays
//! for the whole logical tree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_store::codec::{decode_body, encode_body_with};
use piprov_store::{
    BodyFormat, Operation, ProvenanceRecord, ProvenanceStore, StoreConfig, StoreQuery,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("piprov-bench-store-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(i: u64, depth: usize) -> ProvenanceRecord {
    let mut prov = Provenance::empty();
    for d in 0..depth {
        let p = Principal::new(format!("p{}", d % 5));
        prov = if d % 2 == 0 {
            prov.prepend(Event::output(p, Provenance::empty()))
        } else {
            prov.prepend(Event::input(p, Provenance::empty()))
        };
    }
    ProvenanceRecord::new(
        i,
        format!("p{}", i % 5),
        Operation::Send,
        format!("ch{}", i % 8),
        Value::Channel(Channel::new(format!("v{}", i % 64))),
        prov,
    )
}

fn populated_store(dir: &PathBuf, records: usize) -> ProvenanceStore {
    let mut store = ProvenanceStore::open(dir).unwrap();
    for i in 0..records {
        store.append(record(i as u64, 8)).unwrap();
    }
    store.sync().unwrap();
    store
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_append");
    for depth in [0usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("buffered", depth), &depth, |b, &depth| {
            let dir = temp_dir(&format!("append-{}", depth));
            let mut store = ProvenanceStore::open(&dir).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                store.append(record(i, depth)).unwrap();
                i += 1;
            });
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.bench_function("synced_every_append", |b| {
        let dir = temp_dir("append-sync");
        let mut store = ProvenanceStore::open_with(
            &dir,
            StoreConfig {
                sync_every_append: true,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            store.append(record(i, 8)).unwrap();
            i += 1;
        });
        std::fs::remove_dir_all(&dir).ok();
    });
    group.finish();
}

fn bench_queries_and_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_query");
    for records in [1_000usize, 10_000] {
        let dir = temp_dir(&format!("query-{}", records));
        let store = populated_store(&dir, records);
        let target = Value::Channel(Channel::new("v7"));
        group.bench_with_input(
            BenchmarkId::new("audit_trail", records),
            &records,
            |b, _| {
                let query = StoreQuery::new(&store);
                b.iter(|| query.audit_trail(&target))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("by_principal", records),
            &records,
            |b, _| {
                let query = StoreQuery::new(&store);
                let p = Principal::new("p3");
                b.iter(|| query.records_by_principal(&p).len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recovery_scan", records),
            &records,
            |b, _| b.iter(|| ProvenanceStore::open(&dir).unwrap().len()),
        );
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

/// A record whose provenance tree doubles per hop while the DAG grows by
/// two nodes per hop: every relay's channel carries the full history.
fn shared_record(hops: usize) -> ProvenanceRecord {
    let mut prov = Provenance::single(Event::output(Principal::new("origin"), Provenance::empty()));
    for i in 0..hops {
        let p = Principal::new(format!("relay{}", i % 4));
        prov = prov
            .prepend(Event::output(p.clone(), prov.clone()))
            .prepend(Event::input(p, prov.clone()));
    }
    ProvenanceRecord::new(
        1,
        "auditor",
        Operation::Receive,
        "m",
        Value::Channel(Channel::new("v")),
        prov,
    )
}

fn bench_shared_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_shared_codec");
    for hops in [6usize, 9] {
        let record = shared_record(hops);
        let dag_body = encode_body_with(&record, BodyFormat::Dag);
        let legacy_body = encode_body_with(&record, BodyFormat::LegacyPreorder);
        println!(
            "e11_shared_codec: hops={} tree={} dag_nodes={} dag_body={}B legacy_body={}B",
            hops,
            record.provenance.total_size(),
            record.provenance.dag_size(),
            dag_body.len(),
            legacy_body.len(),
        );
        group.bench_with_input(BenchmarkId::new("encode_dag", hops), &hops, |b, _| {
            b.iter(|| encode_body_with(&record, BodyFormat::Dag).len())
        });
        group.bench_with_input(BenchmarkId::new("encode_legacy", hops), &hops, |b, _| {
            b.iter(|| encode_body_with(&record, BodyFormat::LegacyPreorder).len())
        });
        group.bench_with_input(BenchmarkId::new("decode_dag", hops), &hops, |b, _| {
            b.iter(|| decode_body(dag_body.clone()).unwrap().sequence)
        });
        group.bench_with_input(BenchmarkId::new("decode_legacy", hops), &hops, |b, _| {
            b.iter(|| decode_body(legacy_body.clone()).unwrap().sequence)
        });
        // The round trip a real append+recovery pays, DAG end to end.
        group.bench_with_input(BenchmarkId::new("round_trip_dag", hops), &hops, |b, _| {
            b.iter(|| {
                decode_body(encode_body_with(&record, BodyFormat::Dag))
                    .unwrap()
                    .sequence
            })
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_append(c);
    bench_queries_and_recovery(c);
    bench_shared_codec(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
