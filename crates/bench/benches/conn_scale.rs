//! E16 — connection scaling of the serving layer's two cores.
//!
//! The question the event loop exists to answer: what does a *mostly
//! idle* population of connections cost, and does shedding the
//! thread-per-connection bound cost the active minority anything?
//!
//! * **`e16_connscale/round_trip`** — single-connection vet round-trip
//!   ns/op on each core: the per-request floor, no concurrency.
//! * **scaling table** — total connections at 64/1k/10k (the active 64
//!   issue vets; the rest sit idle, costing the event loop one registered
//!   fd each), against the thread-pool baseline at its 4-worker capacity.
//!   Prints aggregate vets/s plus hand-rolled p50/p99 per-request
//!   latency (the vendored criterion reports means only).  Tiers whose
//!   two-fds-per-connection cost overflows `RLIMIT_NOFILE` are scaled
//!   down or skipped with a printed caveat — degrade, don't die.
//!
//! The thread-pool core cannot *hold* the idle population at all: its
//! accept pool is the concurrency bound, so idle connections past
//! `workers` would pin every slot and starve the active ones.  That is
//! the ablation, not a bug — the baseline row runs 4 active connections
//! against 4 workers, its best case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRequest};
use piprov_bench::quick_criterion;
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_serve::codec::{decode_response, encode_request};
use piprov_serve::wire::{read_frame, write_frame};
use piprov_serve::{
    AuditClient, AuditServer, ServeConfig, ServerCore, WireLimits, WireRequest, WireResponse,
};
use piprov_store::{Operation, ProvenanceRecord, ProvenanceStore};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const ITEMS: u64 = 256;
const ACTIVE_CONNS: usize = 64;
const VETS_PER_CONN: usize = 40;
/// Requests in flight per active connection: clients pipeline in waves,
/// which is what a real auditor batching vet queries over one socket
/// does, and what lets either core amortize per-frame overhead.
const WAVE: usize = 8;
/// Load-generator threads.  The active connections are multiplexed over
/// this many drivers so the client side costs the same for every row —
/// otherwise, on small machines, a 64-thread client herd measures its
/// own scheduler contention instead of the server.
const DRIVERS: usize = 4;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-e16-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(i: u64) -> ProvenanceRecord {
    let origin = Principal::new(format!("supplier{}", i % 4));
    let k = Provenance::single(Event::output(origin.clone(), Provenance::empty()));
    ProvenanceRecord::new(
        i,
        origin,
        Operation::Send,
        "m",
        Value::Channel(Channel::new(format!("item{}", i))),
        k,
    )
}

fn vet_request(i: u64) -> AuditRequest {
    AuditRequest::VetValue {
        value: Value::Channel(Channel::new(format!("item{}", i % ITEMS))),
        pattern: "from-supplier".into(),
    }
}

fn serve(dir: &PathBuf, core: ServerCore, workers: usize) -> AuditServer {
    let store = ProvenanceStore::open(dir).expect("open store");
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 8192 },
    ));
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of([
            "supplier0",
            "supplier1",
            "supplier2",
            "supplier3",
        ])),
    );
    engine
        .ingest_batch((0..ITEMS).map(record).collect())
        .expect("seed ingest");
    let config = ServeConfig {
        core,
        workers,
        ..ServeConfig::default()
    };
    AuditServer::bind(engine, "127.0.0.1:0", config).expect("bind")
}

#[cfg(target_os = "linux")]
fn fd_limit() -> Option<u64> {
    piprov_serve::poll::max_open_files()
}

#[cfg(not(target_os = "linux"))]
fn fd_limit() -> Option<u64> {
    None
}

fn percentile(sorted_ns: &[u64], p: usize) -> Duration {
    if sorted_ns.is_empty() {
        return Duration::ZERO;
    }
    let index = (sorted_ns.len() * p / 100).min(sorted_ns.len() - 1);
    Duration::from_nanos(sorted_ns[index])
}

struct TierResult {
    held: usize,
    throughput: f64,
    p50: Duration,
    p99: Duration,
}

/// Runs one scaling tier: `total` connections held open, the first
/// `active` of them vetting, the rest idle.  Returns `None` (with a
/// printed caveat) when the fd budget cannot carry the tier at all.
fn run_tier(core: ServerCore, total: usize, active: usize, label: &str) -> Option<TierResult> {
    // Loopback doubles the bill: every connection is a client fd and a
    // server fd in this one process, plus slack for the store and pipes.
    let held = match fd_limit() {
        Some(limit) => {
            let capacity = (limit as usize).saturating_sub(128) / 2;
            if capacity < total && capacity < (total * 3) / 4 {
                println!(
                    "| {} | {} | skipped: fd limit {} supports only {} connections |",
                    core.name(),
                    label,
                    limit,
                    capacity
                );
                return None;
            }
            total.min(capacity)
        }
        None => total,
    };
    if held < total {
        println!(
            "(fd-limit caveat: {} tier holds {} of {} requested connections)",
            label, held, total
        );
    }
    let dir = temp_dir(&format!("{}-{}", core.name(), held));
    let server = serve(&dir, core, 4);
    let addr = server.local_addr();
    let idle: Vec<TcpStream> = (active..held)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    let per_driver = active / DRIVERS;
    let started = Instant::now();
    let drivers: Vec<_> = (0..DRIVERS)
        .map(|d| {
            thread::spawn(move || {
                let limits = WireLimits::default();
                let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = (0..per_driver)
                    .map(|_| {
                        let stream = TcpStream::connect(addr).expect("active connect");
                        stream.set_nodelay(true).ok();
                        let reader = BufReader::new(stream.try_clone().expect("clone"));
                        (stream, reader)
                    })
                    .collect();
                let mut latencies = Vec::with_capacity(per_driver * VETS_PER_CONN);
                for wave in 0..VETS_PER_CONN / WAVE {
                    // Phase 1: a wave of pipelined requests to every
                    // connection this driver owns — WAVE × per_driver
                    // requests in flight before any response is read.
                    let sent_at: Vec<Instant> = conns
                        .iter_mut()
                        .enumerate()
                        .map(|(c, (stream, _))| {
                            let mut frames = Vec::new();
                            for q in 0..WAVE {
                                let item = (wave * WAVE + q) * active + d * per_driver + c;
                                write_frame(
                                    &mut frames,
                                    &encode_request(&WireRequest::Audit(vet_request(item as u64))),
                                )
                                .expect("encode");
                            }
                            stream.write_all(&frames).expect("send wave");
                            Instant::now()
                        })
                        .collect();
                    // Phase 2: collect each connection's responses.
                    for (c, (_, reader)) in conns.iter_mut().enumerate() {
                        for _ in 0..WAVE {
                            let frame = read_frame(reader, limits.max_frame_len)
                                .expect("read")
                                .expect("response before close");
                            let response = decode_response(frame, &limits).expect("decode");
                            match response {
                                WireResponse::Audit(audit) => assert!(matches!(
                                    audit.outcome,
                                    AuditOutcome::Vetted { verdict: true, .. }
                                )),
                                other => panic!("unexpected response {:?}", other),
                            }
                        }
                        let wave_ns = sent_at[c].elapsed().as_nanos() as u64;
                        // Each request in the wave waited the whole wave.
                        latencies.extend(std::iter::repeat_n(wave_ns, WAVE));
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = drivers
        .into_iter()
        .flat_map(|h| h.join().expect("driver"))
        .collect();
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    drop(idle);
    server.shutdown().expect("shutdown");
    std::fs::remove_dir_all(&dir).ok();
    Some(TierResult {
        held,
        throughput: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50: percentile(&latencies, 50),
        p99: percentile(&latencies, 99),
    })
}

fn scaling_table() -> (Option<f64>, Option<f64>) {
    println!(
        "\ne16_connscale — {} active connections × {} vets each (pipelined in waves of {}), remainder idle",
        ACTIVE_CONNS, VETS_PER_CONN, WAVE
    );
    println!("| core | connections held | active | vets/s | p50 | p99 |");
    println!("|---|---|---|---|---|---|");
    let mut event_loop_64 = None;
    for total in [64usize, 1_000, 10_000] {
        let label = format!("{}", total);
        if let Some(tier) = run_tier(ServerCore::EventLoop, total, ACTIVE_CONNS, &label) {
            println!(
                "| event_loop | {} | {} | {:.0} | {:.2?} | {:.2?} |",
                tier.held, ACTIVE_CONNS, tier.throughput, tier.p50, tier.p99
            );
            if total == 64 {
                event_loop_64 = Some(tier.throughput);
            }
        }
    }
    // The thread-pool baseline at its own capacity: 4 active connections
    // on 4 workers, nothing idle (idle connections would pin the pool).
    let baseline = run_tier(ServerCore::ThreadPool, 4, 4, "4").map(|tier| {
        println!(
            "| thread_pool | {} | 4 | {:.0} | {:.2?} | {:.2?} |",
            tier.held, tier.throughput, tier.p50, tier.p99
        );
        tier.throughput
    });
    (event_loop_64, baseline)
}

fn bench_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_connscale/round_trip");
    for core in ServerCore::all() {
        let dir = temp_dir(&format!("rt-{}", core.name()));
        let server = serve(&dir, core, 4);
        let mut client = AuditClient::connect(server.local_addr()).expect("connect");
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(core.name()), |b| {
            b.iter(|| {
                i += 1;
                client.request(&vet_request(i)).expect("vet")
            })
        });
        drop(client);
        server.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_summary(c: &mut Criterion) {
    bench_round_trip(c);
    let (event_loop_64, baseline) = scaling_table();
    if let (Some(event_loop), Some(baseline)) = (event_loop_64, baseline) {
        println!(
            "\ne16 summary: event loop at 64 active conns ≈ {:.0} vets/s vs thread-pool \
             4-worker capacity ≈ {:.0} vets/s ({:+.0}%)",
            event_loop,
            baseline,
            (event_loop / baseline - 1.0) * 100.0
        );
    }
}

criterion_group! {
    name = e16_connscale;
    config = quick_criterion();
    targets = bench_summary
}
criterion_main!(e16_connscale);
