//! E5 / E7 — cost of the meta-theory decision procedures.
//!
//! * the ⊑ ordering check between a value's provenance denotation and the
//!   global log, as the run (and hence the log) grows;
//! * the full correctness check (Definition 3) of a monitored system;
//! * exhaustive exploration of a small state space (the harness behind the
//!   Theorem 1 experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::pattern::TrivialPatterns;
use piprov_core::value::AnnotatedValue;
use piprov_logs::{
    check_provenance, denote, explore_correctness, log_leq, ExploreOptions, MonitoredExecutor,
    MonitoredSystem,
};
use piprov_runtime::workload;

/// Runs the pipeline monitored and returns the final monitored system plus
/// the most-travelled annotated value (largest provenance).
fn monitored_pipeline(
    stages: usize,
) -> (
    MonitoredSystem<piprov_core::pattern::AnyPattern>,
    AnnotatedValue,
) {
    let system = workload::pipeline(stages, 2);
    let mut exec = MonitoredExecutor::new(&system, TrivialPatterns);
    exec.run(1_000_000).unwrap();
    let monitored = exec.as_monitored_system();
    let best = monitored
        .values()
        .into_iter()
        .max_by_key(|v| v.provenance.total_size())
        .map(|v| match v.term {
            piprov_logs::Term::Value(value) => AnnotatedValue::new(value, v.provenance),
            _ => AnnotatedValue::channel("v"),
        })
        .unwrap_or_else(|| AnnotatedValue::channel("v"));
    (monitored, best)
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_ordering");
    for stages in [2usize, 4, 8] {
        let (monitored, value) = monitored_pipeline(stages);
        let denotation = denote(&value);
        group.bench_with_input(
            BenchmarkId::new("denotation_below_log", stages),
            &stages,
            |b, _| b.iter(|| log_leq(&denotation, monitored.log())),
        );
        group.bench_with_input(BenchmarkId::new("denote", stages), &stages, |b, _| {
            b.iter(|| denote(&value))
        });
    }
    group.finish();
}

fn bench_correctness_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_correctness_check");
    for stages in [2usize, 4, 8] {
        let (monitored, _) = monitored_pipeline(stages);
        group.bench_with_input(
            BenchmarkId::new("check_provenance", stages),
            &stages,
            |b, _| b.iter(|| check_provenance(&monitored).is_correct()),
        );
    }
    group.finish();
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_exploration");
    let market = workload::fan_out(2, 1, 2);
    group.bench_function("explore_market_correctness", |b| {
        b.iter(|| {
            explore_correctness(
                &MonitoredSystem::new(market.clone()),
                &TrivialPatterns,
                ExploreOptions {
                    max_depth: 12,
                    max_states: 4_000,
                },
            )
            .unwrap()
            .unwrap()
        })
    });
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_ordering(c);
    bench_correctness_check(c);
    bench_exploration(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
