//! E15 — the metrics plane.
//!
//! Two costs, bounded so observability never argues with the hot path:
//!
//! * **`e15_metrics/record_overhead`** — the price of one
//!   [`PolicyMetrics::record`] (three relaxed counter bumps plus a
//!   log-spaced histogram bucket found by binary search) measured against
//!   the full vet it rides on.  The summary table reports the ratio; the
//!   budget is **<5 %** of a memo-warm vet, the cheapest vet there is —
//!   against cold vets the ratio only shrinks.
//! * **`e15_metrics/exposition_render`** — the cost of rendering the
//!   Prometheus text exposition as the engine grows (1/16/64 registered
//!   policies, each with a fully-populated latency histogram), plus the
//!   rendered size.  Rendering happens off the hot path (client-side for
//!   wire scrapes), so this bounds scrape cost, not request cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{
    render_exposition, validate_exposition, AuditEngine, AuditOutcome, AuditRequest,
    MetricsRegistry, VetOutcomeKind,
};
use piprov_bench::quick_criterion;
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_store::{Operation, ProvenanceRecord};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const ITEMS: usize = 64;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-e15-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An engine with one policy and a store of `ITEMS` single-hop records —
/// the smallest engine whose vets exercise index, memo and histogram.
fn seeded_engine(dir: &PathBuf) -> Arc<AuditEngine> {
    let engine = Arc::new(AuditEngine::open(dir).expect("open engine"));
    engine.register_pattern("from-s", Pattern::originated_at(GroupExpr::single("s")));
    let records: Vec<ProvenanceRecord> = (0..ITEMS as u64)
        .map(|i| {
            ProvenanceRecord::new(
                i,
                "s",
                Operation::Send,
                "m",
                Value::Channel(Channel::new(format!("item{}", i))),
                Provenance::single(Event::output(Principal::new("s"), Provenance::empty())),
            )
        })
        .collect();
    engine.ingest_batch(records).expect("ingest");
    engine
}

fn vet(engine: &AuditEngine, i: usize) -> bool {
    let response = engine.handle(&AuditRequest::VetValue {
        value: Value::Channel(Channel::new(format!("item{}", i % ITEMS))),
        pattern: "from-s".into(),
    });
    matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. })
}

fn bench_record_overhead(c: &mut Criterion) {
    let dir = temp_dir("overhead");
    let engine = seeded_engine(&dir);
    // Warm the memo: the steady-state vet is the cheapest, and therefore
    // the one the histogram record must stay invisible against.
    for i in 0..ITEMS {
        assert!(vet(&engine, i));
    }

    let registry = MetricsRegistry::new();
    let policy = registry.register_policy("bench");

    let mut group = c.benchmark_group("e15_metrics/record_overhead");
    group.bench_function("vet_memo_warm", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            vet(&engine, i)
        })
    });
    group.bench_function("histogram_record", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            // Spread across buckets so the binary search sees real work.
            policy.record(i % (1 << 24), VetOutcomeKind::Passed);
        })
    });
    group.finish();

    // Summary: both costs timed over the same loop count, and the ratio.
    let rounds = 200_000usize;
    let started = Instant::now();
    let mut passed = 0usize;
    for i in 0..rounds {
        if vet(&engine, i) {
            passed += 1;
        }
    }
    let vet_ns = started.elapsed().as_nanos() as f64 / rounds as f64;
    assert_eq!(passed, rounds);

    let started = Instant::now();
    for i in 0..rounds {
        policy.record((i as u64) % (1 << 24), VetOutcomeKind::Passed);
    }
    let record_ns = started.elapsed().as_nanos() as f64 / rounds as f64;
    let ratio = 100.0 * record_ns / vet_ns;

    println!("\ne15 summary — histogram record cost on the vet hot path");
    println!("  memo-warm vet:     {:>9.1} ns", vet_ns);
    println!("  histogram record:  {:>9.1} ns", record_ns);
    println!(
        "  overhead:          {:>9.2} % of a warm vet (target <5%){}",
        ratio,
        if ratio < 5.0 {
            ""
        } else {
            "  ** OVER BUDGET **"
        }
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A registry with `policies` policies, each carrying a spread of
/// recorded vets so every histogram bucket line renders.
fn populated_registry(policies: usize) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for p in 0..policies {
        let name = format!("policy-{:03}", p);
        let metrics = registry.register_policy(&name);
        for i in 0..64u64 {
            let outcome = if i % 3 == 0 {
                VetOutcomeKind::Failed
            } else {
                VetOutcomeKind::Passed
            };
            metrics.record(1 << (i % 24), outcome);
        }
    }
    registry
}

fn bench_exposition_render(c: &mut Criterion) {
    let dir = temp_dir("render");
    let engine = seeded_engine(&dir);
    let mut group = c.benchmark_group("e15_metrics/exposition_render");
    for policies in [1usize, 16, 64] {
        let registry = populated_registry(policies);
        let snapshot = {
            let mut snapshot = engine.metrics();
            snapshot.policies = registry.policy_snapshots(|_| None);
            snapshot
        };
        validate_exposition(&render_exposition(&snapshot)).expect("render lints clean");
        group.bench_with_input(
            BenchmarkId::new("policies", policies),
            &snapshot,
            |b, snapshot| b.iter(|| render_exposition(snapshot).len()),
        );
    }
    group.finish();

    println!("\ne15 summary — exposition render cost vs registered policies");
    println!("  {:<10} {:>12} {:>12}", "policies", "bytes", "µs/render");
    for policies in [1usize, 16, 64] {
        let registry = populated_registry(policies);
        let mut snapshot = engine.metrics();
        snapshot.policies = registry.policy_snapshots(|_| None);
        let rounds = 200usize;
        let started = Instant::now();
        let mut bytes = 0usize;
        for _ in 0..rounds {
            bytes = render_exposition(&snapshot).len();
        }
        let micros = started.elapsed().as_micros() as f64 / rounds as f64;
        println!("  {:<10} {:>12} {:>12.1}", policies, bytes, micros);
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn all(c: &mut Criterion) {
    bench_record_overhead(c);
    bench_exposition_render(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
