//! E10 — cost of pattern vetting (`κ ⊨ π`).
//!
//! Sweeps provenance length and pattern shape, comparing the reference
//! backtracking matcher (the paper's rules verbatim) against the compiled
//! NFA engine.  The crossover the experiment documents: the two engines are
//! comparable on short provenance, and the NFA wins by orders of magnitude
//! on ambiguous patterns over long provenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::name::Principal;
use piprov_core::provenance::{Event, Provenance};
use piprov_patterns::{matching, CompiledPattern, GroupExpr, Pattern};

fn provenance_of_length(n: usize) -> Provenance {
    let principals = ["a", "b", "c", "d"];
    Provenance::from_events(
        (0..n)
            .map(|i| {
                let p = Principal::new(principals[i % principals.len()]);
                if i % 2 == 0 {
                    Event::input(p, Provenance::empty())
                } else {
                    Event::output(p, Provenance::empty())
                }
            })
            .collect::<Vec<_>>(),
    )
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_engines");
    let patterns = vec![
        (
            "immediate_sender",
            Pattern::immediately_sent_by(GroupExpr::single("a")),
        ),
        (
            "originated_at",
            Pattern::originated_at(GroupExpr::single("a")),
        ),
        (
            "only_touched_by",
            Pattern::only_touched_by(GroupExpr::any_of(["a", "b", "c", "d"])),
        ),
        ("ambiguous_star", Pattern::Any.then(Pattern::Any).star()),
    ];
    for (name, pattern) in &patterns {
        for len in [4usize, 16, 64] {
            let prov = provenance_of_length(len);
            // The reference matcher on the ambiguous pattern is exponential;
            // cap its input size so the bench completes.
            if *name != "ambiguous_star" || len <= 16 {
                group.bench_with_input(
                    BenchmarkId::new(format!("reference/{}", name), len),
                    &len,
                    |b, _| b.iter(|| matching::satisfies(&prov, pattern)),
                );
            }
            let compiled = CompiledPattern::compile(pattern);
            group.bench_with_input(
                BenchmarkId::new(format!("nfa/{}", name), len),
                &len,
                |b, _| b.iter(|| compiled.matches(&prov)),
            );
        }
    }
    group.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_compilation");
    let pattern = Pattern::only_touched_by(GroupExpr::any_of(["a", "b", "c", "d"]))
        .or(Pattern::originated_at(GroupExpr::single("a")));
    group.bench_function("compile", |b| b.iter(|| CompiledPattern::compile(&pattern)));
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_engines(c);
    bench_compilation(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
