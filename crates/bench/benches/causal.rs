//! E19 — cost of causal queries: why-slice extraction and counterfactual
//! re-vetting.
//!
//! Two sweeps:
//!
//! * **slice extraction vs depth** — the witness walk (`witness`) against
//!   the plain subset walk (`matches`) over spines of growing depth: the
//!   slice costs one trail allocation on top of the walk, never a second
//!   pass;
//! * **counterfactual re-vet vs from-scratch** — the headline number: on
//!   a deep spine where the filter touches only near-top events, the
//!   memo-warm counterfactual (re-intern the touched prefix, hit the
//!   memoized shared suffix) against a from-scratch engine that compiles
//!   the policy and walks the literally filtered history.  Target: ≥ 5×
//!   at depth ≥ 256.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{filtered_view, EventFilter};
use piprov_bench::quick_criterion;
use piprov_core::name::Principal;
use piprov_core::provenance::{Event, Provenance};
use piprov_patterns::{parse_pattern, CompiledPattern, MatchStats};

/// Newest-first deep spine: an accepting head, one filterable hop, then
/// `depth` relay hops sharing one suffix chain.
fn deep_spine(depth: usize) -> Provenance {
    let mut events = vec![
        Event::output(Principal::new("s0"), Provenance::empty()),
        Event::input(Principal::new("drop"), Provenance::empty()),
    ];
    events.extend((0..depth).map(|_| Event::input(Principal::new("relay"), Provenance::empty())));
    Provenance::from_events(events)
}

fn bench_slice_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_slice");
    let pattern = parse_pattern("s0!Any; Any").expect("policy parses");
    for depth in [16usize, 64, 256, 1024] {
        let prov = deep_spine(depth);
        // Fresh automata per iteration so the walk is honest: a reused
        // one would answer `matches` from its memo after the first pass
        // (the witness walk never consults the memo — cached verdicts
        // carry no trail).
        group.bench_with_input(BenchmarkId::new("matches", depth), &depth, |b, _| {
            b.iter(|| CompiledPattern::compile(&pattern).matches(&prov))
        });
        group.bench_with_input(BenchmarkId::new("witness", depth), &depth, |b, _| {
            b.iter(|| {
                let mut stats = MatchStats::default();
                CompiledPattern::compile(&pattern).witness(&prov, &mut stats)
            })
        });
    }
    group.finish();
}

fn bench_counterfactual(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_counterfactual");
    let pattern = parse_pattern("s0!Any; Any").expect("policy parses");
    let filter = EventFilter::Principal(Principal::new("drop"));
    for depth in [64usize, 256, 1024] {
        let prov = deep_spine(depth);

        // Memo-warm: the original vet has memoized every suffix; the
        // counterfactual re-interns the touched prefix and rides the
        // shared suffix out of the memo.
        let warm = CompiledPattern::compile(&pattern);
        assert!(warm.matches(&prov), "the deep spine passes the policy");
        group.bench_with_input(BenchmarkId::new("memo_warm", depth), &depth, |b, _| {
            b.iter(|| {
                let view = filtered_view(&prov, &filter);
                warm.matches(&view.provenance)
            })
        });

        // From-scratch: filter the history literally, compile the policy,
        // walk the whole filtered spine cold.
        group.bench_with_input(BenchmarkId::new("from_scratch", depth), &depth, |b, _| {
            b.iter(|| {
                let filtered = Provenance::from_events(
                    prov.to_vec()
                        .into_iter()
                        .filter(|event| !filter.removes(event)),
                );
                CompiledPattern::compile(&pattern).matches(&filtered)
            })
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_slice_extraction(c);
    bench_counterfactual(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
