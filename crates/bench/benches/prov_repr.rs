//! Design-choice ablation (DESIGN.md §6): provenance representation.
//!
//! The canonical representation shares the tail of the sequence between the
//! pre- and post-event values (O(1) prepend); the flat representation
//! copies the whole vector, which is what a naive implementation of the
//! paper would do.  The gap grows linearly with the provenance length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::name::Principal;
use piprov_core::provenance::compact::{FlatEvent, FlatProvenance};
use piprov_core::provenance::{Direction, Event, Provenance};

fn shared_of_length(n: usize) -> Provenance {
    let mut p = Provenance::empty();
    for i in 0..n {
        p = p.prepend(Event::output(
            Principal::new(format!("p{}", i % 4)),
            Provenance::empty(),
        ));
    }
    p
}

fn bench_prepend(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_prepend");
    for len in [8usize, 64, 512] {
        let shared = shared_of_length(len);
        let flat = FlatProvenance::from_shared(&shared);
        let event = Event::input(Principal::new("x"), Provenance::empty());
        let flat_event = FlatEvent {
            principal: Principal::new("x"),
            direction: Direction::Input,
            channel_provenance: FlatProvenance::empty(),
        };
        group.bench_with_input(BenchmarkId::new("shared", len), &len, |b, _| {
            b.iter(|| shared.prepend(event.clone()))
        });
        group.bench_with_input(BenchmarkId::new("flat_copy", len), &len, |b, _| {
            b.iter(|| flat.prepend(flat_event.clone()))
        });
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_traverse");
    for len in [64usize, 512] {
        let shared = shared_of_length(len);
        group.bench_with_input(
            BenchmarkId::new("principals_involved", len),
            &len,
            |b, _| b.iter(|| shared.principals_involved().len()),
        );
        group.bench_with_input(BenchmarkId::new("total_size", len), &len, |b, _| {
            b.iter(|| shared.total_size())
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_prepend(c);
    bench_traversal(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
