//! Design-choice ablation (DESIGN.md §6, experiment E9): provenance
//! representation, three ways.
//!
//! * **interned** — the canonical representation: hash-consed DAG nodes
//!   with O(1) equality/hash and cached `len`/`depth`/`total_size`;
//! * **cons** — the seed's structurally shared cons list: O(1) prepend,
//!   but deep equality/hash and O(tree) size queries;
//! * **flat** — an eagerly cloned vector: what a naive implementation of
//!   the paper would do; every prepend copies the whole history.
//!
//! Three workloads expose the differences:
//!
//! * `repr_prepend` — the hot operation of the reduction semantics; all
//!   three are measured so the interner's hash-consing overhead on
//!   construction is visible, not hidden;
//! * `repr_eq` — comparing two structurally equal histories (what every
//!   receive-side vetting and store lookup does);
//! * `repr_deep_sharing` — the adversarial shape from the paper's
//!   semantics: each hop's channel carries the full history, so the
//!   logical tree doubles per hop while the DAG grows by one node.  Size
//!   queries and equality stay O(1) for the interned representation and
//!   degrade to O(2^depth) for the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::name::Principal;
use piprov_core::provenance::compact::{FlatEvent, FlatProvenance};
use piprov_core::provenance::cons::ConsProvenance;
use piprov_core::provenance::{Direction, Event, Provenance};
use std::hash::{DefaultHasher, Hash, Hasher};

fn shared_of_length(n: usize) -> Provenance {
    let mut p = Provenance::empty();
    for i in 0..n {
        p = p.prepend(Event::output(
            Principal::new(format!("p{}", i % 4)),
            Provenance::empty(),
        ));
    }
    p
}

/// Channel-chained provenance: each hop travels on a channel carrying the
/// full history so far.  `total_size` is ~2^hops; `dag_size` is ~hops.
fn chained(hops: usize) -> Provenance {
    let mut p = Provenance::single(Event::output(Principal::new("origin"), Provenance::empty()));
    for i in 0..hops {
        p = p.prepend(Event::output(
            Principal::new(format!("hop{}", i % 4)),
            p.clone(),
        ));
    }
    p
}

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

fn bench_prepend(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_prepend");
    for len in [8usize, 64, 512] {
        let interned = shared_of_length(len);
        let cons = ConsProvenance::from_shared(&interned);
        let flat = FlatProvenance::from_shared(&interned);
        let event = Event::input(Principal::new("x"), Provenance::empty());
        let cons_event = piprov_core::provenance::cons::ConsEvent {
            principal: Principal::new("x"),
            direction: Direction::Input,
            channel_provenance: ConsProvenance::empty(),
        };
        let flat_event = FlatEvent {
            principal: Principal::new("x"),
            direction: Direction::Input,
            channel_provenance: FlatProvenance::empty(),
        };
        group.bench_with_input(BenchmarkId::new("interned", len), &len, |b, _| {
            b.iter(|| interned.prepend(event.clone()))
        });
        group.bench_with_input(BenchmarkId::new("cons", len), &len, |b, _| {
            b.iter(|| cons.prepend(cons_event.clone()))
        });
        group.bench_with_input(BenchmarkId::new("flat_copy", len), &len, |b, _| {
            b.iter(|| flat.prepend(flat_event.clone()))
        });
    }
    group.finish();
}

fn bench_eq_and_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_eq");
    for len in [64usize, 512] {
        // Two independently built, structurally equal histories.
        let a = shared_of_length(len);
        let b_ = shared_of_length(len);
        let cons_a = ConsProvenance::from_shared(&a);
        let cons_b = ConsProvenance::from_shared(&b_);
        let flat_a = FlatProvenance::from_shared(&a);
        let flat_b = FlatProvenance::from_shared(&b_);
        group.bench_with_input(BenchmarkId::new("interned", len), &len, |b, _| {
            b.iter(|| a == b_)
        });
        group.bench_with_input(BenchmarkId::new("cons", len), &len, |b, _| {
            b.iter(|| cons_a == cons_b)
        });
        group.bench_with_input(BenchmarkId::new("flat", len), &len, |b, _| {
            b.iter(|| flat_a == flat_b)
        });
        group.bench_with_input(BenchmarkId::new("interned_hash", len), &len, |b, _| {
            b.iter(|| hash_of(&a))
        });
        group.bench_with_input(BenchmarkId::new("cons_hash", len), &len, |b, _| {
            b.iter(|| hash_of(&cons_a))
        });
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_traverse");
    for len in [64usize, 512] {
        let shared = shared_of_length(len);
        group.bench_with_input(
            BenchmarkId::new("principals_involved", len),
            &len,
            |b, _| b.iter(|| shared.principals_involved().len()),
        );
        group.bench_with_input(BenchmarkId::new("total_size", len), &len, |b, _| {
            b.iter(|| shared.total_size())
        });
    }
    group.finish();
}

fn bench_deep_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_deep_sharing");
    for hops in [12usize, 16] {
        let interned = chained(hops);
        let cons = ConsProvenance::from_shared(&interned);
        // The flat representation materializes the whole tree; building it
        // once here is already O(2^hops) memory.
        let flat = FlatProvenance::from_shared(&interned);
        assert!(interned.total_size() > 1 << hops);
        group.bench_with_input(
            BenchmarkId::new("interned_total_size", hops),
            &hops,
            |b, _| b.iter(|| interned.total_size()),
        );
        group.bench_with_input(BenchmarkId::new("cons_total_size", hops), &hops, |b, _| {
            b.iter(|| cons.total_size())
        });
        group.bench_with_input(BenchmarkId::new("flat_total_size", hops), &hops, |b, _| {
            b.iter(|| flat.total_size())
        });
        // Equality of two structurally equal deep-sharing histories.
        let interned_b = chained(hops);
        let cons_b = ConsProvenance::from_shared(&interned_b);
        group.bench_with_input(BenchmarkId::new("interned_eq", hops), &hops, |b, _| {
            b.iter(|| interned == interned_b)
        });
        group.bench_with_input(BenchmarkId::new("cons_eq", hops), &hops, |b, _| {
            b.iter(|| cons == cons_b)
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_prepend(c);
    bench_eq_and_hash(c);
    bench_traversal(c);
    bench_deep_sharing(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
