//! E13 — scalability of the simulator with system size and network
//! conditions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_bench::quick_criterion;
use piprov_core::pattern::TrivialPatterns;
use piprov_runtime::workload;
use piprov_runtime::{NetworkConfig, SimConfig, Simulation};

fn run(
    system: &piprov_core::system::System<piprov_core::pattern::AnyPattern>,
    network: NetworkConfig,
) -> usize {
    let mut sim = Simulation::new(
        system,
        TrivialPatterns,
        SimConfig {
            network,
            ..SimConfig::default()
        },
    );
    sim.run(10_000_000).unwrap();
    sim.metrics().steps
}

fn bench_principal_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_principals");
    for producers in [8usize, 16, 32, 64] {
        let system = workload::fan_out(producers, producers / 4, 2);
        group.bench_with_input(
            BenchmarkId::new("fan_out", producers),
            &producers,
            |b, _| b.iter(|| run(&system, NetworkConfig::reliable())),
        );
    }
    group.finish();
}

fn bench_ring_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_ring");
    for nodes in [8usize, 32, 128] {
        let system = workload::ring(nodes);
        group.bench_with_input(BenchmarkId::new("ring", nodes), &nodes, |b, _| {
            b.iter(|| run(&system, NetworkConfig::reliable()))
        });
    }
    group.finish();
}

fn bench_network_conditions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_network");
    let system = workload::pipeline(6, 6);
    group.bench_function("reliable", |b| {
        b.iter(|| run(&system, NetworkConfig::reliable()))
    });
    group.bench_function("jittery", |b| {
        b.iter(|| {
            run(
                &system,
                NetworkConfig {
                    base_latency: 5,
                    jitter: 20,
                    ..NetworkConfig::reliable()
                },
            )
        })
    });
    group.bench_function("lossy_10pct", |b| {
        b.iter(|| run(&system, NetworkConfig::lossy(0.10, 3)))
    });
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_principal_scale(c);
    bench_ring_scale(c);
    bench_network_conditions(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
