//! E17 — the request tracing plane.
//!
//! Three costs, bounded so tracing never argues with the hot path:
//!
//! * **`e17_trace/span_stamping`** — the price of the full per-request
//!   trace path (admit a wire context, assemble the spans, one seqlock
//!   ring write) measured against the memo-warm vet it rides on, the
//!   cheapest request there is.  The summary table reports the ratio;
//!   the budget is **<5 %** of a warm vet with sampling at 1-in-1 —
//!   the worst case, since real deployments sample sparser.
//! * **loopback end-to-end** (summary only) — the same budget applied
//!   where it matters operationally: a framed vet round trip over TCP
//!   with client-propagated trace contexts on vs off.
//! * **`e17_trace/snapshot_render`** — the cost of draining the ring
//!   ([`TraceCollector::snapshot`]) and rendering the `GET /trace` text
//!   as the ring grows.  Snapshots run off the hot path (scrape-side),
//!   so this bounds scrape cost, not request cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use piprov_audit::{
    render_traces, validate_trace_text, AuditEngine, AuditOutcome, AuditRequest, RequestKind, Span,
    SpanKind, TraceCollector, TraceConfig, TraceContext,
};
use piprov_bench::quick_criterion;
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_serve::{AuditClient, AuditServer, ClientConfig, ServeConfig};
use piprov_store::{Operation, ProvenanceRecord};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const ITEMS: usize = 64;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-e17-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An engine with one policy and a store of `ITEMS` single-hop records —
/// the smallest engine whose vets exercise index, memo and histogram.
fn seeded_engine(dir: &PathBuf) -> Arc<AuditEngine> {
    let engine = Arc::new(AuditEngine::open(dir).expect("open engine"));
    engine.register_pattern("from-s", Pattern::originated_at(GroupExpr::single("s")));
    let records: Vec<ProvenanceRecord> = (0..ITEMS as u64)
        .map(|i| {
            ProvenanceRecord::new(
                i,
                "s",
                Operation::Send,
                "m",
                Value::Channel(Channel::new(format!("item{}", i))),
                Provenance::single(Event::output(Principal::new("s"), Provenance::empty())),
            )
        })
        .collect();
    engine.ingest_batch(records).expect("ingest");
    engine
}

fn vet_request(i: usize) -> AuditRequest {
    AuditRequest::VetValue {
        value: Value::Channel(Channel::new(format!("item{}", i % ITEMS))),
        pattern: "from-s".into(),
    }
}

fn vet(engine: &AuditEngine, i: usize) -> bool {
    let response = engine.handle(&vet_request(i));
    matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. })
}

/// One full span-stamping pass: the work tracing adds to a request that
/// the pre-existing metrics plane (stage stamps, histogram records) does
/// not already pay.
fn stamp(collector: &TraceCollector, i: usize) {
    let ctx = collector.admit(Some(TraceContext {
        trace_id: (i as u128) | 1,
        sampled: true,
    }));
    let spans = [
        Span::new(SpanKind::Decode, 120),
        Span {
            kind: SpanKind::Handle,
            duration_ns: 480 + (i as u64 & 0xFF),
            index_hits: 1,
            memo_hits: 1,
        },
        Span::new(SpanKind::Write, 60),
    ];
    collector.finish(ctx, RequestKind::Vet, 700 + (i as u64 & 0xFF), &spans);
}

fn bench_span_stamping(c: &mut Criterion) {
    let dir = temp_dir("stamping");
    let engine = seeded_engine(&dir);
    // Worst case for the trace plane: every request sampled and recorded.
    let collector = TraceCollector::new(TraceConfig {
        sample_every: 1,
        ..TraceConfig::default()
    });
    // Warm the memo: the steady-state vet is the cheapest, and therefore
    // the one span stamping must stay invisible against.
    for i in 0..ITEMS {
        assert!(vet(&engine, i));
    }

    let mut group = c.benchmark_group("e17_trace/span_stamping");
    group.bench_function("vet_memo_warm", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            vet(&engine, i)
        })
    });
    group.bench_function("span_stamping", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            stamp(&collector, i);
        })
    });
    group.finish();

    // Summary: both costs timed over the same loop count. Passes
    // interleave and each side keeps its best, so a scheduler hiccup
    // hits both sides alike instead of faking a budget breach.
    let rounds = 200_000usize;
    let passes = 9usize;
    let mut vet_ns = f64::INFINITY;
    let mut stamp_ns = f64::INFINITY;
    for _ in 0..passes {
        let started = Instant::now();
        let mut passed = 0usize;
        for i in 0..rounds {
            if vet(&engine, i) {
                passed += 1;
            }
        }
        vet_ns = vet_ns.min(started.elapsed().as_nanos() as f64 / rounds as f64);
        assert_eq!(passed, rounds);

        let started = Instant::now();
        for i in 0..rounds {
            stamp(&collector, i);
        }
        stamp_ns = stamp_ns.min(started.elapsed().as_nanos() as f64 / rounds as f64);
    }
    let ratio = 100.0 * stamp_ns / vet_ns;

    println!("\ne17 summary — span stamping cost on the vet hot path");
    println!("  memo-warm vet:     {:>9.1} ns", vet_ns);
    println!("  span stamping:     {:>9.1} ns", stamp_ns);
    println!(
        "  overhead:          {:>9.2} % of a warm vet (target <5%){}",
        ratio,
        if ratio < 5.0 {
            ""
        } else {
            "  ** OVER BUDGET **"
        }
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// End-to-end check over a real loopback server: a framed vet round trip
/// with client trace propagation off vs on (sampling 1-in-1 server-side).
fn loopback_overhead_summary() {
    let dir = temp_dir("loopback");
    let engine = seeded_engine(&dir);
    let server = AuditServer::bind(Arc::clone(&engine), "127.0.0.1:0", ServeConfig::default())
        .expect("bind");
    let addr = server.local_addr();

    // One persistent connection per mode; batches interleave and each
    // mode keeps its best batch, so shared-machine noise (which dwarfs a
    // sub-microsecond stamping cost at this scale) cancels out of the
    // comparison instead of deciding it.
    let batch = 1_000usize;
    let batches = 24usize;
    let mut clients: Vec<AuditClient> = [false, true]
        .iter()
        .map(|&trace| {
            let mut client = AuditClient::connect_with(
                addr,
                ClientConfig {
                    trace,
                    ..ClientConfig::default()
                },
            )
            .expect("connect");
            // Warm the connection and the memo before timing.
            for i in 0..ITEMS {
                client.request(&vet_request(i)).expect("warm vet");
            }
            client
        })
        .collect();
    let mut best = [f64::INFINITY; 2];
    for round in 0..batches {
        // Alternate which mode goes first so slow drift cancels too.
        let order = if round % 2 == 0 { [0, 1] } else { [1, 0] };
        for mode in order {
            let client = &mut clients[mode];
            let started = Instant::now();
            for i in 0..batch {
                client.request(&vet_request(i)).expect("vet");
            }
            best[mode] = best[mode].min(started.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
    let (untraced_ns, traced_ns) = (best[0], best[1]);
    let overhead = 100.0 * (traced_ns - untraced_ns) / untraced_ns;

    println!("\ne17 summary — end-to-end tracing overhead, loopback vet path");
    println!("  round trip, tracing off: {:>9.1} ns", untraced_ns);
    println!("  round trip, tracing on:  {:>9.1} ns", traced_ns);
    println!(
        "  overhead:                {:>9.2} % (target <5%){}",
        overhead,
        if overhead < 5.0 {
            ""
        } else {
            "  ** OVER BUDGET **"
        }
    );
    server.shutdown().expect("shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// A collector whose ring holds `traces` completed four-span records.
fn populated_collector(capacity: usize, traces: usize) -> TraceCollector {
    let collector = TraceCollector::new(TraceConfig {
        sample_every: 1,
        capacity,
        ..TraceConfig::default()
    });
    for i in 0..traces {
        let ctx = collector.admit(Some(TraceContext {
            trace_id: (i as u128) + 1,
            sampled: true,
        }));
        let spans = [
            Span::new(SpanKind::ClientEncode, 250),
            Span::new(SpanKind::Decode, 1_000 + i as u64),
            Span {
                kind: SpanKind::Handle,
                duration_ns: 20_000 + i as u64,
                index_hits: 1,
                memo_hits: 1,
            },
            Span::new(SpanKind::Write, 2_000),
        ];
        collector.finish(ctx, RequestKind::Vet, 24_000 + i as u64, &spans);
    }
    collector
}

fn bench_snapshot_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_trace/snapshot_render");
    for capacity in [64usize, 256, 1024] {
        let collector = populated_collector(capacity, capacity);
        validate_trace_text(&render_traces(&collector.snapshot(0)))
            .expect("trace text lints clean");
        group.bench_with_input(
            BenchmarkId::new("ring", capacity),
            &collector,
            |b, collector| b.iter(|| render_traces(&collector.snapshot(0)).len()),
        );
    }
    group.finish();

    println!("\ne17 summary — snapshot+render cost vs ring capacity");
    println!("  {:<10} {:>12} {:>12}", "capacity", "bytes", "µs/render");
    for capacity in [64usize, 256, 1024] {
        let collector = populated_collector(capacity, capacity);
        let rounds = 200usize;
        let started = Instant::now();
        let mut bytes = 0usize;
        for _ in 0..rounds {
            bytes = render_traces(&collector.snapshot(0)).len();
        }
        let micros = started.elapsed().as_micros() as f64 / rounds as f64;
        println!("  {:<10} {:>12} {:>12.1}", capacity, bytes, micros);
    }
}

fn all(c: &mut Criterion) {
    bench_span_stamping(c);
    loopback_overhead_summary();
    bench_snapshot_render(c);
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = all
}
criterion_main!(benches);
