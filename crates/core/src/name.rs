//! Names used by the calculus: principals, channels and variables.
//!
//! The paper assumes three pairwise-disjoint sets: variables `X`, channel
//! names `C` and principal names `A`.  We keep them disjoint at the type
//! level by using three distinct newtypes.  All three are cheap to clone
//! (they share their backing string through an [`std::sync::Arc`]) because
//! provenance sequences duplicate names heavily.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

macro_rules! name_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a new name from anything string-like.
            pub fn new(s: impl AsRef<str>) -> Self {
                Self(Arc::from(s.as_ref()))
            }

            /// Returns the textual form of the name.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Returns `true` if this name was produced by a [`NameSupply`]
            /// (fresh names contain the reserved `'` marker).
            pub fn is_generated(&self) -> bool {
                self.0.contains('\'')
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self::new(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                self.as_str()
            }
        }
    };
}

name_type!(
    /// A principal name `a, b, c ∈ A`.
    ///
    /// Principals are the units of trust of the calculus: every process runs
    /// *located* at a principal, and provenance events record which principal
    /// sent or received a value.
    Principal,
    "Principal"
);

name_type!(
    /// A channel name `l, m, n ∈ C`.
    ///
    /// Channels are both the communication medium and first-class data: in
    /// the pi-calculus channels may themselves be sent over channels, which
    /// is why channel occurrences in processes carry their own provenance.
    Channel,
    "Channel"
);

name_type!(
    /// A variable `x, y, z ∈ X`, bound by pattern-restricted inputs.
    Variable,
    "Variable"
);

/// A deterministic supply of fresh channel names.
///
/// Fresh names are needed by capture-avoiding substitution and by the
/// interpreter when it lifts restrictions `(νn)P` to the top level of a
/// configuration.  Generated names embed a `'` character, which the surface
/// syntax of [`piprov-lang`](https://docs.rs/piprov-lang) never produces, so
/// they can never collide with user-written names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameSupply {
    counter: u64,
}

impl NameSupply {
    /// Creates a supply starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a supply that starts counting at `start`.
    ///
    /// Useful when resuming from a serialized configuration whose generated
    /// names must not be reused.
    pub fn starting_at(start: u64) -> Self {
        Self { counter: start }
    }

    /// Returns the next counter value without consuming it.
    pub fn peek(&self) -> u64 {
        self.counter
    }

    /// Produces a fresh channel name derived from `base`.
    pub fn fresh_channel(&mut self, base: &Channel) -> Channel {
        let n = self.bump();
        Channel::new(format!("{}'{}", base.as_str(), n))
    }

    /// Produces a fresh channel name with no particular base.
    pub fn fresh_anonymous(&mut self) -> Channel {
        let n = self.bump();
        Channel::new(format!("ch'{}", n))
    }

    /// Produces a fresh variable derived from `base`.
    pub fn fresh_variable(&mut self, base: &Variable) -> Variable {
        let n = self.bump();
        Variable::new(format!("{}'{}", base.as_str(), n))
    }

    fn bump(&mut self) -> u64 {
        let n = self.counter;
        self.counter += 1;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_compare_by_content() {
        assert_eq!(Principal::new("a"), Principal::new("a"));
        assert_ne!(Principal::new("a"), Principal::new("b"));
        assert_eq!(Channel::from("m"), Channel::new(String::from("m")));
    }

    #[test]
    fn display_is_bare_text() {
        assert_eq!(Principal::new("alice").to_string(), "alice");
        assert_eq!(Channel::new("sub").to_string(), "sub");
        assert_eq!(Variable::new("x").to_string(), "x");
    }

    #[test]
    fn debug_identifies_the_kind() {
        assert_eq!(format!("{:?}", Principal::new("a")), "Principal(a)");
        assert_eq!(format!("{:?}", Channel::new("m")), "Channel(m)");
        assert_eq!(format!("{:?}", Variable::new("x")), "Variable(x)");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let c = Channel::new("m");
        let d = c.clone();
        assert_eq!(c, d);
    }

    #[test]
    fn name_supply_produces_distinct_names() {
        let mut supply = NameSupply::new();
        let base = Channel::new("n");
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let fresh = supply.fresh_channel(&base);
            assert!(fresh.is_generated());
            assert!(seen.insert(fresh));
        }
    }

    #[test]
    fn name_supply_starting_at_skips_prefix() {
        let mut a = NameSupply::new();
        let mut b = NameSupply::starting_at(50);
        let base = Channel::new("n");
        let from_a: HashSet<_> = (0..50).map(|_| a.fresh_channel(&base)).collect();
        let from_b: HashSet<_> = (0..50).map(|_| b.fresh_channel(&base)).collect();
        assert!(from_a.is_disjoint(&from_b));
    }

    #[test]
    fn generated_names_never_collide_with_plain_names() {
        let mut supply = NameSupply::new();
        let fresh = supply.fresh_channel(&Channel::new("n"));
        assert!(fresh.is_generated());
        assert!(!Channel::new("n0").is_generated());
        assert_ne!(fresh, Channel::new("n0"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Principal::new("a") < Principal::new("b"));
        assert!(Channel::new("m1") < Channel::new("m2"));
    }

    #[test]
    fn borrow_allows_str_lookup() {
        let mut set = HashSet::new();
        set.insert(Channel::new("m"));
        assert!(set.contains("m"));
    }
}
