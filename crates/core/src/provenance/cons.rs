//! The non-interned cons-list provenance representation, kept as an
//! ablation baseline (experiment E9).
//!
//! This is the seed's canonical representation: a persistent, structurally
//! shared cons list with O(1) prepend.  It shares tails *in memory* via
//! `Arc`, but — unlike the interned [`Provenance`] —
//! equality, hashing, `total_size` and `depth` are **deep**: they walk the
//! logical tree, re-visiting shared substructure once per occurrence, so
//! their cost is O(tree) even when the DAG is tiny.  The three-way
//! `prov_repr` bench measures exactly this gap.

use super::{Direction, Provenance};
use crate::name::Principal;
use std::sync::Arc;

/// An event of the cons-list representation; mirrors
/// [`Event`](super::Event) but nests a [`ConsProvenance`] so the whole
/// structure stays non-interned.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConsEvent {
    /// Principal that performed the action.
    pub principal: Principal,
    /// Send or receive.
    pub direction: Direction,
    /// Provenance of the channel used.
    pub channel_provenance: ConsProvenance,
}

#[derive(Debug, PartialEq, Eq, Hash)]
enum Node {
    Nil,
    Cons(ConsEvent, ConsProvenance),
}

/// A provenance sequence as a structurally shared cons list with deep
/// (structural) equality and hashing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConsProvenance {
    node: Arc<Node>,
    len: usize,
}

impl ConsProvenance {
    /// The empty sequence `ε`.
    pub fn empty() -> Self {
        ConsProvenance {
            node: Arc::new(Node::Nil),
            len: 0,
        }
    }

    /// Returns a new sequence with `event` prepended; O(1), shares the
    /// tail.
    pub fn prepend(&self, event: ConsEvent) -> Self {
        ConsProvenance {
            len: self.len + 1,
            node: Arc::new(Node::Cons(event, self.clone())),
        }
    }

    /// Number of top-level events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the sequence is `ε`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most recent event, if any.
    pub fn head(&self) -> Option<&ConsEvent> {
        match &*self.node {
            Node::Nil => None,
            Node::Cons(ev, _) => Some(ev),
        }
    }

    /// Everything but the most recent event; `None` on `ε`.
    pub fn tail(&self) -> Option<&ConsProvenance> {
        match &*self.node {
            Node::Nil => None,
            Node::Cons(_, rest) => Some(rest),
        }
    }

    /// Total number of events in the logical tree, nested channel
    /// provenances included.  Deep: O(tree), the cost the interned
    /// representation caches away.
    pub fn total_size(&self) -> usize {
        let mut sum = 0usize;
        let mut cursor = self;
        while let Node::Cons(ev, rest) = &*cursor.node {
            sum = sum
                .saturating_add(1)
                .saturating_add(ev.channel_provenance.total_size());
            cursor = rest;
        }
        sum
    }

    /// Maximum nesting depth of channel provenances (ε has depth 0).
    /// Deep: O(tree).
    pub fn depth(&self) -> usize {
        let mut max = 0usize;
        let mut cursor = self;
        while let Node::Cons(ev, rest) = &*cursor.node {
            max = max.max(1 + ev.channel_provenance.depth());
            cursor = rest;
        }
        max
    }

    /// Builds a cons-list copy of an interned sequence.
    pub fn from_shared(p: &Provenance) -> Self {
        let events: Vec<ConsEvent> = p
            .iter()
            .map(|ev| ConsEvent {
                principal: ev.principal.clone(),
                direction: ev.direction,
                channel_provenance: ConsProvenance::from_shared(&ev.channel_provenance),
            })
            .collect();
        let mut acc = ConsProvenance::empty();
        for ev in events.into_iter().rev() {
            acc = acc.prepend(ev);
        }
        acc
    }

    /// Converts back to the canonical interned representation.
    pub fn to_shared(&self) -> Provenance {
        let mut events = Vec::with_capacity(self.len);
        let mut cursor = self;
        while let Node::Cons(ev, rest) = &*cursor.node {
            events.push(super::Event {
                principal: ev.principal.clone(),
                direction: ev.direction,
                channel_provenance: ev.channel_provenance.to_shared(),
            });
            cursor = rest;
        }
        Provenance::from_events(events)
    }
}

impl Default for ConsProvenance {
    fn default() -> Self {
        ConsProvenance::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{Event, Provenance};

    #[test]
    fn round_trip_preserves_structure_and_sizes() {
        let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
        let shared = Provenance::empty()
            .prepend(Event::output(Principal::new("a"), km.clone()))
            .prepend(Event::input(Principal::new("b"), km));
        let cons = ConsProvenance::from_shared(&shared);
        assert_eq!(cons.len(), shared.len());
        assert_eq!(cons.total_size(), shared.total_size());
        assert_eq!(cons.depth(), shared.depth());
        assert_eq!(cons.to_shared(), shared);
    }

    #[test]
    fn prepend_shares_tail_but_equality_is_deep() {
        let base = ConsProvenance::empty().prepend(ConsEvent {
            principal: Principal::new("a"),
            direction: Direction::Output,
            channel_provenance: ConsProvenance::empty(),
        });
        let e = ConsEvent {
            principal: Principal::new("b"),
            direction: Direction::Input,
            channel_provenance: ConsProvenance::empty(),
        };
        let x = base.prepend(e.clone());
        let y = base.prepend(e);
        assert_eq!(x, y, "structural equality holds");
        assert!(!Arc::ptr_eq(&x.node, &y.node), "but nodes are not shared");
        assert_eq!(x.head(), y.head());
        assert_eq!(x.tail(), Some(&base));
    }

    #[test]
    fn empty_round_trips() {
        assert!(ConsProvenance::empty().is_empty());
        assert_eq!(ConsProvenance::empty().to_shared(), Provenance::empty());
        assert_eq!(
            ConsProvenance::from_shared(&Provenance::empty()),
            ConsProvenance::empty()
        );
    }
}
