//! Provenance sequences and events.
//!
//! The provenance `κ` of a value is a sequence of events `e₁; …; eₙ`,
//! temporally ordered with the *most recent event first*.  An event is
//! either an output event `a!κ` (the value was sent by principal `a` on a
//! channel whose provenance is `κ`) or an input event `a?κ` (the value was
//! received by principal `a` on a channel whose provenance is `κ`).
//!
//! Because every event embeds the *entire* provenance of the channel it
//! travelled on, the logical term is a tree that can be exponentially
//! larger than its underlying DAG.  The canonical representation here is a
//! **hash-consed (interned) DAG**: every distinct `(event, tail)` node is
//! created exactly once by the global [`interner`], carries a stable
//! [`ProvId`], and caches its `len`, `depth` and `total_size`.  As a
//! result:
//!
//! * [`Provenance::prepend`] — the operation performed by the reduction
//!   rules (`κ ↦ a!κₘ; κ`) — is O(1) plus one interner lookup and shares
//!   the entire old sequence;
//! * equality and hashing are O(1) (they compare ids — two provenances are
//!   structurally equal if and only if they intern to the same node);
//! * [`Provenance::len`], [`Provenance::depth`] and
//!   [`Provenance::total_size`] are O(1) cached reads, even when the
//!   logical tree has exponentially many events.
//!
//! Two non-interned representations are kept as ablation baselines for
//! experiment E9 (`DESIGN.md` §6): the seed's structurally shared cons
//! list ([`cons`]) with deep equality, and a flat eagerly cloned vector
//! ([`compact`]).

use crate::name::Principal;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

pub mod compact;
pub mod cons;
pub mod interner;

pub use interner::{
    interner_shard_stats, interner_stats, InternTable, InternerStats, ProvId, ShardStats,
};

/// The direction of a provenance event: output (`!`) or input (`?`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The value was sent.
    Output,
    /// The value was received.
    Input,
}

impl Direction {
    /// The symbol used in the paper's notation: `!` for output, `?` for input.
    pub fn symbol(self) -> char {
        match self {
            Direction::Output => '!',
            Direction::Input => '?',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A single provenance event `a!κ` or `a?κ`.
///
/// The channel provenance is itself an interned [`Provenance`], so cloning,
/// comparing and hashing events is cheap regardless of how deeply the
/// channel's history nests.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// The principal that performed the send or receive.
    pub principal: Principal,
    /// Whether the event is an output (`!`) or an input (`?`).
    pub direction: Direction,
    /// The provenance of the *channel* on which the exchange happened.
    pub channel_provenance: Provenance,
}

impl Event {
    /// Builds an output event `principal!channel_provenance`.
    pub fn output(principal: impl Into<Principal>, channel_provenance: Provenance) -> Self {
        Event {
            principal: principal.into(),
            direction: Direction::Output,
            channel_provenance,
        }
    }

    /// Builds an input event `principal?channel_provenance`.
    pub fn input(principal: impl Into<Principal>, channel_provenance: Provenance) -> Self {
        Event {
            principal: principal.into(),
            direction: Direction::Input,
            channel_provenance,
        }
    }

    /// Returns `true` if this is an output event.
    pub fn is_output(&self) -> bool {
        self.direction == Direction::Output
    }

    /// Returns `true` if this is an input event.
    pub fn is_input(&self) -> bool {
        self.direction == Direction::Input
    }

    /// Total number of events reachable from this event, including itself
    /// and everything nested inside the channel provenance (O(1): the
    /// nested size is cached on the interned channel provenance).
    pub fn total_size(&self) -> usize {
        1usize.saturating_add(self.channel_provenance.total_size())
    }

    /// Nesting depth of the event (an event over an empty channel
    /// provenance has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.channel_provenance.depth()
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.channel_provenance.is_empty() {
            write!(f, "{}{}ε", self.principal, self.direction)
        } else {
            write!(
                f,
                "{}{}[{}]",
                self.principal, self.direction, self.channel_provenance
            )
        }
    }
}

/// A provenance sequence `κ ::= ε | e | κ;κ`, kept in the flattened
/// (right-associated) normal form the paper works with: a list of events,
/// most recent first.
///
/// `Provenance` values are immutable handles onto interned DAG nodes:
/// cloning is an `Arc` bump, equality and hashing compare [`ProvId`]s in
/// O(1), and prefixing an event with [`Provenance::prepend`] shares the
/// tail (one interner lookup).
///
/// ```
/// use piprov_core::provenance::{Event, Provenance};
///
/// let kappa = Provenance::empty()
///     .prepend(Event::output("a", Provenance::empty()))
///     .prepend(Event::input("b", Provenance::empty()));
/// assert_eq!(kappa.to_string(), "b?ε; a!ε");
/// assert_eq!(kappa.len(), 2);
///
/// // Structurally equal sequences intern to the same node.
/// let again = Provenance::from_events(kappa.to_vec());
/// assert_eq!(again.id(), kappa.id());
/// ```
#[derive(Clone)]
pub struct Provenance {
    node: Option<interner::NodeHandle>,
}

impl Provenance {
    /// The empty provenance sequence `ε`: the value originated locally and
    /// has never been exchanged.
    pub fn empty() -> Self {
        Provenance { node: None }
    }

    fn from_node(node: interner::NodeHandle) -> Self {
        Provenance { node: Some(node) }
    }

    /// The stable identifier of the interned node backing this sequence
    /// ([`ProvId::EMPTY`] for `ε`).
    ///
    /// Ids are stable for the lifetime of the process: two `Provenance`
    /// values are structurally equal if and only if their ids are equal.
    pub fn id(&self) -> ProvId {
        self.node.as_ref().map(|n| n.id).unwrap_or(ProvId::EMPTY)
    }

    /// Builds a provenance sequence from events given *most recent first*.
    pub fn from_events<I>(events: I) -> Self
    where
        I: IntoIterator<Item = Event>,
        I::IntoIter: DoubleEndedIterator,
    {
        let mut acc = Provenance::empty();
        for ev in events.into_iter().rev() {
            acc = acc.prepend(ev);
        }
        acc
    }

    /// Builds a provenance holding a single event.
    pub fn single(event: Event) -> Self {
        Provenance::empty().prepend(event)
    }

    /// Returns a new sequence with `event` as the new most-recent event.
    ///
    /// This is the operation performed by the provenance-tracking reduction
    /// rules: `κ ↦ a!κₘ; κ` on output and `κ ↦ a?κₘ; κ` on input.  The
    /// node is built through the global interner, so repeated histories
    /// share storage and compare in O(1).
    pub fn prepend(&self, event: Event) -> Self {
        Provenance::from_node(interner::intern(&event, self))
    }

    /// Concatenates two sequences: `self ; other` (all of `self` is more
    /// recent than all of `other`).
    ///
    /// Runs in a single reverse pass over `self`'s spine, re-interning each
    /// node on top of `other`; events are only cloned when the interner has
    /// not seen the `(event, tail)` pair before.
    pub fn concat(&self, other: &Provenance) -> Self {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut spine: Vec<&interner::NodeHandle> = Vec::with_capacity(self.len());
        let mut cursor = &self.node;
        while let Some(node) = cursor {
            spine.push(node);
            cursor = &node.tail.node;
        }
        let mut acc = other.clone();
        for node in spine.into_iter().rev() {
            acc = Provenance::from_node(interner::intern(&node.event, &acc));
        }
        acc
    }

    /// `true` when the sequence is `ε`.
    pub fn is_empty(&self) -> bool {
        self.node.is_none()
    }

    /// Number of top-level events in the sequence (nested channel
    /// provenances are not counted; see [`Provenance::total_size`]).  O(1):
    /// cached on the interned node.
    pub fn len(&self) -> usize {
        self.node.as_ref().map(|n| n.len).unwrap_or(0)
    }

    /// The most recent event, if any.
    pub fn head(&self) -> Option<&Event> {
        self.node.as_ref().map(|n| &n.event)
    }

    /// Everything but the most recent event.  Returns `None` on `ε`.
    pub fn tail(&self) -> Option<&Provenance> {
        self.node.as_ref().map(|n| &n.tail)
    }

    /// Iterates over the top-level events, most recent first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { current: self }
    }

    /// Collects the top-level events into a vector, most recent first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().cloned().collect()
    }

    /// Total number of events in the *logical tree*, i.e. including those
    /// nested inside channel provenances, counting shared substructure once
    /// per occurrence.  This is the quantity that grows (potentially
    /// exponentially) during long runs; it is cached on the interned node,
    /// so reading it is O(1).  Saturates at `usize::MAX`.
    pub fn total_size(&self) -> usize {
        self.node.as_ref().map(|n| n.total_size).unwrap_or(0)
    }

    /// Maximum nesting depth of channel provenances (ε has depth 0).
    /// O(1): cached on the interned node.
    pub fn depth(&self) -> usize {
        self.node.as_ref().map(|n| n.depth).unwrap_or(0)
    }

    /// Number of *distinct* interned nodes reachable from this sequence
    /// through tail and channel-provenance edges — the size of the DAG, as
    /// opposed to [`Provenance::total_size`] which is the size of the tree.
    ///
    /// The ratio `total_size / dag_size` measures how much sharing the
    /// interned representation exploits.
    pub fn dag_size(&self) -> usize {
        let mut visited: HashSet<ProvId> = HashSet::new();
        let mut stack = vec![self.clone()];
        while let Some(start) = stack.pop() {
            let mut cursor = start;
            while let Some(node) = cursor.node.as_ref() {
                if !visited.insert(node.id) {
                    break;
                }
                let channel = node.event.channel_provenance.clone();
                if !channel.is_empty() {
                    stack.push(channel);
                }
                let tail = node.tail.clone();
                cursor = tail;
            }
        }
        visited.len()
    }

    /// All distinct interned nodes reachable from this sequence, in
    /// postorder: the channel provenance and tail of a node are listed
    /// before the node itself, and `ε` is never listed.
    ///
    /// This is the enumeration the store's DAG codec serializes: because
    /// children precede parents, every node can refer to its children by
    /// their position in this list.
    pub fn dag_nodes(&self) -> Vec<Provenance> {
        let mut visited: HashSet<ProvId> = HashSet::new();
        let mut order = Vec::new();
        let mut stack: Vec<(Provenance, bool)> = vec![(self.clone(), false)];
        while let Some((current, expanded)) = stack.pop() {
            let Some(node) = current.node.as_ref() else {
                continue;
            };
            if expanded {
                order.push(current.clone());
                continue;
            }
            if !visited.insert(node.id) {
                continue;
            }
            let tail = node.tail.clone();
            let channel = node.event.channel_provenance.clone();
            stack.push((current.clone(), true));
            stack.push((tail, false));
            stack.push((channel, false));
        }
        order
    }

    /// All principals mentioned anywhere in the sequence, in order of first
    /// appearance (most recent first), without duplicates.
    ///
    /// This is the basis of the auditing example of the paper: the
    /// principals that "were involved" with a value.
    pub fn principals_involved(&self) -> Vec<Principal> {
        let mut out: Vec<Principal> = Vec::new();
        self.collect_principals(&mut out);
        out
    }

    fn collect_principals(&self, out: &mut Vec<Principal>) {
        for ev in self.iter() {
            if !out.contains(&ev.principal) {
                out.push(ev.principal.clone());
            }
            ev.channel_provenance.collect_principals(out);
        }
    }

    /// `true` if the most recent event is an output by `principal`.
    ///
    /// Corresponds to the "immediate sender" authentication check of the
    /// paper's first example.
    pub fn last_sent_by(&self, principal: &Principal) -> bool {
        matches!(self.head(), Some(ev) if ev.is_output() && &ev.principal == principal)
    }

    /// `true` if the *oldest* top-level event is an output by `principal`,
    /// i.e. the value originated at `principal`.
    ///
    /// Corresponds to the "original sender" authentication check of the
    /// paper's first example.
    pub fn originated_at(&self, principal: &Principal) -> bool {
        matches!(self.iter().last(), Some(ev) if ev.is_output() && &ev.principal == principal)
    }
}

impl PartialEq for Provenance {
    fn eq(&self, other: &Self) -> bool {
        self.id() == other.id()
    }
}

impl Eq for Provenance {}

impl std::hash::Hash for Provenance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id().hash(state);
    }
}

impl Serialize for Provenance {}
impl Deserialize for Provenance {}

impl Default for Provenance {
    fn default() -> Self {
        Provenance::empty()
    }
}

impl FromIterator<Event> for Provenance {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Provenance::from_events(iter.into_iter().collect::<Vec<_>>())
    }
}

impl<'a> IntoIterator for &'a Provenance {
    type Item = &'a Event;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the top-level events of a [`Provenance`], most recent first.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    current: &'a Provenance,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Event;

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.current.node.as_ref()?;
        self.current = &node.tail;
        Some(&node.event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.current.len(), Some(self.current.len()))
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

impl fmt::Debug for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        let mut first = true;
        for ev in self.iter() {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            write!(f, "{}", ev)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Principal {
        Principal::new("a")
    }
    fn b() -> Principal {
        Principal::new("b")
    }

    #[test]
    fn empty_has_no_events() {
        let e = Provenance::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.head(), None);
        assert_eq!(e.tail(), None);
        assert_eq!(e.to_string(), "ε");
        assert_eq!(e.depth(), 0);
        assert_eq!(e.total_size(), 0);
        assert_eq!(e.id(), ProvId::EMPTY);
        assert_eq!(e.dag_size(), 0);
    }

    #[test]
    fn prepend_puts_most_recent_first() {
        let k = Provenance::empty()
            .prepend(Event::output(a(), Provenance::empty()))
            .prepend(Event::input(b(), Provenance::empty()));
        let events = k.to_vec();
        assert_eq!(events.len(), 2);
        assert!(events[0].is_input());
        assert_eq!(events[0].principal, b());
        assert!(events[1].is_output());
        assert_eq!(events[1].principal, a());
    }

    #[test]
    fn from_events_preserves_order() {
        let e1 = Event::output(a(), Provenance::empty());
        let e2 = Event::input(b(), Provenance::empty());
        let k = Provenance::from_events(vec![e1.clone(), e2.clone()]);
        assert_eq!(k.to_vec(), vec![e1, e2]);
    }

    #[test]
    fn concat_orders_left_before_right() {
        let left = Provenance::single(Event::output(a(), Provenance::empty()));
        let right = Provenance::single(Event::input(b(), Provenance::empty()));
        let joined = left.concat(&right);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined.to_vec()[0], left.to_vec()[0]);
        assert_eq!(joined.to_vec()[1], right.to_vec()[0]);
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let k = Provenance::single(Event::output(a(), Provenance::empty()));
        assert_eq!(k.concat(&Provenance::empty()), k);
        assert_eq!(Provenance::empty().concat(&k), k);
    }

    #[test]
    fn concat_preserves_structural_sharing() {
        // Build a long right-hand side and a moderate left-hand side; the
        // concatenation must share the *entire* right-hand side (same
        // interned node, not a copy), and the result must be the same node
        // as prepending the left events one by one.
        let right = Provenance::from_events(
            (0..64)
                .map(|i| Event::output(Principal::new(format!("r{}", i)), Provenance::empty()))
                .collect::<Vec<_>>(),
        );
        let left = Provenance::from_events(
            (0..16)
                .map(|i| Event::input(Principal::new(format!("l{}", i)), Provenance::empty()))
                .collect::<Vec<_>>(),
        );
        let joined = left.concat(&right);
        assert_eq!(joined.len(), 80);
        // Walk past the left part: what remains must be `right` itself.
        let mut suffix = &joined;
        for _ in 0..left.len() {
            suffix = suffix.tail().unwrap();
        }
        assert_eq!(suffix.id(), right.id(), "tail is shared, not rebuilt");
        // And concat agrees node-for-node with the fold over prepend.
        let mut expected = right.clone();
        for ev in left.to_vec().into_iter().rev() {
            expected = expected.prepend(ev);
        }
        assert_eq!(joined.id(), expected.id());
    }

    #[test]
    fn display_matches_paper_notation() {
        let km = Provenance::single(Event::output(a(), Provenance::empty()));
        let k = Provenance::single(Event::input(b(), km));
        assert_eq!(k.to_string(), "b?[a!ε]");
    }

    #[test]
    fn total_size_counts_nested_events() {
        let inner = Provenance::single(Event::output(a(), Provenance::empty()));
        let outer = Provenance::single(Event::input(b(), inner.clone())).prepend(Event::output(
            a(),
            Provenance::single(Event::input(b(), inner)),
        ));
        // outer has two top-level events; first has 2 nested (b? + a!), second has 1.
        assert_eq!(outer.total_size(), 2 + 1 + 2);
        assert_eq!(outer.depth(), 3);
    }

    #[test]
    fn principals_involved_deduplicates_in_order() {
        let km = Provenance::single(Event::output(b(), Provenance::empty()));
        let k = Provenance::from_events(vec![
            Event::input(a(), km),
            Event::output(a(), Provenance::empty()),
            Event::output(b(), Provenance::empty()),
        ]);
        assert_eq!(k.principals_involved(), vec![a(), b()]);
    }

    #[test]
    fn authentication_helpers() {
        // κ = c! ; b? ; d!   (most recent first)
        let k = Provenance::from_events(vec![
            Event::output(Principal::new("c"), Provenance::empty()),
            Event::input(b(), Provenance::empty()),
            Event::output(Principal::new("d"), Provenance::empty()),
        ]);
        assert!(k.last_sent_by(&Principal::new("c")));
        assert!(!k.last_sent_by(&Principal::new("d")));
        assert!(k.originated_at(&Principal::new("d")));
        assert!(!k.originated_at(&Principal::new("c")));
        assert!(!Provenance::empty().last_sent_by(&a()));
        assert!(!Provenance::empty().originated_at(&a()));
    }

    #[test]
    fn clone_shares_structure() {
        let base = Provenance::from_events(vec![Event::output(a(), Provenance::empty())]);
        let extended = base.prepend(Event::input(b(), Provenance::empty()));
        // The tail of the extended sequence is the same interned node as `base`.
        assert_eq!(extended.tail(), Some(&base));
        assert_eq!(extended.tail().unwrap().id(), base.id());
        assert_eq!(base.len(), 1);
        assert_eq!(extended.len(), 2);
    }

    #[test]
    fn equality_is_structural_and_o1() {
        let k1 = Provenance::from_events(vec![
            Event::output(a(), Provenance::empty()),
            Event::input(b(), Provenance::empty()),
        ]);
        let k2 = Provenance::empty()
            .prepend(Event::input(b(), Provenance::empty()))
            .prepend(Event::output(a(), Provenance::empty()));
        assert_eq!(k1, k2);
        // Hash-consing: structural equality coincides with id equality.
        assert_eq!(k1.id(), k2.id());
        let k3 = k1.prepend(Event::output(a(), Provenance::empty()));
        assert_ne!(k1, k3);
        assert_ne!(k1.id(), k3.id());
    }

    #[test]
    fn interner_deduplicates_across_construction_paths() {
        let build = || {
            Provenance::from_events(vec![
                Event::output(Principal::new("dedup-x"), Provenance::empty()),
                Event::input(Principal::new("dedup-y"), Provenance::empty()),
            ])
        };
        let k1 = build();
        let k2 = build();
        // Hash-consing: both builds resolve to the same interned node, so
        // the handles are pointer-identical, not merely structurally equal.
        assert_eq!(k1.id(), k2.id());
        assert!(interner_stats().interned_nodes >= 2);
    }

    #[test]
    fn dag_size_is_linear_under_exponential_tree_growth() {
        // Channel-chained growth: each event travels on a channel whose
        // provenance is the entire current history.  The tree doubles every
        // step; the DAG grows by one node per step.
        let mut k = Provenance::single(Event::output(a(), Provenance::empty()));
        for _ in 0..20 {
            k = Provenance::single(Event::input(b(), k.clone())).concat(&k);
        }
        assert!(k.total_size() > 1 << 20, "tree is exponential");
        assert!(k.dag_size() <= 64, "DAG stays linear: {}", k.dag_size());
    }

    #[test]
    fn dag_nodes_is_postorder_and_deduplicated() {
        let shared = Provenance::single(Event::output(a(), Provenance::empty()));
        let k = Provenance::single(Event::input(b(), shared.clone()))
            .prepend(Event::output(a(), shared.clone()));
        let nodes = k.dag_nodes();
        // Distinct nodes only.
        let ids: Vec<ProvId> = nodes.iter().map(Provenance::id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "no duplicates");
        // Children precede parents.
        for (i, node) in nodes.iter().enumerate() {
            for child in [
                node.tail().unwrap(),
                &node.head().unwrap().channel_provenance,
            ] {
                if !child.is_empty() {
                    let pos = nodes.iter().position(|n| n.id() == child.id()).unwrap();
                    assert!(pos < i, "child listed before parent");
                }
            }
        }
        // The root is last.
        assert_eq!(nodes.last().unwrap().id(), k.id());
    }

    #[test]
    fn iterator_is_exact_size() {
        let k = Provenance::from_events(vec![
            Event::output(a(), Provenance::empty()),
            Event::input(b(), Provenance::empty()),
        ]);
        let it = k.iter();
        assert_eq!(it.len(), 2);
        assert_eq!(it.count(), 2);
    }
}
