//! A flat, eagerly cloned provenance representation used as an ablation
//! baseline for the interned representation (experiment E9).
//!
//! Functionally equivalent to [`Provenance`] but every
//! prepend copies the whole vector, so cost grows linearly with history
//! length — this is what a naive implementation of the paper would do.
//! Its size queries ([`FlatProvenance::total_size`],
//! [`FlatProvenance::depth`]) recurse over the eagerly expanded vectors,
//! which makes them an *independent* oracle for the cached values the
//! interner stores: the metamorphic test suite checks the two
//! representations agree on every derived quantity.

use super::{Direction, Event, Provenance};
use crate::name::Principal;

/// A flat provenance sequence: a vector of events, most recent first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatProvenance {
    events: Vec<FlatEvent>,
}

/// A flat event mirroring [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatEvent {
    /// Principal that performed the action.
    pub principal: Principal,
    /// Send or receive.
    pub direction: Direction,
    /// Provenance of the channel used.
    pub channel_provenance: FlatProvenance,
}

impl FlatProvenance {
    /// The empty sequence.
    pub fn empty() -> Self {
        FlatProvenance { events: Vec::new() }
    }

    /// Number of top-level events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of events in the logical tree, nested channel
    /// provenances included, computed by recursion over the flat vectors.
    pub fn total_size(&self) -> usize {
        self.events.iter().fold(0usize, |acc, ev| {
            acc.saturating_add(1)
                .saturating_add(ev.channel_provenance.total_size())
        })
    }

    /// Maximum nesting depth of channel provenances (ε has depth 0),
    /// computed by recursion over the flat vectors.
    pub fn depth(&self) -> usize {
        self.events
            .iter()
            .map(|ev| 1 + ev.channel_provenance.depth())
            .max()
            .unwrap_or(0)
    }

    /// Prepends an event by copying the entire sequence.
    pub fn prepend(&self, event: FlatEvent) -> Self {
        let mut events = Vec::with_capacity(self.events.len() + 1);
        events.push(event);
        events.extend(self.events.iter().cloned());
        FlatProvenance { events }
    }

    /// Converts to the canonical interned representation.
    pub fn to_shared(&self) -> Provenance {
        Provenance::from_events(self.events.iter().map(|ev| Event {
            principal: ev.principal.clone(),
            direction: ev.direction,
            channel_provenance: ev.channel_provenance.to_shared(),
        }))
    }

    /// Builds a flat copy of an interned provenance sequence.
    pub fn from_shared(p: &Provenance) -> Self {
        FlatProvenance {
            events: p
                .iter()
                .map(|ev| FlatEvent {
                    principal: ev.principal.clone(),
                    direction: ev.direction,
                    channel_provenance: FlatEvent::flatten(&ev.channel_provenance),
                })
                .collect(),
        }
    }
}

impl FlatEvent {
    fn flatten(p: &Provenance) -> FlatProvenance {
        FlatProvenance::from_shared(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{Event, Provenance};

    #[test]
    fn round_trip_between_representations() {
        let shared = Provenance::from_events(vec![
            Event::input(
                "b",
                Provenance::single(Event::output("x", Provenance::empty())),
            ),
            Event::output("a", Provenance::empty()),
        ]);
        let flat = FlatProvenance::from_shared(&shared);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.to_shared(), shared);
    }

    #[test]
    fn flat_prepend_matches_shared_prepend() {
        let base = Provenance::single(Event::output("a", Provenance::empty()));
        let flat = FlatProvenance::from_shared(&base);
        let ev = Event::input("b", Provenance::empty());
        let flat_ev = FlatEvent {
            principal: ev.principal.clone(),
            direction: ev.direction,
            channel_provenance: FlatProvenance::empty(),
        };
        assert_eq!(flat.prepend(flat_ev).to_shared(), base.prepend(ev));
    }

    #[test]
    fn empty_flat_is_empty_shared() {
        assert_eq!(FlatProvenance::empty().to_shared(), Provenance::empty());
        assert!(FlatProvenance::empty().is_empty());
    }

    #[test]
    fn flat_sizes_agree_with_cached_sizes() {
        let km = Provenance::single(Event::output("c", Provenance::empty()));
        let shared = Provenance::empty()
            .prepend(Event::output("a", km.clone()))
            .prepend(Event::input("b", km));
        let flat = FlatProvenance::from_shared(&shared);
        assert_eq!(flat.total_size(), shared.total_size());
        assert_eq!(flat.depth(), shared.depth());
        assert_eq!(flat.len(), shared.len());
    }
}
