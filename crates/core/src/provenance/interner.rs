//! The global provenance interner (hash-consing table).
//!
//! Every distinct provenance node — a `(event, tail)` pair, where the
//! event's channel provenance and the tail are themselves interned — is
//! created exactly once and assigned a stable [`ProvId`].  All
//! [`Provenance`] construction funnels through the crate-internal
//! `intern` entry point, which gives the calculus three properties the
//! tree representation cannot offer:
//!
//! * **O(1) equality and hashing** — structural equality coincides with id
//!   equality, by induction over the construction;
//! * **O(1) size queries** — `len`, `depth` and `total_size` are computed
//!   once, when the node is interned, from the already-cached values of
//!   its children;
//! * **DAG-sized serialization** — downstream layers (the store codec, the
//!   pattern-match memo, the simulator's sharing metrics) can key work by
//!   `ProvId` and pay per *distinct* node instead of per tree occurrence.
//!
//! The process-global table is an [`InternTable`] **sharded N ways by
//! node-key hash**: concurrent simulator and auditor threads interning
//! unrelated histories take different shard locks and proceed in parallel,
//! while threads interning the *same* history serialize only on the one
//! shard that owns the node — and still agree on its [`ProvId`], because
//! ids are assigned under the owning shard's lock.  Each shard keeps its
//! own occupancy and hit/miss counters ([`ShardStats`]); the facade
//! [`interner_stats`] aggregates them and [`interner_shard_stats`] exposes
//! the per-shard breakdown.  Nodes are never reclaimed; compacting
//! unreferenced nodes remains a ROADMAP open item.

use super::{Direction, Event, Provenance};
use crate::name::Principal;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Stable identifier of an interned provenance node.
///
/// `ProvId::EMPTY` (id 0) is reserved for the empty sequence `ε`; every
/// non-empty sequence gets a positive id in interning order.  Ids are
/// stable for the lifetime of the process and totally ordered, which makes
/// them usable as compact map keys (the pattern engine memoizes match
/// results per `(ProvId, state set)`, the simulator deduplicates delivered
/// nodes per `ProvId`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvId(u32);

impl ProvId {
    /// The id of the empty provenance sequence `ε`.
    pub const EMPTY: ProvId = ProvId(0);

    /// The raw numeric form of the id (0 for `ε`).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// `true` if this is the id of `ε`.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for ProvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "κ#{}", self.0)
    }
}

/// An interned provenance node: one event plus the (interned) rest of the
/// sequence, with the derived quantities cached at construction time.
pub(super) struct Node {
    pub(super) id: ProvId,
    pub(super) event: Event,
    pub(super) tail: Provenance,
    pub(super) len: usize,
    pub(super) depth: usize,
    pub(super) total_size: usize,
}

/// Shared handle onto an interned node.
pub(super) type NodeHandle = Arc<Node>;

/// Hash-consing key: the event's principal and direction plus the ids of
/// the event's channel provenance and of the tail.  Because channel and
/// tail are already interned, comparing ids is exactly structural
/// comparison, and the key is O(1)-sized regardless of history depth.
type Key = (Principal, Direction, u32, u32);

/// Number of shards of the process-global table.  A modest power of two:
/// enough that simulator plus auditor threads rarely collide on a shard
/// lock, small enough that aggregating stats stays trivial.
const DEFAULT_SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    map: HashMap<Key, NodeHandle>,
    hits: u64,
    misses: u64,
}

/// A sharded hash-consing table.
///
/// The process-global interner (reached through [`Provenance::prepend`]
/// and friends) is one instance of this type; independent instances can be
/// created with [`InternTable::with_shards`] for controlled experiments —
/// the E12 sharded-vs-single-lock ablation interns the same workload into
/// a 1-shard and an N-shard table and compares throughput, and the
/// concurrency tests check shard-stat aggregation against serial counts on
/// a fresh table, unpolluted by whatever else the process interned.
///
/// **Caveat for secondary tables:** [`ProvId`]s are assigned per table, so
/// ids (and therefore [`Provenance`] equality, which compares ids) are
/// only meaningful among provenances interned through the *same* table.
/// Never mix handles from a secondary table with handles from the global
/// one; secondary tables are measurement instruments, not a second source
/// of canonical provenance.
pub struct InternTable {
    shards: Box<[Mutex<Shard>]>,
    /// Next id to assign; incremented under the owning shard's lock.
    next_id: AtomicU32,
}

impl fmt::Debug for InternTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InternTable")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl InternTable {
    /// Creates a table with `shards` shards (rounded up to a power of two,
    /// minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        InternTable {
            shards: (0..count).map(|_| Mutex::new(Shard::default())).collect(),
            next_id: AtomicU32::new(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &Key) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        // shard count is a power of two, so the mask keeps the low bits.
        let index = (hasher.finish() as usize) & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Interns the node `event; tail`, returning the canonical handle.
    ///
    /// The event is cloned only when the `(event, tail)` pair has not been
    /// seen before; on a cache hit the existing node is returned and the
    /// caller's borrow is untouched.
    pub(super) fn intern(&self, event: &Event, tail: &Provenance) -> NodeHandle {
        let key: Key = (
            event.principal.clone(),
            event.direction,
            event.channel_provenance.id().as_u32(),
            tail.id().as_u32(),
        );
        // Derived quantities read cached values off the children, outside
        // the lock; saturating arithmetic because the logical tree size
        // grows exponentially under channel-chained histories.
        let channel = &event.channel_provenance;
        let len = tail.len() + 1;
        let depth = tail.depth().max(1 + channel.depth());
        let total_size = 1usize
            .saturating_add(channel.total_size())
            .saturating_add(tail.total_size());
        let mut shard = match self.shard_of(&key).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(existing) = shard.map.get(&key).cloned() {
            shard.hits += 1;
            return existing;
        }
        shard.misses += 1;
        // The id is allocated while the owning shard is locked, so every
        // thread racing to intern this key observes the same winner (and
        // therefore the same id); ids stay unique across shards because
        // the counter is shared.  Allocation is a CAS loop rather than a
        // fetch_add so the counter can never pass u32::MAX: a wrapped
        // counter would hand later interns ids that collide with live
        // nodes (including ProvId::EMPTY), silently conflating distinct
        // histories, whereas saturating here makes every post-overflow
        // intern panic deterministically.
        let mut raw = self.next_id.load(Ordering::Relaxed);
        loop {
            assert!(raw != u32::MAX, "provenance interner overflow");
            match self.next_id.compare_exchange_weak(
                raw,
                raw + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => raw = actual,
            }
        }
        let node = Arc::new(Node {
            id: ProvId(raw),
            event: event.clone(),
            tail: tail.clone(),
            len,
            depth,
            total_size,
        });
        shard.map.insert(key, node.clone());
        node
    }

    /// Interns `event; tail` and wraps the node as a [`Provenance`] handle.
    ///
    /// This is the entry point for secondary (ablation/measurement)
    /// tables; see the type-level caveat about never mixing handles across
    /// tables.
    pub fn intern_on(&self, event: &Event, tail: &Provenance) -> Provenance {
        Provenance::from_node(self.intern(event, tail))
    }

    /// Aggregated occupancy and hit/miss counts across all shards.
    pub fn stats(&self) -> InternerStats {
        let mut out = InternerStats {
            interned_nodes: 0,
            hits: 0,
            misses: 0,
            shards: self.shards.len(),
        };
        for shard in self.shards.iter() {
            let shard = match shard.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            out.interned_nodes += shard.map.len();
            out.hits += shard.hits;
            out.misses += shard.misses;
        }
        out
    }

    /// Per-shard occupancy and hit/miss counts, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let shard = match shard.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                ShardStats {
                    shard: index,
                    entries: shard.map.len(),
                    hits: shard.hits,
                    misses: shard.misses,
                }
            })
            .collect()
    }
}

fn table() -> &'static InternTable {
    static TABLE: OnceLock<InternTable> = OnceLock::new();
    TABLE.get_or_init(|| InternTable::with_shards(DEFAULT_SHARDS))
}

/// Interns the node `event; tail` into the process-global table.
pub(super) fn intern(event: &Event, tail: &Provenance) -> NodeHandle {
    table().intern(event, tail)
}

/// A snapshot of the interner's occupancy, aggregated across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternerStats {
    /// Number of distinct provenance nodes interned so far in this process
    /// (the empty sequence is not counted).
    pub interned_nodes: usize,
    /// Intern calls answered by an existing node.
    pub hits: u64,
    /// Intern calls that created a new node (equals `interned_nodes` for a
    /// fresh table).
    pub misses: u64,
    /// Number of shards the table is split into.
    pub shards: usize,
}

impl InternerStats {
    /// Fraction of intern calls answered by an existing node (0.0 when no
    /// call was made yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Occupancy and hit/miss counts of one shard of an [`InternTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's index within its table.
    pub shard: usize,
    /// Distinct nodes owned by this shard.
    pub entries: usize,
    /// Intern calls this shard answered from its map.
    pub hits: u64,
    /// Intern calls that created a node in this shard.
    pub misses: u64,
}

/// Reads the current aggregated occupancy of the process-global interner.
///
/// The counters are process-global and monotone: they cover every distinct
/// provenance node ever built, across all systems, simulations and tests
/// that ran in this process.
pub fn interner_stats() -> InternerStats {
    table().stats()
}

/// Reads the per-shard breakdown of the process-global interner.
pub fn interner_shard_stats() -> Vec<ShardStats> {
    table().shard_stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_deduplicated() {
        let p = Principal::new("interner-test-a");
        let e = Event::output(p, Provenance::empty());
        let k1 = Provenance::single(e.clone());
        let k2 = Provenance::single(e);
        assert_eq!(k1.id(), k2.id());
        assert!(!k1.id().is_empty());
        assert!(ProvId::EMPTY.is_empty());
        assert_eq!(ProvId::EMPTY.as_u32(), 0);
        assert_eq!(format!("{:?}", ProvId::EMPTY), "κ#0");
    }

    #[test]
    fn stats_grow_with_fresh_nodes() {
        let before = interner_stats().interned_nodes;
        let _k = Provenance::single(Event::output(
            Principal::new("interner-stats-unique-xyzzy"),
            Provenance::empty(),
        ));
        let after = interner_stats().interned_nodes;
        assert!(after > before);
    }

    #[test]
    fn distinct_channels_make_distinct_nodes() {
        let chan = Provenance::single(Event::output(
            Principal::new("interner-chan"),
            Provenance::empty(),
        ));
        let on_empty = Provenance::single(Event::output(
            Principal::new("interner-x"),
            Provenance::empty(),
        ));
        let on_chan = Provenance::single(Event::output(Principal::new("interner-x"), chan));
        assert_ne!(on_empty.id(), on_chan.id());
        assert_ne!(on_empty, on_chan);
    }

    #[test]
    fn shard_stats_aggregate_to_interner_stats() {
        // Exact equality needs a quiescent table, so check it on a fresh
        // secondary one (sibling tests intern into the global table
        // concurrently, and its two snapshots below are not atomic).
        let tbl = InternTable::with_shards(8);
        let mut tail = Provenance::empty();
        for i in 0..32 {
            let event = Event::output(
                Principal::new(format!("agg-{}", i % 5)),
                Provenance::empty(),
            );
            tail = tbl.intern_on(&event, &tail);
        }
        let aggregated = tbl.stats();
        let shards = tbl.shard_stats();
        assert_eq!(shards.len(), aggregated.shards);
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<usize>(),
            aggregated.interned_nodes
        );
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), aggregated.hits);
        assert_eq!(
            shards.iter().map(|s| s.misses).sum::<u64>(),
            aggregated.misses
        );
        // The global facade reports the same shape (values race with
        // sibling tests, so only stable facts are asserted).
        let global = interner_stats();
        assert_eq!(interner_shard_stats().len(), global.shards);
        assert!(global.shards >= 1);
    }

    #[test]
    fn secondary_table_counts_hits_and_misses_exactly() {
        let tbl = InternTable::with_shards(4);
        assert_eq!(tbl.shard_count(), 4);
        let e1 = Event::output(Principal::new("t-a"), Provenance::empty());
        let e2 = Event::input(Principal::new("t-b"), Provenance::empty());
        let k1 = tbl.intern_on(&e1, &Provenance::empty());
        let k2 = tbl.intern_on(&e2, &k1);
        let again = tbl.intern_on(&e2, &k1);
        assert_eq!(k2.id(), again.id());
        let stats = tbl.stats();
        assert_eq!(stats.interned_nodes, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert!(format!("{:?}", tbl).contains("InternTable"));
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(InternTable::with_shards(0).shard_count(), 1);
        assert_eq!(InternTable::with_shards(1).shard_count(), 1);
        assert_eq!(InternTable::with_shards(3).shard_count(), 4);
        assert_eq!(InternTable::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn concurrent_interning_agrees_on_every_id() {
        use std::thread;
        // N threads intern the same overlapping histories (each thread
        // also interns a private branch so shards see mixed traffic); all
        // threads must resolve every shared history to the same ProvId.
        let threads = 8;
        let depth = 64;
        let build_shared = |salt: &str| {
            let mut k = Provenance::empty();
            for i in 0..depth {
                k = k.prepend(Event::output(
                    Principal::new(format!("conc-{}-{}", salt, i % 7)),
                    Provenance::empty(),
                ));
            }
            k
        };
        let ids: Vec<Vec<ProvId>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let shared = build_shared("shared");
                        let chained = build_shared("shared").prepend(Event::input(
                            Principal::new("conc-reader"),
                            build_shared("shared"),
                        ));
                        let private = build_shared(&format!("private-{}", t));
                        vec![shared.id(), chained.id(), private.id()]
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for row in &ids[1..] {
            assert_eq!(row[0], ids[0][0], "shared history ids agree");
            assert_eq!(row[1], ids[0][1], "chained history ids agree");
        }
        // Private branches are all distinct.
        let mut privates: Vec<ProvId> = ids.iter().map(|row| row[2]).collect();
        privates.sort();
        privates.dedup();
        assert_eq!(privates.len(), threads);
    }

    #[test]
    fn concurrent_shard_stats_sum_to_serial_counts() {
        use std::thread;
        // A fresh secondary table sees exactly the traffic this test
        // generates, so the aggregated shard stats must reproduce the
        // serial accounting: every intern call is a hit or a miss, and
        // misses equal the number of distinct nodes.
        let threads = 8usize;
        let per_thread = 256usize;
        let distinct = 32usize;
        let tbl = InternTable::with_shards(8);
        thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut tails: Vec<Provenance> = vec![Provenance::empty()];
                    for i in 0..per_thread {
                        let event = Event::output(
                            Principal::new(format!("sum-{}", i % distinct)),
                            Provenance::empty(),
                        );
                        let tail = tails[i % tails.len()].clone();
                        let node = tbl.intern_on(&event, &tail);
                        if tails.len() < distinct {
                            tails.push(node);
                        }
                    }
                });
            }
        });
        let stats = tbl.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (threads * per_thread) as u64,
            "every intern call is counted exactly once"
        );
        assert_eq!(
            stats.misses as usize, stats.interned_nodes,
            "each distinct node was created exactly once across all threads"
        );
        let shards = tbl.shard_stats();
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<usize>(),
            stats.interned_nodes
        );
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), stats.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
    }
}
