//! The global provenance interner (hash-consing table).
//!
//! Every distinct provenance node — a `(event, tail)` pair, where the
//! event's channel provenance and the tail are themselves interned — is
//! created exactly once and assigned a stable [`ProvId`].  All
//! [`Provenance`] construction funnels through the crate-internal
//! `intern` entry point, which gives the calculus three properties the
//! tree representation cannot offer:
//!
//! * **O(1) equality and hashing** — structural equality coincides with id
//!   equality, by induction over the construction;
//! * **O(1) size queries** — `len`, `depth` and `total_size` are computed
//!   once, when the node is interned, from the already-cached values of
//!   its children;
//! * **DAG-sized serialization** — downstream layers (the store codec, the
//!   pattern-match memo, the simulator's sharing metrics) can key work by
//!   `ProvId` and pay per *distinct* node instead of per tree occurrence.
//!
//! The table is process-global, append-only and guarded by a single
//! [`Mutex`]; nodes are never reclaimed.  Sharding the table and
//! compacting unreferenced nodes are tracked as ROADMAP open items.

use super::{Direction, Event, Provenance};
use crate::name::Principal;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Stable identifier of an interned provenance node.
///
/// `ProvId::EMPTY` (id 0) is reserved for the empty sequence `ε`; every
/// non-empty sequence gets a positive id in interning order.  Ids are
/// stable for the lifetime of the process and totally ordered, which makes
/// them usable as compact map keys (the pattern engine memoizes match
/// results per `(ProvId, state set)`, the simulator deduplicates delivered
/// nodes per `ProvId`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvId(u32);

impl ProvId {
    /// The id of the empty provenance sequence `ε`.
    pub const EMPTY: ProvId = ProvId(0);

    /// The raw numeric form of the id (0 for `ε`).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// `true` if this is the id of `ε`.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for ProvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "κ#{}", self.0)
    }
}

/// An interned provenance node: one event plus the (interned) rest of the
/// sequence, with the derived quantities cached at construction time.
pub(super) struct Node {
    pub(super) id: ProvId,
    pub(super) event: Event,
    pub(super) tail: Provenance,
    pub(super) len: usize,
    pub(super) depth: usize,
    pub(super) total_size: usize,
}

/// Shared handle onto an interned node.
pub(super) type NodeHandle = Arc<Node>;

/// Hash-consing key: the event's principal and direction plus the ids of
/// the event's channel provenance and of the tail.  Because channel and
/// tail are already interned, comparing ids is exactly structural
/// comparison, and the key is O(1)-sized regardless of history depth.
type Key = (Principal, Direction, u32, u32);

#[derive(Default)]
struct Interner {
    map: HashMap<Key, NodeHandle>,
}

fn table() -> &'static Mutex<Interner> {
    static TABLE: OnceLock<Mutex<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Interner::default()))
}

/// Interns the node `event; tail`, returning the canonical handle.
///
/// The event is cloned only when the `(event, tail)` pair has not been
/// seen before; on a cache hit the existing node is returned and the
/// caller's borrow is untouched.
pub(super) fn intern(event: &Event, tail: &Provenance) -> NodeHandle {
    let key: Key = (
        event.principal.clone(),
        event.direction,
        event.channel_provenance.id().as_u32(),
        tail.id().as_u32(),
    );
    // Derived quantities read cached values off the children, outside the
    // lock; saturating arithmetic because the logical tree size grows
    // exponentially under channel-chained histories.
    let channel = &event.channel_provenance;
    let len = tail.len() + 1;
    let depth = tail.depth().max(1 + channel.depth());
    let total_size = 1usize
        .saturating_add(channel.total_size())
        .saturating_add(tail.total_size());
    let mut interner = match table().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(existing) = interner.map.get(&key) {
        return existing.clone();
    }
    let id = ProvId(u32::try_from(interner.map.len() + 1).expect("provenance interner overflow"));
    let node = Arc::new(Node {
        id,
        event: event.clone(),
        tail: tail.clone(),
        len,
        depth,
        total_size,
    });
    interner.map.insert(key, node.clone());
    node
}

/// A snapshot of the interner's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternerStats {
    /// Number of distinct provenance nodes interned so far in this process
    /// (the empty sequence is not counted).
    pub interned_nodes: usize,
}

/// Reads the current interner occupancy.
///
/// The counter is process-global and monotone: it counts every distinct
/// provenance node ever built, across all systems, simulations and tests
/// that ran in this process.
pub fn interner_stats() -> InternerStats {
    let interner = match table().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    InternerStats {
        interned_nodes: interner.map.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_deduplicated() {
        let p = Principal::new("interner-test-a");
        let e = Event::output(p, Provenance::empty());
        let k1 = Provenance::single(e.clone());
        let k2 = Provenance::single(e);
        assert_eq!(k1.id(), k2.id());
        assert!(!k1.id().is_empty());
        assert!(ProvId::EMPTY.is_empty());
        assert_eq!(ProvId::EMPTY.as_u32(), 0);
        assert_eq!(format!("{:?}", ProvId::EMPTY), "κ#0");
    }

    #[test]
    fn stats_grow_with_fresh_nodes() {
        let before = interner_stats().interned_nodes;
        let _k = Provenance::single(Event::output(
            Principal::new("interner-stats-unique-xyzzy"),
            Provenance::empty(),
        ));
        let after = interner_stats().interned_nodes;
        assert!(after > before);
    }

    #[test]
    fn distinct_channels_make_distinct_nodes() {
        let chan = Provenance::single(Event::output(
            Principal::new("interner-chan"),
            Provenance::empty(),
        ));
        let on_empty = Provenance::single(Event::output(
            Principal::new("interner-x"),
            Provenance::empty(),
        ));
        let on_chan = Provenance::single(Event::output(Principal::new("interner-x"), chan));
        assert_ne!(on_empty.id(), on_chan.id());
        assert_ne!(on_empty, on_chan);
    }
}
