//! System syntax (Table 1 of the paper).
//!
//! A system is a flat composition of *located processes* `a[P]`, *messages
//! in flight* `n⟨⟨ṽ⟩⟩`, restrictions and parallel compositions.  Systems are
//! the unit on which the provenance-tracking reduction relation operates.

use crate::name::{Channel, Principal, Variable};
use crate::process::Process;
use crate::value::{AnnotatedValue, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A message in flight: a tuple of annotated values addressed to a channel.
///
/// In the paper a message `m⟨⟨v:κ⟩⟩` is produced by rule R-Send and consumed
/// by rule R-Recv; it models an asynchronous datagram sitting in the
/// network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The destination channel.
    pub channel: Channel,
    /// The annotated values carried by the message.
    pub payload: Vec<AnnotatedValue>,
}

impl Message {
    /// Creates a message carrying a single value.
    pub fn new(channel: impl Into<Channel>, value: AnnotatedValue) -> Self {
        Message {
            channel: channel.into(),
            payload: vec![value],
        }
    }

    /// Creates a polyadic message.
    pub fn tuple(channel: impl Into<Channel>, payload: Vec<AnnotatedValue>) -> Self {
        Message {
            channel: channel.into(),
            payload,
        }
    }

    /// Number of values carried.
    pub fn arity(&self) -> usize {
        self.payload.len()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<<", self.channel)?;
        for (i, v) in self.payload.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v)?;
        }
        write!(f, ">>")
    }
}

/// A system of the provenance calculus.
///
/// ```text
/// S ::= a[P]        located process
///     | n⟨⟨w̃⟩⟩       message
///     | (νn)S        restriction
///     | S ‖ T        parallel composition
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum System<P> {
    /// A process running under the authority of a principal.
    Located {
        /// The principal the process runs at.
        principal: Principal,
        /// The process itself.
        process: Process<P>,
    },
    /// A message in flight.
    Message(Message),
    /// Channel restriction `(νn)S`.
    Restriction {
        /// The private channel name.
        name: Channel,
        /// The scope of the restriction.
        body: Box<System<P>>,
    },
    /// Parallel composition of zero or more systems.  The empty composition
    /// is the inert system `0`.
    Parallel(Vec<System<P>>),
}

/// An annotated value occurring in a system, together with the restriction
/// binders that were in scope at its occurrence.
///
/// Used by `piprov-logs` to implement the paper's `values(−)` function,
/// which substitutes the unknown marker `?` for restricted channel names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopedValue {
    /// The annotated value as written in the system.
    pub value: AnnotatedValue,
    /// Restriction binders enclosing the occurrence, outermost first.
    pub binders: Vec<Channel>,
}

impl<P> System<P> {
    /// The inert system.
    pub fn nil() -> Self {
        System::Parallel(Vec::new())
    }

    /// A located process `principal[process]`.
    pub fn located(principal: impl Into<Principal>, process: Process<P>) -> Self {
        System::Located {
            principal: principal.into(),
            process,
        }
    }

    /// A message in flight.
    pub fn message(message: Message) -> Self {
        System::Message(message)
    }

    /// Restriction `(νname)body`.
    pub fn restrict(name: impl Into<Channel>, body: System<P>) -> Self {
        System::Restriction {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// Binary parallel composition `left ‖ right`.
    pub fn par(left: System<P>, right: System<P>) -> Self {
        System::Parallel(vec![left, right])
    }

    /// N-ary parallel composition.
    pub fn par_all(systems: Vec<System<P>>) -> Self {
        System::Parallel(systems)
    }

    /// Number of syntax nodes in the system (including its processes).
    pub fn size(&self) -> usize {
        match self {
            System::Located { process, .. } => 1 + process.size(),
            System::Message(_) => 1,
            System::Restriction { body, .. } => 1 + body.size(),
            System::Parallel(ss) => 1 + ss.iter().map(System::size).sum::<usize>(),
        }
    }

    /// `true` if no located process can ever act and no message is in
    /// flight.
    pub fn is_inert(&self) -> bool {
        match self {
            System::Located { process, .. } => process.is_inert(),
            System::Message(_) => false,
            System::Restriction { body, .. } => body.is_inert(),
            System::Parallel(ss) => ss.iter().all(System::is_inert),
        }
    }

    /// The free variables of the system.  Reduction is only defined on
    /// *closed* systems, i.e. those with no free variables.
    pub fn free_variables(&self) -> BTreeSet<Variable> {
        match self {
            System::Located { process, .. } => process.free_variables(),
            System::Message(_) => BTreeSet::new(),
            System::Restriction { body, .. } => body.free_variables(),
            System::Parallel(ss) => ss.iter().flat_map(System::free_variables).collect(),
        }
    }

    /// `true` when the system has no free variables.
    pub fn is_closed(&self) -> bool {
        self.free_variables().is_empty()
    }

    /// The free channel names of the system.
    pub fn free_channels(&self) -> BTreeSet<Channel> {
        fn value_fc(av: &AnnotatedValue, bound: &BTreeSet<Channel>, out: &mut BTreeSet<Channel>) {
            if let Value::Channel(c) = &av.value {
                if !bound.contains(c) {
                    out.insert(c.clone());
                }
            }
        }
        fn go<P>(s: &System<P>, bound: &mut BTreeSet<Channel>, out: &mut BTreeSet<Channel>) {
            match s {
                System::Located { process, .. } => {
                    // A process's free channels are computed without knowledge
                    // of the enclosing system-level binders, so filter here.
                    for c in process.free_channels() {
                        if !bound.contains(&c) {
                            out.insert(c);
                        }
                    }
                }
                System::Message(m) => {
                    if !bound.contains(&m.channel) {
                        out.insert(m.channel.clone());
                    }
                    for v in &m.payload {
                        value_fc(v, bound, out);
                    }
                }
                System::Restriction { name, body } => {
                    let fresh = bound.insert(name.clone());
                    go(body, bound, out);
                    if fresh {
                        bound.remove(name);
                    }
                }
                System::Parallel(ss) => {
                    for t in ss {
                        go(t, bound, out);
                    }
                }
            }
        }
        let mut bound = BTreeSet::new();
        let mut out = BTreeSet::new();
        go(self, &mut bound, &mut out);
        out
    }

    /// All principals hosting a located process somewhere in the system.
    pub fn principals(&self) -> BTreeSet<Principal> {
        match self {
            System::Located { principal, .. } => [principal.clone()].into_iter().collect(),
            System::Message(_) => BTreeSet::new(),
            System::Restriction { body, .. } => body.principals(),
            System::Parallel(ss) => ss.iter().flat_map(System::principals).collect(),
        }
    }

    /// Number of messages currently in flight.
    pub fn message_count(&self) -> usize {
        match self {
            System::Located { .. } => 0,
            System::Message(_) => 1,
            System::Restriction { body, .. } => body.message_count(),
            System::Parallel(ss) => ss.iter().map(System::message_count).sum(),
        }
    }

    /// Collects every annotated value occurring in the system (in messages
    /// and in located processes), together with the restriction binders in
    /// scope at each occurrence.
    ///
    /// This is the raw material for the paper's `values(−)` function: the
    /// logs crate replaces channels bound by the collected binders with the
    /// unknown marker `?`.
    pub fn collect_annotated_values(&self) -> Vec<ScopedValue> {
        fn from_process<P>(p: &Process<P>, binders: &mut Vec<Channel>, out: &mut Vec<ScopedValue>) {
            let push_ident = |w: &crate::value::Identifier,
                              binders: &Vec<Channel>,
                              out: &mut Vec<ScopedValue>| {
                if let crate::value::Identifier::Value(av) = w {
                    out.push(ScopedValue {
                        value: av.clone(),
                        binders: binders.clone(),
                    });
                }
            };
            match p {
                Process::Output { channel, payload } => {
                    push_ident(channel, binders, out);
                    for w in payload {
                        push_ident(w, binders, out);
                    }
                }
                Process::InputSum { channel, branches } => {
                    push_ident(channel, binders, out);
                    for b in branches {
                        from_process(&b.continuation, binders, out);
                    }
                }
                Process::Match {
                    lhs,
                    rhs,
                    then_branch,
                    else_branch,
                } => {
                    push_ident(lhs, binders, out);
                    push_ident(rhs, binders, out);
                    from_process(then_branch, binders, out);
                    from_process(else_branch, binders, out);
                }
                Process::Restriction { name, body } => {
                    binders.push(name.clone());
                    from_process(body, binders, out);
                    binders.pop();
                }
                Process::Parallel(ps) => {
                    for q in ps {
                        from_process(q, binders, out);
                    }
                }
                Process::Replicate(body) => from_process(body, binders, out),
                Process::Nil => {}
            }
        }
        fn go<P>(s: &System<P>, binders: &mut Vec<Channel>, out: &mut Vec<ScopedValue>) {
            match s {
                System::Located { process, .. } => from_process(process, binders, out),
                System::Message(m) => {
                    for v in &m.payload {
                        out.push(ScopedValue {
                            value: v.clone(),
                            binders: binders.clone(),
                        });
                    }
                }
                System::Restriction { name, body } => {
                    binders.push(name.clone());
                    go(body, binders, out);
                    binders.pop();
                }
                System::Parallel(ss) => {
                    for t in ss {
                        go(t, binders, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        let mut binders = Vec::new();
        go(self, &mut binders, &mut out);
        out
    }

    /// Applies `f` to every pattern in the system.
    pub fn map_patterns<Q>(&self, f: &impl Fn(&P) -> Q) -> System<Q>
    where
        P: Clone,
    {
        match self {
            System::Located { principal, process } => System::Located {
                principal: principal.clone(),
                process: process.map_patterns(f),
            },
            System::Message(m) => System::Message(m.clone()),
            System::Restriction { name, body } => System::Restriction {
                name: name.clone(),
                body: Box::new(body.map_patterns(f)),
            },
            System::Parallel(ss) => {
                System::Parallel(ss.iter().map(|t| t.map_patterns(f)).collect())
            }
        }
    }
}

impl<P: fmt::Display> fmt::Display for System<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            System::Located { principal, process } => write!(f, "{}[{}]", principal, process),
            System::Message(m) => write!(f, "{}", m),
            System::Restriction { name, body } => write!(f, "(new {})({})", name, body),
            System::Parallel(ss) => {
                if ss.is_empty() {
                    return write!(f, "0");
                }
                for (i, t) in ss.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    match t {
                        System::Parallel(_) => write!(f, "({})", t)?,
                        _ => write!(f, "{}", t)?,
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AnyPattern;
    use crate::value::Identifier;

    type S = System<AnyPattern>;

    fn out_proc(chan: &str, val: &str) -> Process<AnyPattern> {
        Process::output(Identifier::channel(chan), Identifier::channel(val))
    }

    #[test]
    fn nil_system_is_inert_and_closed() {
        let s: S = System::nil();
        assert!(s.is_inert());
        assert!(s.is_closed());
        assert_eq!(s.message_count(), 0);
        assert_eq!(s.to_string(), "0");
    }

    #[test]
    fn located_process_display() {
        let s: S = System::located("a", out_proc("m", "v"));
        assert_eq!(s.to_string(), "a[m:ε<v:ε>]");
        assert_eq!(s.principals(), [Principal::new("a")].into_iter().collect());
    }

    #[test]
    fn message_display_and_count() {
        let s: S = System::par(
            System::message(Message::new("m", AnnotatedValue::channel("v"))),
            System::located("a", Process::nil()),
        );
        assert_eq!(s.message_count(), 1);
        assert!(!s.is_inert(), "a pending message keeps the system live");
        assert_eq!(s.to_string(), "m<<v:ε>> || a[0]");
    }

    #[test]
    fn restriction_hides_channel() {
        let s: S = System::restrict("n", System::located("a", out_proc("n", "v")));
        let free = s.free_channels();
        assert!(!free.contains(&Channel::new("n")));
        assert!(free.contains(&Channel::new("v")));
    }

    #[test]
    fn free_variables_come_from_processes() {
        let p = Process::output(Identifier::variable("x"), Identifier::channel("v"));
        let s: S = System::located("a", p);
        assert!(!s.is_closed());
        assert_eq!(
            s.free_variables(),
            [Variable::new("x")].into_iter().collect()
        );
    }

    #[test]
    fn collect_annotated_values_tracks_binders() {
        let inner = System::located("a", out_proc("n", "v"));
        let s: S = System::restrict("n", inner);
        let values = s.collect_annotated_values();
        assert_eq!(values.len(), 2);
        for sv in &values {
            assert_eq!(sv.binders, vec![Channel::new("n")]);
        }
    }

    #[test]
    fn collect_annotated_values_from_messages() {
        let s: S = System::message(Message::tuple(
            "m",
            vec![AnnotatedValue::channel("v"), AnnotatedValue::principal("a")],
        ));
        let values = s.collect_annotated_values();
        assert_eq!(values.len(), 2);
        assert!(values.iter().all(|sv| sv.binders.is_empty()));
    }

    #[test]
    fn size_accumulates() {
        let s: S = System::par(
            System::located("a", out_proc("m", "v")),
            System::message(Message::new("m", AnnotatedValue::channel("v"))),
        );
        // par(1) + located(1)+output(1) + message(1)
        assert_eq!(s.size(), 4);
    }

    #[test]
    fn map_patterns_preserves_structure() {
        let s: S = System::located(
            "a",
            Process::input(Identifier::channel("m"), AnyPattern, "x", Process::nil()),
        );
        let t: System<u8> = s.map_patterns(&|_| 3u8);
        assert_eq!(t.principals(), s.principals());
        assert_eq!(t.size(), s.size());
    }
}
