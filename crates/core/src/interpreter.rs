//! An executor for running provenance-calculus systems to completion.
//!
//! [`successors`](crate::reduction::successors) is convenient for exhaustive
//! exploration but renormalizes the system on every step.  The [`Executor`]
//! keeps a [`Configuration`] alive across steps, chooses among enabled
//! redexes according to a [`SchedulerPolicy`], and records the trace of
//! [`StepEvent`]s — the raw material for the global log of monitored
//! systems and for the runtime simulator.

use crate::configuration::Configuration;
use crate::pattern::PatternLanguage;
use crate::reduction::{apply_redex, enumerate_redexes, Redex, ReductionError, StepEvent};
use crate::system::System;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How the executor resolves non-determinism among enabled redexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Always pick the first enabled redex (deterministic, depth-first-ish).
    #[default]
    FirstEnabled,
    /// Cycle through threads in round-robin order.
    RoundRobin,
    /// Pick uniformly at random with the given seed (deterministic given the
    /// seed, so runs are reproducible).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerPolicy::FirstEnabled => write!(f, "first-enabled"),
            SchedulerPolicy::RoundRobin => write!(f, "round-robin"),
            SchedulerPolicy::Random { seed } => write!(f, "random(seed={})", seed),
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No redex was enabled: the system is stuck or terminated.
    Quiescent,
    /// The step limit was reached before quiescence.
    StepLimit,
}

/// Summary of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of reduction steps performed.
    pub steps: usize,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// Statistics about an executor's activity, used by the overhead
/// experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Total reduction steps performed.
    pub steps: usize,
    /// Send steps.
    pub sends: usize,
    /// Receive steps.
    pub receives: usize,
    /// Match (if) steps.
    pub matches: usize,
    /// Sum over all receive steps of the total provenance size of the
    /// received values (a proxy for provenance-tracking work).
    pub provenance_work: usize,
}

/// A stepwise interpreter for the provenance calculus.
#[derive(Debug, Clone)]
pub struct Executor<P, L> {
    configuration: Configuration<P>,
    matcher: L,
    policy: SchedulerPolicy,
    rng: StdRng,
    round_robin_cursor: usize,
    trace: Vec<StepEvent>,
    record_trace: bool,
    stats: ExecutorStats,
}

impl<P, L> Executor<P, L>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    /// Creates an executor for `system` using `matcher` for pattern
    /// satisfaction and the default (first-enabled) scheduler.
    pub fn new(system: &System<P>, matcher: L) -> Self {
        Executor {
            configuration: Configuration::from_system(system),
            matcher,
            policy: SchedulerPolicy::FirstEnabled,
            rng: StdRng::seed_from_u64(0),
            round_robin_cursor: 0,
            trace: Vec::new(),
            record_trace: true,
            stats: ExecutorStats::default(),
        }
    }

    /// Creates an executor starting from an existing configuration.
    pub fn from_configuration(configuration: Configuration<P>, matcher: L) -> Self {
        Executor {
            configuration,
            matcher,
            policy: SchedulerPolicy::FirstEnabled,
            rng: StdRng::seed_from_u64(0),
            round_robin_cursor: 0,
            trace: Vec::new(),
            record_trace: true,
            stats: ExecutorStats::default(),
        }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulerPolicy) -> Self {
        if let SchedulerPolicy::Random { seed } = policy {
            self.rng = StdRng::seed_from_u64(seed);
        }
        self.policy = policy;
        self
    }

    /// Disables trace recording (saves memory on very long runs; statistics
    /// are still collected).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// The current configuration.
    pub fn configuration(&self) -> &Configuration<P> {
        &self.configuration
    }

    /// The matcher in use.
    pub fn matcher(&self) -> &L {
        &self.matcher
    }

    /// The trace of events so far (empty if tracing was disabled).
    pub fn trace(&self) -> &[StepEvent] {
        &self.trace
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &ExecutorStats {
        &self.stats
    }

    /// The redexes currently enabled.
    pub fn enabled(&self) -> Vec<Redex> {
        enumerate_redexes(&self.configuration, &self.matcher)
    }

    /// Performs one reduction step, if any is enabled.
    ///
    /// # Errors
    ///
    /// Propagates [`ReductionError`]s from applying the chosen redex; this
    /// indicates a malformed system (e.g. an open term or a send on a
    /// principal name) rather than normal termination.
    pub fn step(&mut self) -> Result<Option<StepEvent>, ReductionError> {
        let redexes = self.enabled();
        if redexes.is_empty() {
            return Ok(None);
        }
        let chosen = self.choose(&redexes);
        let (next, event) = apply_redex(&self.configuration, &chosen, &self.matcher)?;
        self.configuration = next;
        self.note(&event);
        if self.record_trace {
            self.trace.push(event.clone());
        }
        Ok(Some(event))
    }

    /// Runs until quiescence or until `max_steps` steps have been taken.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ReductionError`] encountered.
    pub fn run(&mut self, max_steps: usize) -> Result<RunOutcome, ReductionError> {
        let mut steps = 0;
        while steps < max_steps {
            match self.step()? {
                Some(_) => steps += 1,
                None => {
                    return Ok(RunOutcome {
                        steps,
                        reason: StopReason::Quiescent,
                    })
                }
            }
        }
        Ok(RunOutcome {
            steps,
            reason: StopReason::StepLimit,
        })
    }

    /// Consumes the executor, returning the final configuration and trace.
    pub fn into_parts(self) -> (Configuration<P>, Vec<StepEvent>, ExecutorStats) {
        (self.configuration, self.trace, self.stats)
    }

    fn choose(&mut self, redexes: &[Redex]) -> Redex {
        match self.policy {
            SchedulerPolicy::FirstEnabled => redexes[0],
            SchedulerPolicy::RoundRobin => {
                let picked = redexes[self.round_robin_cursor % redexes.len()];
                self.round_robin_cursor = self.round_robin_cursor.wrapping_add(1);
                picked
            }
            SchedulerPolicy::Random { .. } => {
                let idx = self.rng.gen_range(0..redexes.len());
                redexes[idx]
            }
        }
    }

    fn note(&mut self, event: &StepEvent) {
        self.stats.steps += 1;
        match &event.kind {
            crate::reduction::StepKind::Send { .. } => self.stats.sends += 1,
            crate::reduction::StepKind::Receive { .. } => self.stats.receives += 1,
            crate::reduction::StepKind::IfTrue { .. }
            | crate::reduction::StepKind::IfFalse { .. } => self.stats.matches += 1,
        }
        if let crate::reduction::StepKind::Receive { .. } = &event.kind {
            // Approximate the provenance work by the size of provenance on
            // all in-flight values (they were just updated).  total_size is
            // an O(1) cached read off the interned node, so this accounting
            // stays cheap even when annotations grow exponentially — and
            // saturates rather than overflowing when they do.
            self.stats.provenance_work = self
                .configuration
                .messages
                .iter()
                .flat_map(|m| m.payload.iter())
                .fold(self.stats.provenance_work, |acc, v| {
                    acc.saturating_add(v.provenance.total_size())
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{AnyPattern, TrivialPatterns};
    use crate::process::Process;
    use crate::reduction::StepKind;
    use crate::value::Identifier;

    type S = System<AnyPattern>;

    fn relay_chain(n: usize) -> S {
        // a sends v on c0; relay i forwards from c_i to c_{i+1}; sink reads c_n.
        let mut systems = vec![System::located(
            "src",
            Process::output(Identifier::channel("c0"), Identifier::channel("v")),
        )];
        for i in 0..n {
            let from = format!("c{}", i);
            let to = format!("c{}", i + 1);
            systems.push(System::located(
                format!("relay{}", i).as_str(),
                Process::input(
                    Identifier::channel(from.as_str()),
                    AnyPattern,
                    "x",
                    Process::output(Identifier::channel(to.as_str()), Identifier::variable("x")),
                ),
            ));
        }
        systems.push(System::located(
            "sink",
            Process::input(
                Identifier::channel(format!("c{}", n).as_str()),
                AnyPattern,
                "x",
                Process::nil(),
            ),
        ));
        System::par_all(systems)
    }

    #[test]
    fn run_to_quiescence() {
        let mut exec = Executor::new(&relay_chain(3), TrivialPatterns);
        let outcome = exec.run(1_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // 1 initial send + 3 relays × (recv + send) + 1 final recv = 8 steps.
        assert_eq!(outcome.steps, 8);
        assert!(exec.configuration().is_terminated());
        assert_eq!(exec.stats().sends, 4);
        assert_eq!(exec.stats().receives, 4);
    }

    #[test]
    fn step_limit_is_respected() {
        let mut exec = Executor::new(&relay_chain(3), TrivialPatterns);
        let outcome = exec.run(2).unwrap();
        assert_eq!(outcome.reason, StopReason::StepLimit);
        assert_eq!(outcome.steps, 2);
    }

    #[test]
    fn trace_records_every_step() {
        let mut exec = Executor::new(&relay_chain(2), TrivialPatterns);
        let outcome = exec.run(1_000).unwrap();
        assert_eq!(exec.trace().len(), outcome.steps);
        assert!(matches!(exec.trace()[0].kind, StepKind::Send { .. }));
    }

    #[test]
    fn without_trace_still_counts() {
        let mut exec = Executor::new(&relay_chain(2), TrivialPatterns).without_trace();
        let outcome = exec.run(1_000).unwrap();
        assert!(exec.trace().is_empty());
        assert_eq!(exec.stats().steps, outcome.steps);
    }

    #[test]
    fn all_policies_terminate_the_relay() {
        for policy in [
            SchedulerPolicy::FirstEnabled,
            SchedulerPolicy::RoundRobin,
            SchedulerPolicy::Random { seed: 42 },
        ] {
            let mut exec = Executor::new(&relay_chain(4), TrivialPatterns).with_policy(policy);
            let outcome = exec.run(10_000).unwrap();
            assert_eq!(outcome.reason, StopReason::Quiescent, "policy {}", policy);
            assert_eq!(outcome.steps, 10, "policy {}", policy);
        }
    }

    #[test]
    fn random_policy_is_reproducible() {
        let run = |seed| {
            let mut exec = Executor::new(&relay_chain(5), TrivialPatterns)
                .with_policy(SchedulerPolicy::Random { seed });
            exec.run(10_000).unwrap();
            exec.trace().to_vec()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn final_provenance_grows_with_chain_length() {
        // After n relays the value's provenance has 2n+2 top-level events:
        // src's send, n × (recv+send), sink's recv.
        for n in [1usize, 3, 5] {
            let mut exec = Executor::new(&relay_chain(n), TrivialPatterns);
            exec.run(10_000).unwrap();
            // The value ends up consumed by the sink; check the trace length instead.
            assert_eq!(exec.trace().len(), 2 * (n + 1));
        }
    }
}
