//! Process syntax (Table 1 of the paper).
//!
//! Processes are parametric in the pattern type `P` so that any pattern
//! language implementing [`crate::pattern::PatternLanguage`] can be plugged
//! in.  The syntax implemented here is the *polyadic* variant used by the
//! paper's photography-competition example: outputs carry a tuple of
//! identifiers and each input branch binds a tuple of variables, one pattern
//! per position.

use crate::name::{Channel, Variable};
use crate::value::{AnnotatedValue, Identifier};
use std::collections::BTreeSet;
use std::fmt;

/// One branch of an input-guarded sum: `(π₁ as x₁, …, πₖ as xₖ).P`.
///
/// All branches of a sum listen on the *same* channel (that restriction is
/// what makes the summation implementable); they differ in their patterns
/// and continuations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBranch<P> {
    /// Pattern and binder for each position of the received tuple.
    pub bindings: Vec<(P, Variable)>,
    /// The continuation run if this branch is selected.
    pub continuation: Process<P>,
}

impl<P> InputBranch<P> {
    /// Creates a monadic branch binding a single variable.
    pub fn monadic(pattern: P, binder: impl Into<Variable>, continuation: Process<P>) -> Self {
        InputBranch {
            bindings: vec![(pattern, binder.into())],
            continuation,
        }
    }

    /// Creates a polyadic branch.
    pub fn polyadic(bindings: Vec<(P, Variable)>, continuation: Process<P>) -> Self {
        InputBranch {
            bindings,
            continuation,
        }
    }

    /// Number of values this branch expects to receive.
    pub fn arity(&self) -> usize {
        self.bindings.len()
    }

    /// The variables bound by this branch.
    pub fn binders(&self) -> impl Iterator<Item = &Variable> {
        self.bindings.iter().map(|(_, x)| x)
    }

    /// The patterns of this branch, in positional order.
    pub fn patterns(&self) -> impl Iterator<Item = &P> {
        self.bindings.iter().map(|(p, _)| p)
    }
}

/// A process of the provenance calculus.
///
/// ```text
/// P ::= w⟨w̃⟩                    output
///     | Σᵢ w(π̃ᵢ as x̃ᵢ).Pᵢ        input-guarded sum (all on the same channel)
///     | if w = w then P else Q   matching
///     | (νn)P                    restriction
///     | P | Q                    parallel composition
///     | *P                       replication
///     | 0                        inaction
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Process<P> {
    /// Asynchronous output `w⟨w₁, …, wₖ⟩`.
    Output {
        /// The channel identifier to send on.
        channel: Identifier,
        /// The tuple of identifiers being sent.
        payload: Vec<Identifier>,
    },
    /// Pattern-restricted input-guarded sum `Σᵢ w(π̃ᵢ as x̃ᵢ).Pᵢ`.
    InputSum {
        /// The channel identifier all branches listen on.
        channel: Identifier,
        /// The branches of the sum.  An empty sum is inert (it is the `0`
        /// of the paper's summation syntax).
        branches: Vec<InputBranch<P>>,
    },
    /// Value matching `if w = w' then P else Q`.  Only the plain values are
    /// compared; their provenance is ignored.
    Match {
        /// Left-hand identifier.
        lhs: Identifier,
        /// Right-hand identifier.
        rhs: Identifier,
        /// Taken when the plain values are equal.
        then_branch: Box<Process<P>>,
        /// Taken when the plain values differ.
        else_branch: Box<Process<P>>,
    },
    /// Channel restriction `(νn)P`.
    Restriction {
        /// The private channel name.
        name: Channel,
        /// The scope of the restriction.
        body: Box<Process<P>>,
    },
    /// Parallel composition of zero or more processes.
    Parallel(Vec<Process<P>>),
    /// Replication `*P`.
    Replicate(Box<Process<P>>),
    /// The inert process `0`.
    Nil,
}

impl<P> Process<P> {
    /// The inert process.
    pub fn nil() -> Self {
        Process::Nil
    }

    /// A monadic output `channel⟨value⟩`.
    pub fn output(channel: impl Into<Identifier>, value: impl Into<Identifier>) -> Self {
        Process::Output {
            channel: channel.into(),
            payload: vec![value.into()],
        }
    }

    /// A polyadic output `channel⟨v₁, …, vₖ⟩`.
    pub fn output_tuple(channel: impl Into<Identifier>, payload: Vec<Identifier>) -> Self {
        Process::Output {
            channel: channel.into(),
            payload,
        }
    }

    /// A single-branch, monadic input `channel(π as x).P`.
    pub fn input(
        channel: impl Into<Identifier>,
        pattern: P,
        binder: impl Into<Variable>,
        continuation: Process<P>,
    ) -> Self {
        Process::InputSum {
            channel: channel.into(),
            branches: vec![InputBranch::monadic(pattern, binder, continuation)],
        }
    }

    /// An input-guarded sum over `branches`, all on `channel`.
    pub fn input_sum(channel: impl Into<Identifier>, branches: Vec<InputBranch<P>>) -> Self {
        Process::InputSum {
            channel: channel.into(),
            branches,
        }
    }

    /// `if lhs = rhs then then_branch else else_branch`.
    pub fn matching(
        lhs: impl Into<Identifier>,
        rhs: impl Into<Identifier>,
        then_branch: Process<P>,
        else_branch: Process<P>,
    ) -> Self {
        Process::Match {
            lhs: lhs.into(),
            rhs: rhs.into(),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        }
    }

    /// Restriction `(νname)body`.
    pub fn restrict(name: impl Into<Channel>, body: Process<P>) -> Self {
        Process::Restriction {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// Binary parallel composition.
    pub fn par(left: Process<P>, right: Process<P>) -> Self {
        Process::Parallel(vec![left, right])
    }

    /// N-ary parallel composition.
    pub fn par_all(procs: Vec<Process<P>>) -> Self {
        Process::Parallel(procs)
    }

    /// Replication `*body`.
    pub fn replicate(body: Process<P>) -> Self {
        Process::Replicate(Box::new(body))
    }

    /// `true` if the process is syntactically inert (it is `0`, an empty
    /// sum, or a parallel composition of inert processes).
    pub fn is_inert(&self) -> bool {
        match self {
            Process::Nil => true,
            Process::InputSum { branches, .. } => branches.is_empty(),
            Process::Parallel(ps) => ps.iter().all(Process::is_inert),
            _ => false,
        }
    }

    /// Number of syntax nodes in the process (a rough size metric used by
    /// generators and benchmarks).
    pub fn size(&self) -> usize {
        match self {
            Process::Output { .. } | Process::Nil => 1,
            Process::InputSum { branches, .. } => {
                1 + branches
                    .iter()
                    .map(|b| b.continuation.size())
                    .sum::<usize>()
            }
            Process::Match {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.size() + else_branch.size(),
            Process::Restriction { body, .. } => 1 + body.size(),
            Process::Parallel(ps) => 1 + ps.iter().map(Process::size).sum::<usize>(),
            Process::Replicate(body) => 1 + body.size(),
        }
    }

    /// The set of free variables of the process.
    ///
    /// Input binders bind their variables in the corresponding continuation;
    /// restriction binds channel *names*, not variables.
    pub fn free_variables(&self) -> BTreeSet<Variable> {
        fn ident_fv(w: &Identifier, out: &mut BTreeSet<Variable>) {
            if let Identifier::Variable(x) = w {
                out.insert(x.clone());
            }
        }
        fn go<P>(p: &Process<P>, out: &mut BTreeSet<Variable>) {
            match p {
                Process::Output { channel, payload } => {
                    ident_fv(channel, out);
                    for w in payload {
                        ident_fv(w, out);
                    }
                }
                Process::InputSum { channel, branches } => {
                    ident_fv(channel, out);
                    for branch in branches {
                        let mut inner = BTreeSet::new();
                        go(&branch.continuation, &mut inner);
                        for x in branch.binders() {
                            inner.remove(x);
                        }
                        out.extend(inner);
                    }
                }
                Process::Match {
                    lhs,
                    rhs,
                    then_branch,
                    else_branch,
                } => {
                    ident_fv(lhs, out);
                    ident_fv(rhs, out);
                    go(then_branch, out);
                    go(else_branch, out);
                }
                Process::Restriction { body, .. } => go(body, out),
                Process::Parallel(ps) => {
                    for q in ps {
                        go(q, out);
                    }
                }
                Process::Replicate(body) => go(body, out),
                Process::Nil => {}
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// The set of free channel names of the process.
    ///
    /// A channel name is free if it occurs (in an identifier position or
    /// inside an annotated value) outside the scope of a restriction binding
    /// it.  Channel names never occur inside provenance sequences, so only
    /// plain values are inspected.
    pub fn free_channels(&self) -> BTreeSet<Channel> {
        fn ident_fc(w: &Identifier, bound: &BTreeSet<Channel>, out: &mut BTreeSet<Channel>) {
            if let Identifier::Value(av) = w {
                value_fc(av, bound, out);
            }
        }
        fn value_fc(av: &AnnotatedValue, bound: &BTreeSet<Channel>, out: &mut BTreeSet<Channel>) {
            if let crate::value::Value::Channel(c) = &av.value {
                if !bound.contains(c) {
                    out.insert(c.clone());
                }
            }
        }
        fn go<P>(p: &Process<P>, bound: &mut BTreeSet<Channel>, out: &mut BTreeSet<Channel>) {
            match p {
                Process::Output { channel, payload } => {
                    ident_fc(channel, bound, out);
                    for w in payload {
                        ident_fc(w, bound, out);
                    }
                }
                Process::InputSum { channel, branches } => {
                    ident_fc(channel, bound, out);
                    for branch in branches {
                        go(&branch.continuation, bound, out);
                    }
                }
                Process::Match {
                    lhs,
                    rhs,
                    then_branch,
                    else_branch,
                } => {
                    ident_fc(lhs, bound, out);
                    ident_fc(rhs, bound, out);
                    go(then_branch, bound, out);
                    go(else_branch, bound, out);
                }
                Process::Restriction { name, body } => {
                    let fresh = bound.insert(name.clone());
                    go(body, bound, out);
                    if fresh {
                        bound.remove(name);
                    }
                }
                Process::Parallel(ps) => {
                    for q in ps {
                        go(q, bound, out);
                    }
                }
                Process::Replicate(body) => go(body, bound, out),
                Process::Nil => {}
            }
        }
        let mut bound = BTreeSet::new();
        let mut out = BTreeSet::new();
        go(self, &mut bound, &mut out);
        out
    }

    /// `true` when the process contains no free variables (reduction is
    /// defined on closed systems only).
    pub fn is_closed(&self) -> bool {
        self.free_variables().is_empty()
    }

    /// Applies `f` to every pattern in the process, producing a process over
    /// a different pattern type.
    pub fn map_patterns<Q>(&self, f: &impl Fn(&P) -> Q) -> Process<Q>
    where
        P: Clone,
    {
        match self {
            Process::Output { channel, payload } => Process::Output {
                channel: channel.clone(),
                payload: payload.clone(),
            },
            Process::InputSum { channel, branches } => Process::InputSum {
                channel: channel.clone(),
                branches: branches
                    .iter()
                    .map(|b| InputBranch {
                        bindings: b.bindings.iter().map(|(p, x)| (f(p), x.clone())).collect(),
                        continuation: b.continuation.map_patterns(f),
                    })
                    .collect(),
            },
            Process::Match {
                lhs,
                rhs,
                then_branch,
                else_branch,
            } => Process::Match {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                then_branch: Box::new(then_branch.map_patterns(f)),
                else_branch: Box::new(else_branch.map_patterns(f)),
            },
            Process::Restriction { name, body } => Process::Restriction {
                name: name.clone(),
                body: Box::new(body.map_patterns(f)),
            },
            Process::Parallel(ps) => {
                Process::Parallel(ps.iter().map(|q| q.map_patterns(f)).collect())
            }
            Process::Replicate(body) => Process::Replicate(Box::new(body.map_patterns(f))),
            Process::Nil => Process::Nil,
        }
    }

    /// Counts the number of output prefixes syntactically present.
    pub fn count_outputs(&self) -> usize {
        match self {
            Process::Output { .. } => 1,
            Process::InputSum { branches, .. } => branches
                .iter()
                .map(|b| b.continuation.count_outputs())
                .sum(),
            Process::Match {
                then_branch,
                else_branch,
                ..
            } => then_branch.count_outputs() + else_branch.count_outputs(),
            Process::Restriction { body, .. } => body.count_outputs(),
            Process::Parallel(ps) => ps.iter().map(Process::count_outputs).sum(),
            Process::Replicate(body) => body.count_outputs(),
            Process::Nil => 0,
        }
    }

    /// Counts the number of input sums syntactically present.
    pub fn count_inputs(&self) -> usize {
        match self {
            Process::Output { .. } | Process::Nil => 0,
            Process::InputSum { branches, .. } => {
                1 + branches
                    .iter()
                    .map(|b| b.continuation.count_inputs())
                    .sum::<usize>()
            }
            Process::Match {
                then_branch,
                else_branch,
                ..
            } => then_branch.count_inputs() + else_branch.count_inputs(),
            Process::Restriction { body, .. } => body.count_inputs(),
            Process::Parallel(ps) => ps.iter().map(Process::count_inputs).sum(),
            Process::Replicate(body) => body.count_inputs(),
        }
    }
}

impl<P: fmt::Display> fmt::Display for Process<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Process::Output { channel, payload } => {
                write!(f, "{}<", channel)?;
                for (i, w) in payload.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", w)?;
                }
                write!(f, ">")
            }
            Process::InputSum { channel, branches } => {
                if branches.is_empty() {
                    return write!(f, "0");
                }
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{}(", channel)?;
                    for (j, (p, x)) in b.bindings.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{} as {}", p, x)?;
                    }
                    write!(f, ").{}", Parens(&b.continuation))?;
                }
                Ok(())
            }
            Process::Match {
                lhs,
                rhs,
                then_branch,
                else_branch,
            } => write!(
                f,
                "if {} = {} then {} else {}",
                lhs,
                rhs,
                Parens(then_branch),
                Parens(else_branch)
            ),
            Process::Restriction { name, body } => write!(f, "(new {}){}", name, Parens(body)),
            Process::Parallel(ps) => {
                if ps.is_empty() {
                    return write!(f, "0");
                }
                for (i, q) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{}", Parens(q))?;
                }
                Ok(())
            }
            Process::Replicate(body) => write!(f, "*{}", Parens(body)),
            Process::Nil => write!(f, "0"),
        }
    }
}

/// Helper that parenthesises compound sub-processes when displayed.
struct Parens<'a, P>(&'a Process<P>);

impl<'a, P: fmt::Display> fmt::Display for Parens<'a, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Process::Nil | Process::Output { .. } | Process::Restriction { .. } => {
                write!(f, "{}", self.0)
            }
            _ => write!(f, "({})", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AnyPattern;

    type P = Process<AnyPattern>;

    #[test]
    fn nil_is_inert_and_closed() {
        let p: P = Process::nil();
        assert!(p.is_inert());
        assert!(p.is_closed());
        assert_eq!(p.size(), 1);
        assert_eq!(p.to_string(), "0");
    }

    #[test]
    fn output_is_not_inert() {
        let p: P = Process::output(Identifier::channel("m"), Identifier::channel("v"));
        assert!(!p.is_inert());
        assert_eq!(p.count_outputs(), 1);
        assert_eq!(p.count_inputs(), 0);
        assert_eq!(p.to_string(), "m:ε<v:ε>");
    }

    #[test]
    fn empty_sum_is_inert() {
        let p: P = Process::input_sum(Identifier::channel("m"), vec![]);
        assert!(p.is_inert());
    }

    #[test]
    fn input_binds_its_variable() {
        let cont: P = Process::output(Identifier::variable("x"), Identifier::channel("v"));
        let p: P = Process::input(Identifier::channel("m"), AnyPattern, "x", cont);
        assert!(p.is_closed(), "x is bound by the input");
        assert_eq!(p.count_inputs(), 1);
        assert_eq!(p.count_outputs(), 1);
    }

    #[test]
    fn free_variable_detected_outside_binder() {
        let p: P = Process::output(Identifier::variable("y"), Identifier::channel("v"));
        assert!(!p.is_closed());
        assert!(p.free_variables().contains(&Variable::new("y")));
    }

    #[test]
    fn binder_does_not_capture_sibling_branch() {
        // m(Any as x).0  +  m(Any as y).x<v>   — x is free in the second branch.
        let b1 = InputBranch::monadic(AnyPattern, "x", Process::nil());
        let b2 = InputBranch::monadic(
            AnyPattern,
            "y",
            Process::output(Identifier::variable("x"), Identifier::channel("v")),
        );
        let p: P = Process::input_sum(Identifier::channel("m"), vec![b1, b2]);
        assert_eq!(
            p.free_variables(),
            [Variable::new("x")].into_iter().collect()
        );
    }

    #[test]
    fn restriction_binds_channel_names() {
        let p: P = Process::restrict(
            "n",
            Process::output(Identifier::channel("n"), Identifier::channel("v")),
        );
        let free = p.free_channels();
        assert!(!free.contains(&Channel::new("n")));
        assert!(free.contains(&Channel::new("v")));
    }

    #[test]
    fn free_channels_sees_through_parallel_and_replication() {
        let p: P = Process::par(
            Process::replicate(Process::output(
                Identifier::channel("a"),
                Identifier::channel("b"),
            )),
            Process::restrict(
                "c",
                Process::output(Identifier::channel("c"), Identifier::channel("d")),
            ),
        );
        let free = p.free_channels();
        assert!(free.contains(&Channel::new("a")));
        assert!(free.contains(&Channel::new("b")));
        assert!(!free.contains(&Channel::new("c")));
        assert!(free.contains(&Channel::new("d")));
    }

    #[test]
    fn map_patterns_changes_only_patterns() {
        let p: P = Process::input(
            Identifier::channel("m"),
            AnyPattern,
            "x",
            Process::input(Identifier::channel("n"), AnyPattern, "y", Process::nil()),
        );
        let q: Process<usize> = p.map_patterns(&|_| 7usize);
        assert_eq!(q.count_inputs(), 2);
        match q {
            Process::InputSum { branches, .. } => {
                assert_eq!(branches[0].bindings[0].0, 7);
            }
            _ => panic!("expected input sum"),
        }
    }

    #[test]
    fn size_counts_nodes() {
        let p: P = Process::par(
            Process::output(Identifier::channel("m"), Identifier::channel("v")),
            Process::matching(
                Identifier::channel("a"),
                Identifier::channel("a"),
                Process::nil(),
                Process::nil(),
            ),
        );
        // par(1) + output(1) + match(1) + nil(1) + nil(1)
        assert_eq!(p.size(), 5);
    }

    #[test]
    fn display_of_sum_and_match() {
        let p: P = Process::input_sum(
            Identifier::channel("m"),
            vec![
                InputBranch::monadic(AnyPattern, "x", Process::nil()),
                InputBranch::monadic(AnyPattern, "y", Process::nil()),
            ],
        );
        assert_eq!(p.to_string(), "m:ε(Any as x).0 + m:ε(Any as y).0");
        let q: P = Process::matching(
            Identifier::channel("a"),
            Identifier::channel("b"),
            Process::nil(),
            Process::nil(),
        );
        assert_eq!(q.to_string(), "if a:ε = b:ε then 0 else 0");
    }
}
