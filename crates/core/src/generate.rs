//! Random generation of well-formed, closed systems.
//!
//! The meta-theory of §3 is universally quantified over reachable systems;
//! the property-based tests and several benchmarks therefore need a supply
//! of random closed systems.  [`SystemGenerator`] produces systems that are
//! closed by construction (every variable occurrence is under a binder for
//! it) and whose channel/principal vocabulary is drawn from a bounded pool,
//! so that communication actually happens during runs.

use crate::name::{Channel, Principal, Variable};
use crate::pattern::AnyPattern;
use crate::process::{InputBranch, Process};
use crate::system::{Message, System};
use crate::value::{AnnotatedValue, Identifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable parameters for random system generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of distinct principals to draw from.
    pub principals: usize,
    /// Number of distinct free channel names to draw from.
    pub channels: usize,
    /// Number of located processes to generate.
    pub locations: usize,
    /// Maximum syntactic depth of each process.
    pub max_depth: usize,
    /// Probability of generating an output at each node.
    pub output_bias: f64,
    /// Probability that a generated process uses a restriction.
    pub restriction_probability: f64,
    /// Probability that a generated process uses replication (kept low to
    /// bound run length).
    pub replication_probability: f64,
    /// Number of initial messages already in flight.
    pub initial_messages: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            principals: 4,
            channels: 4,
            locations: 6,
            max_depth: 4,
            output_bias: 0.45,
            restriction_probability: 0.15,
            replication_probability: 0.05,
            initial_messages: 2,
        }
    }
}

impl GeneratorConfig {
    /// A small configuration suitable for exhaustive state-space
    /// exploration (few locations, shallow processes, no replication).
    pub fn small() -> Self {
        GeneratorConfig {
            principals: 3,
            channels: 3,
            locations: 3,
            max_depth: 3,
            output_bias: 0.5,
            restriction_probability: 0.1,
            replication_probability: 0.0,
            initial_messages: 1,
        }
    }

    /// A larger configuration for throughput benchmarks.
    pub fn large() -> Self {
        GeneratorConfig {
            principals: 16,
            channels: 12,
            locations: 40,
            max_depth: 5,
            output_bias: 0.5,
            restriction_probability: 0.1,
            replication_probability: 0.02,
            initial_messages: 8,
        }
    }
}

/// A deterministic (seeded) generator of random closed systems over the
/// trivial pattern language.
#[derive(Debug, Clone)]
pub struct SystemGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    fresh: u64,
}

impl SystemGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        SystemGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            fresh: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates one random closed system.
    pub fn system(&mut self) -> System<AnyPattern> {
        let mut parts = Vec::new();
        for _ in 0..self.config.locations {
            let principal = self.principal();
            let process = self.process(self.config.max_depth, &mut Vec::new());
            parts.push(System::Located { principal, process });
        }
        for _ in 0..self.config.initial_messages {
            parts.push(System::Message(Message::new(
                self.channel(),
                AnnotatedValue::channel(self.channel()),
            )));
        }
        System::Parallel(parts)
    }

    /// Generates a random process with at most `depth` levels of structure.
    /// `bound` is the list of variables currently in scope, usable as
    /// identifiers.
    pub fn process(&mut self, depth: usize, bound: &mut Vec<Variable>) -> Process<AnyPattern> {
        if depth == 0 {
            return Process::Nil;
        }
        let roll: f64 = self.rng.gen();
        if roll < self.config.output_bias {
            Process::Output {
                channel: self.identifier(bound),
                payload: vec![self.identifier(bound)],
            }
        } else if roll < self.config.output_bias + 0.30 {
            let var = self.variable();
            bound.push(var.clone());
            let continuation = self.process(depth - 1, bound);
            bound.pop();
            Process::InputSum {
                channel: self.identifier(bound),
                branches: vec![InputBranch::monadic(AnyPattern, var, continuation)],
            }
        } else if roll < self.config.output_bias + 0.40 {
            Process::Match {
                lhs: self.identifier(bound),
                rhs: self.identifier(bound),
                then_branch: Box::new(self.process(depth - 1, bound)),
                else_branch: Box::new(self.process(depth - 1, bound)),
            }
        } else if roll < self.config.output_bias + 0.50 {
            Process::Parallel(vec![
                self.process(depth - 1, bound),
                self.process(depth - 1, bound),
            ])
        } else if roll < self.config.output_bias + 0.50 + self.config.restriction_probability {
            Process::Restriction {
                name: self.fresh_channel(),
                body: Box::new(self.process(depth - 1, bound)),
            }
        } else if roll
            < self.config.output_bias
                + 0.50
                + self.config.restriction_probability
                + self.config.replication_probability
        {
            // Keep replication bodies tiny so runs stay bounded in practice.
            Process::Replicate(Box::new(Process::InputSum {
                channel: self.identifier(&[]),
                branches: vec![InputBranch::monadic(
                    AnyPattern,
                    self.variable(),
                    Process::Nil,
                )],
            }))
        } else {
            Process::Nil
        }
    }

    fn identifier(&mut self, bound: &[Variable]) -> Identifier {
        // Only channels (or variables that will be substituted by channels)
        // are generated, so that every output has a well-formed subject even
        // after substitution.  Principals still occur as located identities.
        if !bound.is_empty() && self.rng.gen_bool(0.3) {
            let idx = self.rng.gen_range(0..bound.len());
            Identifier::Variable(bound[idx].clone())
        } else {
            Identifier::channel(self.channel())
        }
    }

    fn principal(&mut self) -> Principal {
        let idx = self.rng.gen_range(0..self.config.principals);
        Principal::new(format!("p{}", idx))
    }

    fn channel(&mut self) -> Channel {
        let idx = self.rng.gen_range(0..self.config.channels);
        Channel::new(format!("ch{}", idx))
    }

    fn variable(&mut self) -> Variable {
        self.fresh += 1;
        Variable::new(format!("x{}", self.fresh))
    }

    fn fresh_channel(&mut self) -> Channel {
        self.fresh += 1;
        Channel::new(format!("priv{}", self.fresh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::Executor;
    use crate::pattern::TrivialPatterns;

    #[test]
    fn generated_systems_are_closed() {
        let mut gen = SystemGenerator::new(GeneratorConfig::default(), 1);
        for _ in 0..50 {
            let s = gen.system();
            assert!(s.is_closed(), "generator must produce closed systems");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut g1 = SystemGenerator::new(GeneratorConfig::default(), 9);
        let mut g2 = SystemGenerator::new(GeneratorConfig::default(), 9);
        assert_eq!(g1.system(), g2.system());
        let mut g3 = SystemGenerator::new(GeneratorConfig::default(), 10);
        // Different seeds almost surely differ; allow equality only if both
        // degenerate to the same trivial system.
        let a = g1.system();
        let b = g3.system();
        if a == b {
            assert!(a.size() <= 10);
        }
    }

    #[test]
    fn generated_systems_can_run() {
        let mut gen = SystemGenerator::new(GeneratorConfig::small(), 3);
        for _ in 0..20 {
            let s = gen.system();
            let mut exec = Executor::new(&s, TrivialPatterns);
            // Must not error; may or may not reach quiescence within the cap.
            exec.run(200).unwrap();
        }
    }

    #[test]
    fn small_config_has_no_replication() {
        assert_eq!(GeneratorConfig::small().replication_probability, 0.0);
        assert!(GeneratorConfig::large().locations > GeneratorConfig::default().locations);
    }
}
