//! Configurations: systems in structural-congruence normal form.
//!
//! The paper omits its (standard) structural congruence `≡`.  We adopt the
//! usual rules for located calculi:
//!
//! * parallel composition is a commutative monoid with unit `0`, both at the
//!   process and at the system level;
//! * located processes distribute over parallel composition,
//!   `a[P | Q] ≡ a[P] ‖ a[Q]`, and over inaction, `a[0] ≡ 0`;
//! * scope extrusion: `a[(νn)P] ≡ (νn)a[P]` and
//!   `(νn)S ‖ T ≡ (νn)(S ‖ T)` when `n ∉ fn(T)` — always achievable by
//!   alpha-converting the bound name;
//! * replication unfolds on demand, `*P ≡ P | *P`;
//! * alpha-conversion of restricted names.
//!
//! A [`Configuration`] is the normal form induced by those rules: a set of
//! top-level private channel names, a multiset of located *threads* whose
//! processes are guarded (output, input sum, match or replication), and a
//! multiset of messages in flight.  Reduction (in [`crate::reduction`]) is
//! defined directly on configurations, which is both simpler and much
//! faster than rewriting the system syntax tree.

use crate::name::{Channel, NameSupply, Principal};
use crate::process::Process;
use crate::subst::rename_channel_process;
use crate::system::{Message, System};
use std::collections::BTreeSet;
use std::fmt;

/// A located, guarded process: one sequential agent of the configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thread<P> {
    /// The principal under whose authority the process runs.
    pub principal: Principal,
    /// A guarded process: `Output`, `InputSum`, `Match` or `Replicate`.
    pub process: Process<P>,
}

impl<P: fmt::Display> fmt::Display for Thread<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.principal, self.process)
    }
}

/// A system in structural normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration<P> {
    /// Top-level private channel names (scope: the whole configuration).
    pub restricted: BTreeSet<Channel>,
    /// Located guarded processes.
    pub threads: Vec<Thread<P>>,
    /// Messages in flight.
    pub messages: Vec<Message>,
    /// Fresh-name supply used for alpha-conversion during normalization and
    /// reduction.
    pub supply: NameSupply,
}

impl<P: Clone> Configuration<P> {
    /// The empty configuration.
    pub fn empty() -> Self {
        Configuration {
            restricted: BTreeSet::new(),
            threads: Vec::new(),
            messages: Vec::new(),
            supply: NameSupply::new(),
        }
    }

    /// Normalizes a system into a configuration by applying the structural
    /// congruence rules left to right.
    ///
    /// Restricted names are alpha-converted to fresh names whenever they
    /// would clash with a name already free or already restricted at the
    /// top level, so distinct restrictions never merge.
    pub fn from_system(system: &System<P>) -> Self {
        let mut cfg = Configuration::empty();
        // Seed the name supply above any generated-looking names already
        // present so freshly generated names cannot collide.
        cfg.add_system(system);
        cfg
    }

    /// Adds (the normal form of) `system` to this configuration, as if
    /// composing them in parallel.
    pub fn add_system(&mut self, system: &System<P>) {
        match system {
            System::Located { principal, process } => {
                self.add_process(principal.clone(), process.clone());
            }
            System::Message(m) => self.messages.push(m.clone()),
            System::Restriction { name, body } => {
                let visible = self.restricted.contains(name) || self.name_in_use(name);
                if visible {
                    let fresh = self.supply.fresh_channel(name);
                    let renamed = rename_in_system(body, name, &fresh);
                    self.restricted.insert(fresh);
                    self.add_system(&renamed);
                } else {
                    self.restricted.insert(name.clone());
                    self.add_system(body);
                }
            }
            System::Parallel(ss) => {
                for t in ss {
                    self.add_system(t);
                }
            }
        }
    }

    /// Adds a located process, decomposing parallel compositions and lifting
    /// restrictions to the top level.
    pub fn add_process(&mut self, principal: Principal, process: Process<P>) {
        match process {
            Process::Nil => {}
            Process::Parallel(ps) => {
                for q in ps {
                    self.add_process(principal.clone(), q);
                }
            }
            Process::Restriction { name, body } => {
                let visible = self.restricted.contains(&name) || self.name_in_use(&name);
                if visible {
                    let fresh = self.supply.fresh_channel(&name);
                    let renamed = rename_channel_process(&body, &name, &fresh);
                    self.restricted.insert(fresh);
                    self.add_process(principal, renamed);
                } else {
                    self.restricted.insert(name.clone());
                    self.add_process(principal, *body);
                }
            }
            guarded @ (Process::Output { .. }
            | Process::InputSum { .. }
            | Process::Match { .. }
            | Process::Replicate(_)) => {
                if let Process::InputSum { ref branches, .. } = guarded {
                    if branches.is_empty() {
                        return; // the empty sum is 0
                    }
                }
                self.threads.push(Thread {
                    principal,
                    process: guarded,
                });
            }
        }
    }

    /// Pushes a message in flight.
    pub fn add_message(&mut self, message: Message) {
        self.messages.push(message);
    }

    /// `true` if a channel name occurs free anywhere in the configuration
    /// or is already restricted, i.e. reusing it for a new restriction
    /// would require alpha-conversion.
    fn name_in_use(&self, name: &Channel) -> bool {
        if self.restricted.contains(name) {
            return true;
        }
        self.threads
            .iter()
            .any(|t| t.process.free_channels().contains(name))
            || self.messages.iter().any(|m| {
                &m.channel == name || m.payload.iter().any(|v| v.value.as_channel() == Some(name))
            })
    }

    /// Reconstructs a system term from the configuration:
    /// `(νñ)(thread₁ ‖ … ‖ message₁ ‖ …)`.
    pub fn to_system(&self) -> System<P> {
        let mut parts: Vec<System<P>> = self
            .threads
            .iter()
            .map(|t| System::Located {
                principal: t.principal.clone(),
                process: t.process.clone(),
            })
            .collect();
        parts.extend(self.messages.iter().cloned().map(System::Message));
        let mut body = System::Parallel(parts);
        for name in self.restricted.iter().rev() {
            body = System::Restriction {
                name: name.clone(),
                body: Box::new(body),
            };
        }
        body
    }

    /// Total number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Total number of messages in flight.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// `true` when nothing can ever happen: no threads that could act and no
    /// messages pending.
    pub fn is_terminated(&self) -> bool {
        self.threads.is_empty() && self.messages.is_empty()
    }

    /// All principals hosting at least one thread.
    pub fn principals(&self) -> BTreeSet<Principal> {
        self.threads.iter().map(|t| t.principal.clone()).collect()
    }
}

impl<P: Clone> From<&System<P>> for Configuration<P> {
    fn from(system: &System<P>) -> Self {
        Configuration::from_system(system)
    }
}

impl<P: fmt::Display> fmt::Display for Configuration<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.restricted.is_empty() {
            write!(f, "(new")?;
            for n in &self.restricted {
                write!(f, " {}", n)?;
            }
            write!(f, ") ")?;
        }
        let mut first = true;
        for t in &self.threads {
            if !first {
                write!(f, " || ")?;
            }
            first = false;
            write!(f, "{}", t)?;
        }
        for m in &self.messages {
            if !first {
                write!(f, " || ")?;
            }
            first = false;
            write!(f, "{}", m)?;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Renames free occurrences of a channel name inside a system.
pub fn rename_in_system<P: Clone>(system: &System<P>, from: &Channel, to: &Channel) -> System<P> {
    match system {
        System::Located { principal, process } => System::Located {
            principal: principal.clone(),
            process: rename_channel_process(process, from, to),
        },
        System::Message(m) => {
            let channel = if &m.channel == from {
                to.clone()
            } else {
                m.channel.clone()
            };
            System::Message(Message {
                channel,
                payload: m
                    .payload
                    .iter()
                    .map(|v| crate::subst::rename_channel_value(v, from, to))
                    .collect(),
            })
        }
        System::Restriction { name, body } => {
            if name == from {
                system.clone()
            } else {
                System::Restriction {
                    name: name.clone(),
                    body: Box::new(rename_in_system(body, from, to)),
                }
            }
        }
        System::Parallel(ss) => {
            System::Parallel(ss.iter().map(|t| rename_in_system(t, from, to)).collect())
        }
    }
}

/// Checks whether two systems are structurally congruent, up to the rules
/// listed in the module documentation.
///
/// The check normalizes both systems into configurations, canonically
/// renames their restricted names by first-use order, and compares the
/// resulting thread and message multisets.  The procedure is *sound*
/// (a `true` answer implies congruence) and complete for systems whose
/// private names can be distinguished by their first use; it may return
/// `false` for exotic systems with symmetric private-name structure.
pub fn structurally_congruent<P>(left: &System<P>, right: &System<P>) -> bool
where
    P: Clone + PartialEq + fmt::Debug + fmt::Display,
{
    canonical_fingerprint(left) == canonical_fingerprint(right)
}

/// Produces a canonical textual fingerprint of a system's normal form.
///
/// Restricted names are renamed `#0, #1, …` in order of first appearance in
/// the sorted rendering of threads and messages; components are then sorted
/// so that parallel composition is order-insensitive.
pub fn canonical_fingerprint<P>(system: &System<P>) -> String
where
    P: Clone + fmt::Display,
{
    let cfg = Configuration::from_system(system);
    // Render all components.
    let mut rendered: Vec<String> = cfg
        .threads
        .iter()
        .map(|t| t.to_string())
        .chain(cfg.messages.iter().map(|m| m.to_string()))
        .collect();
    rendered.sort();
    // Rename restricted names by first appearance in the sorted rendering.
    let joined = rendered.join(" || ");
    let mut canonical = joined.clone();
    let mut order: Vec<&Channel> = cfg
        .restricted
        .iter()
        .filter(|n| joined.contains(n.as_str()))
        .collect();
    order.sort_by_key(|n| joined.find(n.as_str()).unwrap_or(usize::MAX));
    for (i, name) in order.iter().enumerate() {
        canonical = canonical.replace(name.as_str(), &format!("#{}", i));
    }
    canonical
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AnyPattern;
    use crate::value::{AnnotatedValue, Identifier};

    type S = System<AnyPattern>;

    fn out(chan: &str, val: &str) -> Process<AnyPattern> {
        Process::output(Identifier::channel(chan), Identifier::channel(val))
    }

    #[test]
    fn parallel_processes_split_into_threads() {
        let s: S = System::located("a", Process::par(out("m", "v"), out("n", "w")));
        let cfg = Configuration::from_system(&s);
        assert_eq!(cfg.thread_count(), 2);
        assert!(cfg
            .threads
            .iter()
            .all(|t| t.principal == Principal::new("a")));
    }

    #[test]
    fn nil_processes_disappear() {
        let s: S = System::located("a", Process::par(Process::nil(), Process::nil()));
        let cfg = Configuration::from_system(&s);
        assert!(cfg.is_terminated());
    }

    #[test]
    fn empty_sum_disappears() {
        let s: S = System::located("a", Process::input_sum(Identifier::channel("m"), vec![]));
        let cfg = Configuration::from_system(&s);
        assert!(cfg.is_terminated());
    }

    #[test]
    fn restriction_is_lifted_to_top_level() {
        let s: S = System::located("a", Process::restrict("n", out("n", "v")));
        let cfg = Configuration::from_system(&s);
        assert_eq!(cfg.restricted.len(), 1);
        assert_eq!(cfg.thread_count(), 1);
    }

    #[test]
    fn clashing_restrictions_are_renamed_apart() {
        let s: S = System::par(
            System::located("a", Process::restrict("n", out("n", "v"))),
            System::located("b", Process::restrict("n", out("n", "w"))),
        );
        let cfg = Configuration::from_system(&s);
        assert_eq!(cfg.restricted.len(), 2, "two distinct private names");
        assert_eq!(cfg.thread_count(), 2);
        // The two threads must not share their (private) subject channel.
        let chans: Vec<_> = cfg
            .threads
            .iter()
            .map(|t| match &t.process {
                Process::Output { channel, .. } => channel.clone(),
                other => panic!("unexpected {:?}", other),
            })
            .collect();
        assert_ne!(chans[0], chans[1]);
    }

    #[test]
    fn restriction_does_not_capture_existing_free_name() {
        // a[m<v>] ‖ (νm) b[m<w>] — the private m must be renamed apart from the free m.
        let s: S = System::par(
            System::located("a", out("m", "v")),
            System::restrict("m", System::located("b", out("m", "w"))),
        );
        let cfg = Configuration::from_system(&s);
        assert_eq!(cfg.restricted.len(), 1);
        let private = cfg.restricted.iter().next().unwrap().clone();
        assert_ne!(private, Channel::new("m"));
        // a's output still targets the public m.
        let a_thread = cfg
            .threads
            .iter()
            .find(|t| t.principal == Principal::new("a"))
            .unwrap();
        match &a_thread.process {
            Process::Output { channel, .. } => assert_eq!(channel, &Identifier::channel("m")),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn to_system_round_trips_shape() {
        let s: S = System::par(
            System::located("a", out("m", "v")),
            System::message(Message::new("m", AnnotatedValue::channel("w"))),
        );
        let cfg = Configuration::from_system(&s);
        let back = cfg.to_system();
        assert!(structurally_congruent(&s, &back));
    }

    #[test]
    fn congruence_ignores_parallel_order() {
        let s1: S = System::par(
            System::located("a", out("m", "v")),
            System::located("b", out("n", "w")),
        );
        let s2: S = System::par(
            System::located("b", out("n", "w")),
            System::located("a", out("m", "v")),
        );
        assert!(structurally_congruent(&s1, &s2));
    }

    #[test]
    fn congruence_ignores_nil_units() {
        let s1: S = System::par(System::located("a", out("m", "v")), System::nil());
        let s2: S = System::located("a", out("m", "v"));
        assert!(structurally_congruent(&s1, &s2));
    }

    #[test]
    fn congruence_is_alpha_insensitive() {
        let s1: S = System::restrict("n", System::located("a", out("n", "v")));
        let s2: S = System::restrict("k", System::located("a", out("k", "v")));
        assert!(structurally_congruent(&s1, &s2));
    }

    #[test]
    fn congruence_distinguishes_different_systems() {
        let s1: S = System::located("a", out("m", "v"));
        let s2: S = System::located("b", out("m", "v"));
        assert!(!structurally_congruent(&s1, &s2));
        let s3: S = System::located("a", out("m", "w"));
        assert!(!structurally_congruent(&s1, &s3));
    }

    #[test]
    fn located_split_is_congruent_to_separate_locations() {
        let s1: S = System::located("a", Process::par(out("m", "v"), out("n", "w")));
        let s2: S = System::par(
            System::located("a", out("m", "v")),
            System::located("a", out("n", "w")),
        );
        assert!(structurally_congruent(&s1, &s2));
    }

    #[test]
    fn display_of_configuration() {
        let s: S = System::restrict("n", System::located("a", out("n", "v")));
        let cfg = Configuration::from_system(&s);
        let shown = cfg.to_string();
        assert!(shown.starts_with("(new"));
        assert!(shown.contains("a["));
    }
}
