//! Plain values, annotated values and identifiers.
//!
//! * A *plain value* `u, v ∈ V = C ∪ A` is either a channel name or a
//!   principal name.
//! * An *annotated value* `v : κ ∈ D` pairs a plain value with its
//!   provenance.
//! * An *identifier* `w ∈ I = D ∪ X` is either an annotated value or a
//!   variable; process syntax is written in terms of identifiers so that a
//!   process may mention data it has not received yet.

use crate::name::{Channel, Principal, Variable};
use crate::provenance::{Event, Provenance};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A plain value: a channel name or a principal name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A channel name used as data.
    Channel(Channel),
    /// A principal name used as data.
    Principal(Principal),
}

impl Value {
    /// Returns the channel name if this value is a channel.
    pub fn as_channel(&self) -> Option<&Channel> {
        match self {
            Value::Channel(c) => Some(c),
            Value::Principal(_) => None,
        }
    }

    /// Returns the principal name if this value is a principal.
    pub fn as_principal(&self) -> Option<&Principal> {
        match self {
            Value::Principal(p) => Some(p),
            Value::Channel(_) => None,
        }
    }

    /// `true` if the value is a channel name.
    pub fn is_channel(&self) -> bool {
        matches!(self, Value::Channel(_))
    }

    /// `true` if the value is a principal name.
    pub fn is_principal(&self) -> bool {
        matches!(self, Value::Principal(_))
    }

    /// The textual form of the underlying name.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Channel(c) => c.as_str(),
            Value::Principal(p) => p.as_str(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Channel(c) => write!(f, "Channel({})", c),
            Value::Principal(p) => write!(f, "Principal({})", p),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<Channel> for Value {
    fn from(c: Channel) -> Self {
        Value::Channel(c)
    }
}

impl From<Principal> for Value {
    fn from(p: Principal) -> Self {
        Value::Principal(p)
    }
}

/// An annotated value `v : κ`: a plain value paired with its provenance.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AnnotatedValue {
    /// The plain value.
    pub value: Value,
    /// The provenance attached to the value.
    pub provenance: Provenance,
}

impl AnnotatedValue {
    /// Annotates `value` with provenance `provenance`.
    pub fn new(value: impl Into<Value>, provenance: Provenance) -> Self {
        AnnotatedValue {
            value: value.into(),
            provenance,
        }
    }

    /// Annotates `value` with the empty provenance `ε` (a locally
    /// originated value).
    pub fn pristine(value: impl Into<Value>) -> Self {
        AnnotatedValue::new(value, Provenance::empty())
    }

    /// A pristine channel value.
    pub fn channel(name: impl Into<Channel>) -> Self {
        AnnotatedValue::pristine(Value::Channel(name.into()))
    }

    /// A pristine principal value.
    pub fn principal(name: impl Into<Principal>) -> Self {
        AnnotatedValue::pristine(Value::Principal(name.into()))
    }

    /// Returns a copy whose provenance has `event` prepended as the most
    /// recent event; the plain value is unchanged.
    pub fn with_event(&self, event: Event) -> Self {
        AnnotatedValue {
            value: self.value.clone(),
            provenance: self.provenance.prepend(event),
        }
    }

    /// Records that `principal` sent this value on a channel whose
    /// provenance is `channel_provenance` (rule R-Send's annotation update).
    pub fn sent_by(&self, principal: &Principal, channel_provenance: &Provenance) -> Self {
        self.with_event(Event::output(principal.clone(), channel_provenance.clone()))
    }

    /// Records that `principal` received this value on a channel whose
    /// provenance is `channel_provenance` (rule R-Recv's annotation update).
    pub fn received_by(&self, principal: &Principal, channel_provenance: &Provenance) -> Self {
        self.with_event(Event::input(principal.clone(), channel_provenance.clone()))
    }
}

impl fmt::Debug for AnnotatedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for AnnotatedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.value, self.provenance)
    }
}

impl From<Value> for AnnotatedValue {
    fn from(value: Value) -> Self {
        AnnotatedValue::pristine(value)
    }
}

impl From<Channel> for AnnotatedValue {
    fn from(c: Channel) -> Self {
        AnnotatedValue::channel(c)
    }
}

impl From<Principal> for AnnotatedValue {
    fn from(p: Principal) -> Self {
        AnnotatedValue::principal(p)
    }
}

/// An identifier `w ∈ I = D ∪ X`: an annotated value or a variable.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Identifier {
    /// A concrete annotated value.
    Value(AnnotatedValue),
    /// A variable waiting to be substituted by an input.
    Variable(Variable),
}

impl Identifier {
    /// A pristine channel-valued identifier.
    pub fn channel(name: impl Into<Channel>) -> Self {
        Identifier::Value(AnnotatedValue::channel(name))
    }

    /// A pristine principal-valued identifier.
    pub fn principal(name: impl Into<Principal>) -> Self {
        Identifier::Value(AnnotatedValue::principal(name))
    }

    /// A variable identifier.
    pub fn variable(name: impl Into<Variable>) -> Self {
        Identifier::Variable(name.into())
    }

    /// Returns the annotated value if this identifier is concrete.
    pub fn as_value(&self) -> Option<&AnnotatedValue> {
        match self {
            Identifier::Value(v) => Some(v),
            Identifier::Variable(_) => None,
        }
    }

    /// Returns the variable if this identifier is a variable.
    pub fn as_variable(&self) -> Option<&Variable> {
        match self {
            Identifier::Variable(x) => Some(x),
            Identifier::Value(_) => None,
        }
    }

    /// `true` if this identifier is a concrete (closed) value.
    pub fn is_closed(&self) -> bool {
        matches!(self, Identifier::Value(_))
    }
}

impl fmt::Debug for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Identifier::Value(v) => write!(f, "{}", v),
            Identifier::Variable(x) => write!(f, "{}", x),
        }
    }
}

impl fmt::Display for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Identifier::Value(v) => write!(f, "{}", v),
            Identifier::Variable(x) => write!(f, "{}", x),
        }
    }
}

impl From<AnnotatedValue> for Identifier {
    fn from(v: AnnotatedValue) -> Self {
        Identifier::Value(v)
    }
}

impl From<Variable> for Identifier {
    fn from(x: Variable) -> Self {
        Identifier::Variable(x)
    }
}

impl From<Channel> for Identifier {
    fn from(c: Channel) -> Self {
        Identifier::channel(c)
    }
}

impl From<Principal> for Identifier {
    fn from(p: Principal) -> Self {
        Identifier::principal(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let c = Value::Channel(Channel::new("m"));
        let p = Value::Principal(Principal::new("a"));
        assert!(c.is_channel());
        assert!(!c.is_principal());
        assert_eq!(c.as_channel(), Some(&Channel::new("m")));
        assert_eq!(c.as_principal(), None);
        assert!(p.is_principal());
        assert_eq!(p.as_principal(), Some(&Principal::new("a")));
        assert_eq!(p.as_channel(), None);
        assert_eq!(c.to_string(), "m");
        assert_eq!(p.to_string(), "a");
    }

    #[test]
    fn channel_and_principal_values_with_same_text_differ() {
        let c = Value::Channel(Channel::new("n"));
        let p = Value::Principal(Principal::new("n"));
        assert_ne!(c, p);
    }

    #[test]
    fn pristine_has_empty_provenance() {
        let v = AnnotatedValue::channel("m");
        assert!(v.provenance.is_empty());
        assert_eq!(v.to_string(), "m:ε");
    }

    #[test]
    fn sent_by_prepends_output_event() {
        let v = AnnotatedValue::channel("v");
        let km = Provenance::empty();
        let sent = v.sent_by(&Principal::new("a"), &km);
        assert_eq!(sent.value, v.value);
        assert_eq!(sent.provenance.len(), 1);
        let head = sent.provenance.head().unwrap();
        assert!(head.is_output());
        assert_eq!(head.principal, Principal::new("a"));
        assert_eq!(head.channel_provenance, km);
    }

    #[test]
    fn received_by_prepends_input_event() {
        let v = AnnotatedValue::channel("v").sent_by(&Principal::new("a"), &Provenance::empty());
        let recv = v.received_by(&Principal::new("b"), &Provenance::empty());
        assert_eq!(recv.provenance.len(), 2);
        assert!(recv.provenance.head().unwrap().is_input());
        assert_eq!(recv.provenance.to_string(), "b?ε; a!ε");
    }

    #[test]
    fn identifier_closedness() {
        assert!(Identifier::channel("m").is_closed());
        assert!(Identifier::principal("a").is_closed());
        assert!(!Identifier::variable("x").is_closed());
        assert_eq!(
            Identifier::variable("x").as_variable(),
            Some(&Variable::new("x"))
        );
        assert!(Identifier::variable("x").as_value().is_none());
    }

    #[test]
    fn conversions_into_identifier() {
        let from_chan: Identifier = Channel::new("m").into();
        let from_prin: Identifier = Principal::new("a").into();
        let from_var: Identifier = Variable::new("x").into();
        assert!(from_chan.is_closed());
        assert!(from_prin.is_closed());
        assert!(!from_var.is_closed());
    }

    #[test]
    fn display_of_annotated_value_includes_provenance() {
        let v = AnnotatedValue::channel("v").sent_by(&Principal::new("a"), &Provenance::empty());
        assert_eq!(v.to_string(), "v:a!ε");
        assert_eq!(format!("{:?}", v), "v:a!ε");
    }
}
