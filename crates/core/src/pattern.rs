//! The parametric pattern-language interface (Definition 1 of the paper).
//!
//! The calculus does not fix a pattern language; it only requires a set of
//! patterns `Π` and a satisfaction relation `⊨ ⊆ K × Π` between provenance
//! sequences and patterns.  This module defines the [`PatternLanguage`]
//! trait capturing exactly that, plus two trivial instances that are useful
//! for testing and for recovering the ordinary asynchronous pi-calculus:
//!
//! * [`TrivialPatterns`] — the single pattern [`AnyPattern`] matched by every
//!   provenance sequence; with it the calculus degenerates to the plain
//!   asynchronous pi-calculus with located processes.
//! * [`FnMatcher`] — satisfaction given by an arbitrary closure, handy in
//!   unit tests.
//!
//! The full sample pattern language of Table 3 lives in the
//! `piprov-patterns` crate.

use crate::provenance::Provenance;
use std::fmt;
use std::marker::PhantomData;

/// A pattern matching language `(Π, ⊨)`.
///
/// Implementors provide the pattern type and decide when a provenance
/// sequence satisfies a pattern.  The reduction semantics is parametric in
/// an implementation of this trait: rule R-Recv only fires when
/// `matcher.satisfies(κ_v, π_j)` holds for some branch `j`.
pub trait PatternLanguage {
    /// The set of patterns `Π`.
    type Pattern: Clone + fmt::Debug;

    /// The satisfaction relation `κ ⊨ π`.
    fn satisfies(&self, provenance: &Provenance, pattern: &Self::Pattern) -> bool;
}

/// The single pattern of [`TrivialPatterns`]; matches any provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct AnyPattern;

impl fmt::Display for AnyPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

/// The degenerate pattern language whose only pattern matches everything.
///
/// Using it turns pattern-restricted input back into ordinary input, so the
/// calculus becomes the asynchronous pi-calculus with explicit identities
/// and (still) provenance tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrivialPatterns;

impl PatternLanguage for TrivialPatterns {
    type Pattern = AnyPattern;

    fn satisfies(&self, _provenance: &Provenance, _pattern: &AnyPattern) -> bool {
        true
    }
}

/// The boxed satisfaction function an [`FnMatcher`] wraps.
type MatchFn<P> = Box<dyn Fn(&Provenance, &P) -> bool + Send + Sync>;

/// A pattern language whose satisfaction relation is an arbitrary function
/// over `(κ, π)`.
///
/// ```
/// use piprov_core::pattern::{FnMatcher, PatternLanguage};
/// use piprov_core::provenance::Provenance;
///
/// // Patterns are maximum admissible provenance lengths.
/// let matcher: FnMatcher<usize> = FnMatcher::new(|k: &Provenance, max: &usize| k.len() <= *max);
/// assert!(matcher.satisfies(&Provenance::empty(), &0));
/// ```
pub struct FnMatcher<P> {
    f: MatchFn<P>,
    _marker: PhantomData<P>,
}

impl<P> FnMatcher<P> {
    /// Wraps `f` as a satisfaction relation.
    pub fn new(f: impl Fn(&Provenance, &P) -> bool + Send + Sync + 'static) -> Self {
        FnMatcher {
            f: Box::new(f),
            _marker: PhantomData,
        }
    }
}

impl<P> fmt::Debug for FnMatcher<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FnMatcher(..)")
    }
}

impl<P: Clone + fmt::Debug> PatternLanguage for FnMatcher<P> {
    type Pattern = P;

    fn satisfies(&self, provenance: &Provenance, pattern: &P) -> bool {
        (self.f)(provenance, pattern)
    }
}

/// A matcher that instruments another matcher with call counting.
///
/// Used by the overhead experiments (E9/E10) to report how many pattern
/// checks a run performed without changing its semantics.
#[derive(Debug)]
pub struct CountingMatcher<L> {
    inner: L,
    calls: std::sync::atomic::AtomicU64,
}

impl<L> CountingMatcher<L> {
    /// Wraps `inner`, counting every satisfaction query.
    pub fn new(inner: L) -> Self {
        CountingMatcher {
            inner,
            calls: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of satisfaction queries answered so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Consumes the wrapper and returns the inner matcher.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: PatternLanguage> PatternLanguage for CountingMatcher<L> {
    type Pattern = L::Pattern;

    fn satisfies(&self, provenance: &Provenance, pattern: &Self::Pattern) -> bool {
        self.calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.satisfies(provenance, pattern)
    }
}

impl<L: PatternLanguage> PatternLanguage for &L {
    type Pattern = L::Pattern;

    fn satisfies(&self, provenance: &Provenance, pattern: &Self::Pattern) -> bool {
        (**self).satisfies(provenance, pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Principal;
    use crate::provenance::{Event, Provenance};

    #[test]
    fn trivial_patterns_match_everything() {
        let m = TrivialPatterns;
        let k = Provenance::single(Event::output(Principal::new("a"), Provenance::empty()));
        assert!(m.satisfies(&Provenance::empty(), &AnyPattern));
        assert!(m.satisfies(&k, &AnyPattern));
    }

    #[test]
    fn fn_matcher_uses_the_closure() {
        let m: FnMatcher<usize> = FnMatcher::new(|k, max| k.len() <= *max);
        let k = Provenance::single(Event::output(Principal::new("a"), Provenance::empty()));
        assert!(m.satisfies(&k, &1));
        assert!(!m.satisfies(&k, &0));
    }

    #[test]
    fn counting_matcher_counts_and_delegates() {
        let m = CountingMatcher::new(TrivialPatterns);
        assert_eq!(m.calls(), 0);
        assert!(m.satisfies(&Provenance::empty(), &AnyPattern));
        assert!(m.satisfies(&Provenance::empty(), &AnyPattern));
        assert_eq!(m.calls(), 2);
        let _inner: TrivialPatterns = m.into_inner();
    }

    #[test]
    fn references_to_matchers_are_matchers() {
        let m = TrivialPatterns;
        let r = &m;
        assert!(r.satisfies(&Provenance::empty(), &AnyPattern));
    }
}
